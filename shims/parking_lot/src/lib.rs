//! Offline stand-in for the `parking_lot` crate, implemented over `std::sync`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the tiny slice of parking_lot's API it actually uses: `Mutex`, `RwLock`,
//! and `Condvar` with the guard-by-reference `wait`/`wait_until` calling
//! convention. Semantics follow parking_lot where they differ from std:
//! poisoning is ignored (a panicked holder does not poison the lock).

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (poison-free, like `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` internally so a `Condvar` can
/// temporarily take the underlying std guard during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condvar wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's guard-by-reference API.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condvar.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock (poison-free).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip_and_try_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panicked holder");
    }
}
