//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the slice of proptest it uses: the `proptest!` macro, `prop_assert*`,
//! range/tuple/vec/select/option/bool strategies, `any::<T>()`, and
//! `ProptestConfig::with_cases`. Unlike real proptest there is no shrinking —
//! a failing case reports its deterministic case index instead, which is
//! enough to replay it (generation is a pure function of test name + index).

/// Deterministic per-case RNG (SplitMix64 over a hash of test name + case).
pub mod test_runner {
    /// Test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// SplitMix64 stream seeded from the fully-qualified test name and the
    /// case index, so every case replays byte-identically.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the named property.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw below `n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// The `Strategy` trait and primitive strategy implementations.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value` from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy producing a single cloned value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+)),*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

/// `any::<T>()` — full-domain generation for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types generable over their whole domain.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let m = rng.f64() * 2.0 - 1.0;
            let e = (rng.below(61) as i32) - 30;
            m * 2f64.powi(e)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Accepted length specifications for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from the size range.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vectors of `elem`-generated values, length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }

    /// Pick uniformly from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty set");
        Select { items }
    }
}

/// Option strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `Some(inner)` half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Option` of the inner strategy, 50% `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Boolean strategies (`bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for an unbiased boolean.
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Either boolean with equal probability.
    pub const ANY: BoolAny = BoolAny;
}

/// Common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the crate root (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{bool, collection, option, sample};
    }
}

/// Assert a condition inside a property (panics on failure, failing the case).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut proptest_rng,
                    );
                )+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (deterministic; rerun reproduces it)",
                        stringify!($name),
                        case,
                        config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Define property tests. Supports an optional
/// `#![proptest_config(ProptestConfig::with_cases(N))]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::Config { cases: 64 }) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        let mut c = TestRng::for_case("x::y", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds, vec respects its length window.
        #[test]
        fn strategies_respect_bounds(
            x in 3u64..17,
            f in -2.0f64..2.0,
            v in crate::collection::vec((0usize..5, 1u32..4), 2..9),
            pick in crate::sample::select(vec![10, 20, 30]),
            maybe in crate::option::of(0u8..3),
            flag in crate::bool::ANY,
            w in any::<u64>(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((2..9).contains(&v.len()));
            for &(a, b) in &v {
                prop_assert!(a < 5 && (1..4).contains(&b));
            }
            prop_assert!([10, 20, 30].contains(&pick));
            if let Some(m) = maybe {
                prop_assert!(m < 3);
            }
            let _ = (flag, w);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_compiles(n in 1usize..4) {
            prop_assert!(n >= 1);
        }
    }
}
