//! Offline stand-in for the `crossbeam` crate: unbounded MPMC channels and a
//! `select!` macro covering the receive-only form this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the channel surface it needs. The implementation is a mutex/condvar queue:
//! correct and simple rather than lock-free. `select!` polls its receivers
//! with a short parked sleep between rounds — bounded staleness (≤ ~200 µs)
//! in exchange for zero cross-channel waker plumbing.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::Duration;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Sending half of an unbounded channel. Cloneable (MPMC).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The channel is disconnected (all receivers dropped); returns the value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and all senders dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Why a `try_recv` returned nothing.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Nothing queued and no sender remains.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Queue a value; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut s = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if s.receivers == 0 {
                return Err(SendError(value));
            }
            s.queue.push_back(value);
            drop(s);
            self.chan.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            s.senders -= 1;
            let disconnect = s.senders == 0;
            drop(s);
            if disconnect {
                self.chan.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut s = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvError);
                }
                s = self.chan.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut s = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = s.queue.pop_front() {
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(TryRecvError::Disconnected);
                }
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    return Err(TryRecvError::Empty);
                }
                let (g, _) = self
                    .chan
                    .cv
                    .wait_timeout(s, left)
                    .unwrap_or_else(PoisonError::into_inner);
                s = g;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut s = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = s.queue.pop_front() {
                Ok(v)
            } else if s.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Select helper: `Some(result)` when a recv would complete now.
        #[doc(hidden)]
        pub fn select_ready(&self) -> Option<Result<T, RecvError>> {
            match self.try_recv() {
                Ok(v) => Some(Ok(v)),
                Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
                Err(TryRecvError::Empty) => None,
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers -= 1;
        }
    }

    /// Blocking iterator over received values; ends on disconnect.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    // Re-export the macro under `crossbeam::channel::select!`, matching the
    // real crate's path.
    pub use crate::select;
}

/// Receive-only `select!`: polls each `recv(rx) -> pat => body` arm in order;
/// a disconnected channel fires its arm with `Err(RecvError)`. Parks ~200 µs
/// between empty rounds.
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $res:pat => $body:expr),+ $(,)?) => {{
        'crossbeam_select: loop {
            $(
                if let Some(__ready) = $rx.select_ready() {
                    let $res = __ready;
                    let _ = $body;
                    break 'crossbeam_select;
                }
            )+
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u32>();
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }

    #[test]
    fn mpmc_receivers_share_work() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h1 = std::thread::spawn(move || rx.iter().count());
        let h2 = std::thread::spawn(move || rx2.iter().count());
        let total = h1.join().unwrap() + h2.join().unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }

    #[test]
    // The select! expansion duplicates each arm's body across its ready and
    // disconnected paths, so the compiler sees assignments it thinks are
    // dead on the path not taken.
    #[allow(unused_assignments)]
    fn select_fires_ready_arm_and_disconnect() {
        let (tx_a, rx_a) = unbounded::<u8>();
        let (_tx_b, rx_b) = unbounded::<u8>();
        tx_a.send(5).unwrap();
        let mut got = None;
        crate::select! {
            recv(rx_a) -> msg => got = Some(msg),
            recv(rx_b) -> msg => got = msg.ok().map(|_| unreachable!()),
        }
        assert_eq!(got, Some(Ok(5)));
        // Disconnected arm fires with Err.
        drop(tx_a);
        let mut fired_err = false;
        crate::select! {
            recv(rx_a) -> msg => fired_err = msg.is_err(),
        }
        assert!(fired_err);
    }

    #[test]
    fn recv_timeout_paths() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(TryRecvError::Empty)
        );
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
    }
}
