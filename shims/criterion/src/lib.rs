//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the bench API surface it uses. There is no statistical engine: each
//! benchmark runs a short timed loop and prints a mean per-iteration time.
//! That keeps `cargo test` (which executes harness=false bench targets) fast
//! while preserving the real criterion API so benches compile unchanged.

use std::fmt::Display;
use std::time::Instant;

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    /// Mean seconds per iteration of the last `iter` call.
    last_secs_per_iter: f64,
}

impl Bencher {
    /// Time `routine` over a short loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.last_secs_per_iter = start.elapsed().as_secs_f64() / self.iters as f64;
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.last_secs_per_iter = total.as_secs_f64() / self.iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; scales the smoke-loop length.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 50);
        self
    }

    /// Record the per-iteration throughput for report lines.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.iters,
            last_secs_per_iter: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.last_secs_per_iter);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.iters,
            last_secs_per_iter: 0.0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.last_secs_per_iter);
        self
    }

    /// End the group (no-op; prints nothing extra).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, secs_per_iter: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if secs_per_iter > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / secs_per_iter)
            }
            Some(Throughput::Bytes(n)) if secs_per_iter > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 / secs_per_iter)
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{}: {:.3} µs/iter{}",
            self.name,
            id,
            secs_per_iter * 1e6,
            rate
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            iters: 10,
            _criterion: self,
        }
    }
}

/// Define a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given groups; CLI args (from `cargo bench` or
/// `cargo test`) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.throughput(Throughput::Elements(3));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    crate::criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_benches_run() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
