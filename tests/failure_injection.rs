//! Failure-injection integration tests: panicking kernels, dying pilots,
//! unreliable infrastructure, corrupt payloads — the system must degrade
//! without losing accounting invariants.

use pilot_abstraction::apps::lightsource::reconstruct;
use pilot_abstraction::core::describe::{PilotDescription, UnitDescription};
use pilot_abstraction::core::scheduler::FirstFitScheduler;
use pilot_abstraction::core::sim::SimPilotSystem;
use pilot_abstraction::core::state::UnitState;
use pilot_abstraction::core::thread::{kernel_fn, TaskError, TaskOutput, ThreadPilotService};
use pilot_abstraction::infra::htc::{HtcConfig, HtcPool};
use pilot_abstraction::infra::hpc::{HpcCluster, HpcConfig};
use pilot_abstraction::saga::ResourceAdaptor;
use pilot_abstraction::sim::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[test]
fn a_storm_of_panics_leaves_the_service_consistent() {
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(2, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let units: Vec<_> = (0..20)
        .map(|i| {
            svc.submit_unit(
                UnitDescription::new(1),
                kernel_fn(move |_| {
                    if i % 3 == 0 {
                        panic!("task {i} exploded");
                    }
                    Ok(TaskOutput::of(i))
                }),
            )
        })
        .collect();
    let mut done = 0;
    let mut failed = 0;
    for u in units {
        match svc.wait_unit(u).state {
            UnitState::Done => done += 1,
            UnitState::Failed => failed += 1,
            s => panic!("unexpected state {s}"),
        }
    }
    assert_eq!(failed, 7); // i = 0,3,6,9,12,15,18
    assert_eq!(done, 13);
    // The pilot survived and still works.
    let after = svc.submit_unit(
        UnitDescription::new(1),
        kernel_fn(|_| Ok(TaskOutput::none())),
    );
    assert_eq!(svc.wait_unit(after).state, UnitState::Done);
    svc.shutdown();
}

#[test]
fn kernel_errors_carry_their_messages() {
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(1, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let u = svc.submit_unit(
        UnitDescription::new(1),
        kernel_fn(|_| Err(TaskError("input checksum mismatch".into()))),
    );
    let out = svc.wait_unit(u);
    assert_eq!(out.state, UnitState::Failed);
    let err = out.output.unwrap().unwrap_err();
    assert!(err.0.contains("checksum"));
    svc.shutdown();
}

#[test]
fn retry_wrapper_pattern_recovers_flaky_kernels() {
    // Applications implement retries *above* the API: resubmit on failure.
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(2, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let attempts = Arc::new(AtomicU32::new(0));
    let flaky = |attempts: Arc<AtomicU32>| {
        kernel_fn(move |_| {
            // Fails twice, then succeeds.
            if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(TaskError("transient".into()))
            } else {
                Ok(TaskOutput::of(99u8))
            }
        })
    };
    let mut result = None;
    for _ in 0..5 {
        let u = svc.submit_unit(UnitDescription::new(1), flaky(Arc::clone(&attempts)));
        let out = svc.wait_unit(u);
        if out.state == UnitState::Done {
            result = out.output.unwrap().ok().and_then(|o| o.downcast::<u8>());
            break;
        }
    }
    assert_eq!(result, Some(99));
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
    svc.shutdown();
}

#[test]
fn sim_pilot_walltime_cascade_never_strands_units() {
    // Pilots with staggered, short walltimes die under the workload; a
    // long-lived one eventually finishes everything.
    let mut sys = SimPilotSystem::new(31);
    let site = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
        "h", 64,
    ))));
    for i in 0..3 {
        sys.submit_pilot(
            SimTime::from_secs(i * 50),
            site,
            PilotDescription::new(8, SimDuration::from_secs(400)),
        );
    }
    sys.submit_pilot(
        SimTime::from_secs(1000),
        site,
        PilotDescription::new(8, SimDuration::from_hours(10)).labeled("stable"),
    );
    for _ in 0..40 {
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 300.0);
    }
    let report = sys.run(SimTime::from_hours(10));
    assert_eq!(report.count(UnitState::Done), 40);
    assert_eq!(report.count(UnitState::Failed), 0);
    assert_eq!(report.count(UnitState::Canceled), 0);
}

#[test]
fn very_unreliable_htc_still_converges() {
    // MTBF shorter than the task duration: most attempts die; requeue +
    // retry still drains the workload (it just takes many attempts).
    let mut sys = SimPilotSystem::new(37);
    let site = sys.add_resource(ResourceAdaptor::htc(HtcPool::new(
        HtcConfig::reliable("chaos", 24).with_failures(500.0),
    )));
    sys.submit_pilot(
        SimTime::ZERO,
        site,
        PilotDescription::new(24, SimDuration::from_hours(48)),
    );
    for _ in 0..30 {
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 350.0);
    }
    let report = sys.run(SimTime::from_hours(48));
    assert_eq!(report.count(UnitState::Done), 30);
    let requeues = report.trace.of_kind("cu.requeued").count();
    assert!(requeues > 0, "expected churn under MTBF 500s / 350s tasks");
}

#[test]
fn corrupt_stream_payloads_are_rejected_not_fatal() {
    assert!(reconstruct(b"garbage", 10.0).is_none());
    assert!(reconstruct(&[], 10.0).is_none());
    // Truncated header.
    assert!(reconstruct(&[0, 0, 0], 10.0).is_none());
    // Length field lies about the payload.
    let mut lying = Vec::new();
    lying.extend_from_slice(&100u32.to_le_bytes());
    lying.extend_from_slice(&100u32.to_le_bytes());
    lying.extend_from_slice(&[0u8; 16]);
    assert!(reconstruct(&lying, 10.0).is_none());
}
