//! Failure-injection integration tests: panicking kernels, dying pilots,
//! unreliable infrastructure, corrupt payloads — the system must degrade
//! without losing accounting invariants.

use pilot_abstraction::apps::lightsource::reconstruct;
use pilot_abstraction::core::describe::{PilotDescription, UnitDescription};
use pilot_abstraction::core::retry::{FaultPlan, RetryPolicy};
use pilot_abstraction::core::scheduler::FirstFitScheduler;
use pilot_abstraction::core::sim::SimPilotSystem;
use pilot_abstraction::core::state::UnitState;
use pilot_abstraction::core::thread::{kernel_fn, TaskError, TaskOutput, ThreadPilotService};
use pilot_abstraction::infra::hpc::{HpcCluster, HpcConfig};
use pilot_abstraction::infra::htc::{HtcConfig, HtcPool};
use pilot_abstraction::saga::ResourceAdaptor;
use pilot_abstraction::sim::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

#[test]
fn a_storm_of_panics_leaves_the_service_consistent() {
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(2, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let units: Vec<_> = (0..20)
        .map(|i| {
            svc.submit_unit(
                UnitDescription::new(1),
                kernel_fn(move |_| {
                    if i % 3 == 0 {
                        panic!("task {i} exploded");
                    }
                    Ok(TaskOutput::of(i))
                }),
            )
        })
        .collect();
    let mut done = 0;
    let mut failed = 0;
    for u in units {
        match svc.wait_unit(u).unwrap().state {
            UnitState::Done => done += 1,
            UnitState::Failed => failed += 1,
            s => panic!("unexpected state {s}"),
        }
    }
    assert_eq!(failed, 7); // i = 0,3,6,9,12,15,18
    assert_eq!(done, 13);
    // The pilot survived and still works.
    let after = svc.submit_unit(
        UnitDescription::new(1),
        kernel_fn(|_| Ok(TaskOutput::none())),
    );
    assert_eq!(svc.wait_unit(after).unwrap().state, UnitState::Done);
    svc.shutdown();
}

#[test]
fn kernel_errors_carry_their_messages() {
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(1, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let u = svc.submit_unit(
        UnitDescription::new(1),
        kernel_fn(|_| Err(TaskError("input checksum mismatch".into()))),
    );
    let out = svc.wait_unit(u).unwrap();
    assert_eq!(out.state, UnitState::Failed);
    let err = out.output.unwrap().unwrap_err();
    assert!(err.0.contains("checksum"));
    svc.shutdown();
}

#[test]
fn retry_wrapper_pattern_recovers_flaky_kernels() {
    // Applications implement retries *above* the API: resubmit on failure.
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(2, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let attempts = Arc::new(AtomicU32::new(0));
    let flaky = |attempts: Arc<AtomicU32>| {
        kernel_fn(move |_| {
            // Fails twice, then succeeds.
            if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(TaskError("transient".into()))
            } else {
                Ok(TaskOutput::of(99u8))
            }
        })
    };
    let mut result = None;
    for _ in 0..5 {
        let u = svc.submit_unit(UnitDescription::new(1), flaky(Arc::clone(&attempts)));
        let out = svc.wait_unit(u).unwrap();
        if out.state == UnitState::Done {
            result = out
                .output
                .unwrap()
                .ok()
                .and_then(|o| o.downcast::<u8>().ok());
            break;
        }
    }
    assert_eq!(result, Some(99));
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
    svc.shutdown();
}

#[test]
fn sim_pilot_walltime_cascade_never_strands_units() {
    // Pilots with staggered, short walltimes die under the workload; a
    // long-lived one eventually finishes everything.
    let mut sys = SimPilotSystem::new(31);
    let site = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
        "h", 64,
    ))));
    for i in 0..3 {
        sys.submit_pilot(
            SimTime::from_secs(i * 50),
            site,
            PilotDescription::new(8, SimDuration::from_secs(400)),
        );
    }
    sys.submit_pilot(
        SimTime::from_secs(1000),
        site,
        PilotDescription::new(8, SimDuration::from_hours(10)).labeled("stable"),
    );
    for _ in 0..40 {
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 300.0);
    }
    let report = sys.run(SimTime::from_hours(10));
    assert_eq!(report.count(UnitState::Done), 40);
    assert_eq!(report.count(UnitState::Failed), 0);
    assert_eq!(report.count(UnitState::Canceled), 0);
}

#[test]
fn very_unreliable_htc_still_converges() {
    // MTBF shorter than the task duration: most attempts die; requeue +
    // retry still drains the workload (it just takes many attempts).
    let mut sys = SimPilotSystem::new(37);
    let site = sys.add_resource(ResourceAdaptor::htc(HtcPool::new(
        HtcConfig::reliable("chaos", 24).with_failures(500.0),
    )));
    sys.submit_pilot(
        SimTime::ZERO,
        site,
        PilotDescription::new(24, SimDuration::from_hours(48)),
    );
    for _ in 0..30 {
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 350.0);
    }
    let report = sys.run(SimTime::from_hours(48));
    assert_eq!(report.count(UnitState::Done), 30);
    let requeues = report.trace.of_kind("cu.requeued").count();
    assert!(requeues > 0, "expected churn under MTBF 500s / 350s tasks");
}

#[test]
fn corrupt_stream_payloads_are_rejected_not_fatal() {
    assert!(reconstruct(b"garbage", 10.0).is_none());
    assert!(reconstruct(&[], 10.0).is_none());
    // Truncated header.
    assert!(reconstruct(&[0, 0, 0], 10.0).is_none());
    // Length field lies about the payload.
    let mut lying = Vec::new();
    lying.extend_from_slice(&100u32.to_le_bytes());
    lying.extend_from_slice(&100u32.to_le_bytes());
    lying.extend_from_slice(&[0u8; 16]);
    assert!(reconstruct(&lying, 10.0).is_none());
}

#[test]
fn injected_pilot_crashes_recover_with_retry_and_replay_byte_identically() {
    // The acceptance scenario for the reliability layer: a crash-ridden run
    // with a retry policy completes every unit, the same seed replays the
    // fault schedule byte-for-byte, and the identical workload with retries
    // disabled loses units.
    let run = |retry: RetryPolicy| {
        let mut sys = SimPilotSystem::new(0xC4A5);
        sys.set_fault_plan(FaultPlan::none().with_pilot_crashes(600.0));
        let site = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
            "h", 64,
        ))));
        // Staggered pilots: the crash schedule thins the early ones, the
        // late ones supply re-binding capacity.
        for k in 0..8u64 {
            sys.submit_pilot(
                SimTime::from_secs(k * 240),
                site,
                PilotDescription::new(8, SimDuration::from_hours(12)),
            );
        }
        for i in 0..32u64 {
            sys.submit_unit_fixed(
                SimTime::from_secs(i * 5),
                UnitDescription::new(1).with_retry(retry),
                240.0,
            );
        }
        sys.run(SimTime::from_hours(24))
    };

    let a = run(RetryPolicy::fixed(6, 5.0));
    assert!(
        a.reliability.pilot_crashes > 0,
        "crashes must actually fire"
    );
    assert_eq!(a.count(UnitState::Done), 32, "retry completes every unit");
    assert_eq!(a.count(UnitState::Failed), 0);

    // Byte-identical replay under the same seed.
    let b = run(RetryPolicy::fixed(6, 5.0));
    assert_eq!(a.reliability, b.reliability);
    assert_eq!(a.trace.len(), b.trace.len());
    for (ua, ub) in a.units.iter().zip(b.units.iter()) {
        assert_eq!(ua.unit, ub.unit);
        assert_eq!(ua.state, ub.state);
        assert_eq!(ua.times, ub.times, "unit {} times differ", ua.unit);
    }

    // Same workload, retries disabled: the crash schedule is identical
    // (per-pilot RNG streams) but failed attempts are terminal.
    let c = run(RetryPolicy::none());
    assert_eq!(c.reliability.pilot_crashes, a.reliability.pilot_crashes);
    assert!(
        c.count(UnitState::Failed) > 0,
        "fail-fast must lose units the retry run recovered"
    );
    assert_eq!(c.reliability.requeues, 0);
}

#[test]
fn thread_backend_fault_plan_retries_injected_kernel_faults() {
    // The threaded backend shares the fault plan: injected kernel faults
    // fail attempts, the retry policy re-binds them, and the workload still
    // drains. Timings are wall-clock but the draw schedule is seeded.
    let svc = ThreadPilotService::with_faults(
        Box::new(FirstFitScheduler),
        FaultPlan::none().with_unit_failures(0.4),
        7,
    );
    let p = svc.submit_pilot(PilotDescription::new(4, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let units: Vec<_> = (0..12)
        .map(|i| {
            svc.submit_unit(
                UnitDescription::new(1).with_retry(RetryPolicy::fixed(8, 0.005)),
                kernel_fn(move |_| Ok(TaskOutput::of(i))),
            )
        })
        .collect();
    for u in units {
        assert_eq!(svc.wait_unit(u).unwrap().state, UnitState::Done);
    }
    let report = svc.shutdown();
    assert!(
        report.reliability.injected_unit_faults > 0,
        "p=0.4 over 12 units should inject at least one fault"
    );
    assert_eq!(
        report.reliability.requeues, report.reliability.injected_unit_faults,
        "every injected fault is retried"
    );
}
