//! Property-based tests over the control-plane fabric's rebalance
//! invariants: under arbitrary daemon-kill schedules (crashes and stalls,
//! any ticks, any victims) and arbitrary shard counts, every unit still
//! completes exactly once, the shard-assignment log never hands the same
//! `(shard, epoch)` to two owners, and the whole run replays bit-identically
//! from its seed.

use pilot_abstraction::core::describe::UnitDescription;
use pilot_abstraction::core::fabric::{Fabric, FabricConfig, KillMode, ScheduledKill};
use pilot_abstraction::core::retry::{FaultPlan, RetryPolicy};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn units(n: u64, run_ticks: u64) -> Vec<(UnitDescription, u64)> {
    (0..n)
        .map(|_| (UnitDescription::new(1), run_ticks))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rebalance_is_exactly_once_with_unique_shard_epochs(
        n_daemons in 2usize..6,
        n_shards in 1u32..12,
        n_units in 40u64..200,
        run_ticks in 2u64..12,
        seed in 0u64..1_000,
        raw_kills in prop::collection::vec((1u64..300, 0u64..8, 0u64..2), 0..4),
        unit_fault_p in 0.0f64..0.15,
    ) {
        let kills: Vec<ScheduledKill> = raw_kills
            .iter()
            .map(|&(tick, victim, mode)| ScheduledKill {
                tick,
                daemon: (victim as usize) % n_daemons,
                mode: if mode == 0 { KillMode::Crash } else { KillMode::Stall },
            })
            .collect();
        let config = FabricConfig {
            n_daemons,
            n_shards,
            pilots_per_shard: 2,
            cores_per_pilot: 4,
            seed,
            kills,
            faults: FaultPlan::none().with_unit_failures(unit_fault_p),
            // A generous budget: the property is exactly-once bookkeeping,
            // not whether a hostile fault rate can exhaust retries.
            retry: RetryPolicy::fixed(10, 0.01),
            ..FabricConfig::default()
        };

        let report = Fabric::run(&config, units(n_units, run_ticks));

        // Every unit reaches exactly one terminal state; nothing is lost to
        // a dead manager and nothing completes twice behind a stale epoch.
        prop_assert_eq!(report.lost, 0, "lost units: {:?}", &report);
        prop_assert_eq!(report.duplicates, 0, "duplicate completions: {:?}", &report);
        prop_assert_eq!(
            report.completed + report.exhausted,
            report.total_units,
            "terminal-state accounting broke: {:?}",
            &report
        );

        // The assignment log is an exclusive-ownership history: no two
        // daemons ever own the same shard at the same epoch, and each
        // shard's epochs strictly increase.
        let mut seen: HashSet<(u32, u64)> = HashSet::new();
        let mut last_epoch: HashMap<u32, u64> = HashMap::new();
        for a in &report.assignment_log {
            prop_assert!(
                seen.insert((a.shard, a.epoch)),
                "(shard {}, epoch {}) assigned twice",
                a.shard,
                a.epoch
            );
            if let Some(&prev) = last_epoch.get(&a.shard) {
                prop_assert!(
                    a.epoch > prev,
                    "shard {} epoch went {} -> {}",
                    a.shard,
                    prev,
                    a.epoch
                );
            }
            last_epoch.insert(a.shard, a.epoch);
        }

        // Every kill the driver applied on a live fabric is either survived
        // (declared + rebalanced) or irrelevant (landed after completion) —
        // but a declared death always moved the dead daemon's shards.
        for ev in &report.rebalances {
            prop_assert!(ev.declared_tick >= ev.last_heartbeat_tick);
        }

        // Determinism: the identical config replays the identical run,
        // kill schedule, fault draws, fencing counters and all.
        let replay = Fabric::run(&config, units(n_units, run_ticks));
        prop_assert_eq!(
            format!("{:?}", &report),
            format!("{:?}", &replay),
            "replay diverged"
        );
    }
}
