//! End-to-end integration of the simulated backend: whole-system determinism,
//! cross-infrastructure runs, failure recovery, and adaptive policies.

use pilot_abstraction::core::describe::{PilotDescription, UnitDescription};
use pilot_abstraction::core::sim::{ScaleOutPolicy, SimPilotSystem};
use pilot_abstraction::core::state::UnitState;
use pilot_abstraction::infra::cloud::{CloudConfig, CloudProvider};
use pilot_abstraction::infra::hpc::{BackgroundLoad, HpcCluster, HpcConfig};
use pilot_abstraction::infra::htc::{HtcConfig, HtcPool};
use pilot_abstraction::saga::ResourceAdaptor;
use pilot_abstraction::sim::{Dist, SimDuration, SimTime};

fn full_system(seed: u64) -> SimPilotSystem {
    let mut sys = SimPilotSystem::new(seed);
    let bg =
        BackgroundLoad::at_utilization(0.6, 64, Dist::uniform(2.0, 16.0), Dist::exponential(900.0));
    let hpc = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(
        HpcConfig::quiet("hpc", 64).with_background(bg),
    )));
    let htc = sys.add_resource(ResourceAdaptor::htc(HtcPool::new(
        HtcConfig::reliable("osg", 32).with_failures(3600.0),
    )));
    let cloud = sys.add_resource(ResourceAdaptor::cloud(CloudProvider::new(
        CloudConfig::generic("aws", 128),
    )));
    sys.submit_pilot(
        SimTime::ZERO,
        hpc,
        PilotDescription::new(16, SimDuration::from_hours(6)),
    );
    sys.submit_pilot(
        SimTime::ZERO,
        htc,
        PilotDescription::new(16, SimDuration::from_hours(6)),
    );
    sys.submit_pilot(
        SimTime::ZERO,
        cloud,
        PilotDescription::new(32, SimDuration::from_hours(6)),
    );
    for i in 0..120 {
        sys.submit_unit(
            SimTime::from_secs(i * 5),
            UnitDescription::new(1),
            Dist::exponential(120.0),
        );
    }
    sys
}

#[test]
fn whole_system_run_is_deterministic() {
    let digest = |seed| {
        let report = full_system(seed).run(SimTime::from_hours(24));
        let mut acc = Vec::new();
        for u in &report.units {
            acc.push(format!(
                "{:?}:{:?}:{:?}:{:?}",
                u.unit, u.state, u.pilot, u.times.finished
            ));
        }
        (acc, report.trace.len())
    };
    assert_eq!(digest(1), digest(1));
    assert_ne!(digest(1).0, digest(2).0);
}

#[test]
fn mixed_infrastructure_completes_everything() {
    let report = full_system(7).run(SimTime::from_hours(24));
    assert_eq!(report.count(UnitState::Done), 120);
    // All three pilots contributed.
    let mut used: Vec<_> = report.units.iter().filter_map(|u| u.pilot).collect();
    used.sort();
    used.dedup();
    assert!(used.len() >= 2, "work should spread over pilots: {used:?}");
    // Causal timestamps, virtual time.
    for u in &report.units {
        let t = u.times;
        assert!(t.submitted <= t.bound.unwrap());
        assert!(t.bound.unwrap() <= t.started.unwrap());
        assert!(t.started.unwrap() <= t.finished.unwrap());
    }
}

#[test]
fn htc_slot_failures_do_not_lose_units() {
    let mut sys = SimPilotSystem::new(11);
    let htc = sys.add_resource(ResourceAdaptor::htc(HtcPool::new(
        HtcConfig::reliable("flaky", 16).with_failures(600.0),
    )));
    sys.submit_pilot(
        SimTime::ZERO,
        htc,
        PilotDescription::new(16, SimDuration::from_hours(12)),
    );
    for _ in 0..60 {
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 400.0);
    }
    let report = sys.run(SimTime::from_hours(48));
    assert_eq!(
        report.count(UnitState::Done),
        60,
        "every unit must finish despite failures"
    );
    // Failures actually happened (capacity fluctuations traced).
    assert!(
        report.trace.of_kind("cu.requeued").count() > 0
            || report.trace.of_kind("pilot.capacity_down").count() > 0,
        "expected at least one failure event at MTBF 600s with 400s tasks"
    );
}

#[test]
fn scale_out_policy_is_bounded() {
    let mut sys = SimPilotSystem::new(13);
    let hpc = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
        "h", 64,
    ))));
    let cloud = sys.add_resource(ResourceAdaptor::cloud(CloudProvider::new(
        CloudConfig::generic("c", 1024),
    )));
    sys.submit_pilot(
        SimTime::ZERO,
        hpc,
        PilotDescription::new(8, SimDuration::from_hours(24)),
    );
    sys.set_scale_out(ScaleOutPolicy {
        check_every: SimDuration::from_secs(30),
        queue_threshold: 5,
        burst_site: cloud,
        pilot: PilotDescription::new(32, SimDuration::from_hours(4)).labeled("burst"),
        max_extra: 3,
    });
    for _ in 0..500 {
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 200.0);
    }
    let report = sys.run(SimTime::from_hours(48));
    assert_eq!(report.count(UnitState::Done), 500);
    let bursts = report.pilots.iter().filter(|p| p.label == "burst").count();
    assert_eq!(bursts, 3, "policy must respect max_extra");
}

#[test]
fn cancel_pilot_mid_run_requeues_to_survivor() {
    let mut sys = SimPilotSystem::new(17);
    let site = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
        "h", 64,
    ))));
    let doomed = sys.submit_pilot(
        SimTime::ZERO,
        site,
        PilotDescription::new(8, SimDuration::from_hours(12)).labeled("doomed"),
    );
    sys.submit_pilot(
        SimTime::from_secs(500),
        site,
        PilotDescription::new(8, SimDuration::from_hours(12)).labeled("survivor"),
    );
    for _ in 0..16 {
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 600.0);
    }
    sys.cancel_pilot(SimTime::from_secs(300), doomed);
    let report = sys.run(SimTime::from_hours(12));
    assert_eq!(report.count(UnitState::Done), 16);
    let survivor = report
        .pilots
        .iter()
        .find(|p| p.label == "survivor")
        .unwrap()
        .pilot;
    // Everything finished on the survivor (doomed died before any 600 s task
    // could complete).
    assert!(report.units.iter().all(|u| u.pilot == Some(survivor)));
}

#[test]
fn virtual_time_is_decoupled_from_wall_time() {
    // A week of simulated activity must run in well under a second of CPU.
    let t0 = std::time::Instant::now();
    let mut sys = SimPilotSystem::new(23);
    sys.disable_trace();
    let site = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
        "h", 128,
    ))));
    sys.submit_pilot(
        SimTime::ZERO,
        site,
        PilotDescription::new(64, SimDuration::from_hours(200)),
    );
    for i in 0..2000 {
        sys.submit_unit(
            SimTime::from_secs(i * 60),
            UnitDescription::new(1),
            Dist::exponential(1800.0),
        );
    }
    let report = sys.run(SimTime::from_hours(24 * 7));
    assert_eq!(report.count(UnitState::Done), 2000);
    assert!(report.makespan() > 100_000.0, "covers days of virtual time");
    assert!(
        t0.elapsed().as_secs_f64() < 10.0,
        "simulation too slow: {:?}",
        t0.elapsed()
    );
}
