//! Cross-crate integration: data service + data-aware compute, streaming +
//! reconstruction, dataflow orchestrating MapReduce, iterative execution over
//! cached data — the compositions the paper's building-blocks argument
//! (\[78\]) rests on.

use pilot_abstraction::apps::kmeans::{
    assign_step, generate_blob_matrix, init_centroids, lloyd_sequential, update_centroids,
    BlobConfig, Partial,
};
use pilot_abstraction::apps::lightsource::{generate_frame, reconstruct, FrameConfig};
use pilot_abstraction::apps::linalg::Matrix;
use pilot_abstraction::apps::wordcount::{count_words, generate_text, TextConfig};
use pilot_abstraction::core::describe::{PilotDescription, UnitDescription};
use pilot_abstraction::core::scheduler::{DataAwareScheduler, FirstFitScheduler};
use pilot_abstraction::core::state::UnitState;
use pilot_abstraction::core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
use pilot_abstraction::core::Parallelism;
use pilot_abstraction::data::{
    AffinityFirst, DataPilotDescription, DataService, DataUnitDescription,
};
use pilot_abstraction::dataflow::{Dataflow, StageData};
use pilot_abstraction::infra::network::NetworkModel;
use pilot_abstraction::infra::types::SiteId;
use pilot_abstraction::mapreduce::MapReduceJob;
use pilot_abstraction::memory::{CacheManager, CacheMode, IterativeExecutor, VecSource};
use pilot_abstraction::sim::SimDuration;
use pilot_abstraction::streaming::pipeline::run_stream_job;
use pilot_abstraction::streaming::{Broker, StreamJobConfig};
use std::sync::Arc;

#[test]
fn data_service_feeds_data_aware_compute_placement() {
    // Datasets at two "sites"; pilots labeled with those sites; compute
    // units carry locations from the data service; the data-aware scheduler
    // must place every unit at its data.
    let net = NetworkModel::new(&["alpha", "beta"]);
    let ds = Arc::new(DataService::new(net, Box::new(AffinityFirst)));
    ds.add_data_pilot(DataPilotDescription::new(SiteId(0), 1 << 30));
    ds.add_data_pilot(DataPilotDescription::new(SiteId(1), 1 << 30));

    let svc = ThreadPilotService::new(Box::new(DataAwareScheduler::default()));
    let p_alpha = svc.submit_pilot_at(
        PilotDescription::new(2, SimDuration::MAX).labeled("alpha"),
        SiteId(0),
    );
    let p_beta = svc.submit_pilot_at(
        PilotDescription::new(2, SimDuration::MAX).labeled("beta"),
        SiteId(1),
    );
    assert!(svc.wait_pilot_active(p_alpha));
    assert!(svc.wait_pilot_active(p_beta));

    let mut units = Vec::new();
    for i in 0..12 {
        let site = SiteId((i % 2) as u16);
        let du = ds
            .put(
                vec![i as u8; 4096],
                DataUnitDescription::new().with_affinity(site),
            )
            .unwrap();
        let loc = ds.location(du).unwrap();
        let ds2 = Arc::clone(&ds);
        let unit = svc.submit_unit(
            UnitDescription::new(1).with_inputs(vec![loc]),
            kernel_fn(move |ctx| {
                // Fetch "at" the site the unit landed on — the scheduler
                // placed us next to the bytes, so this is a local read.
                let _ = ctx;
                let bytes = ds2.fetch(du, site).expect("dataset exists");
                Ok(TaskOutput::of(bytes.len()))
            }),
        );
        units.push((unit, site));
    }
    let report_before = ds.ledger();
    for (u, _) in &units {
        assert_eq!(svc.wait_unit(*u).unwrap().state, UnitState::Done);
    }
    let report = svc.shutdown();
    // Placement followed the data.
    for rec in &report.units {
        let pilot = rec.pilot.expect("unit ran");
        let expected = units
            .iter()
            .find(|(u, _)| *u == rec.unit)
            .map(|(_, s)| *s)
            .unwrap();
        let pilot_site = report
            .pilots
            .iter()
            .find(|(id, ..)| *id == pilot)
            .map(|(_, _, s, ..)| *s)
            .unwrap();
        assert_eq!(pilot_site, expected, "unit {} placed off-site", rec.unit);
    }
    // And reads were local: no new remote bytes beyond replication (none).
    let ledger = ds.ledger();
    assert_eq!(ledger.remote_bytes(), report_before.remote_bytes());
}

#[test]
fn streaming_frames_reconstruct_through_the_broker() {
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(3, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let broker = Arc::new(Broker::new());
    let frames = 40u64;
    let cfg = FrameConfig::small();
    let payload_len = generate_frame(&cfg, 0).0.to_bytes().len();
    let mut job = StreamJobConfig::new("frames-it", 2, 1, 1);
    job.messages_per_producer = frames;
    job.payload_bytes = payload_len;
    let peaks = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let p2 = Arc::clone(&peaks);
    let report = run_stream_job(
        &svc,
        &broker,
        &job,
        Arc::new(move |m| {
            // Reconstruct a real generated frame keyed by offset (payload
            // in the generic job is synthetic fill).
            let (frame, truth) = generate_frame(&FrameConfig::small(), m.offset);
            let found = reconstruct(&frame.to_bytes(), 15.0).expect("valid frame");
            assert!(found.len() <= truth.len() + 2);
            p2.fetch_add(found.len() as u64, std::sync::atomic::Ordering::Relaxed);
        }),
    );
    svc.shutdown();
    assert_eq!(report.consumed, frames);
    let total = peaks.load(std::sync::atomic::Ordering::Relaxed);
    assert!(total >= frames * 2, "peak recovery collapsed: {total}");
}

#[test]
fn dataflow_stage_can_contain_a_mapreduce_job() {
    // Outer orchestration: generate text → wordcount (as a nested MapReduce
    // inside one stage) → verify counts. Uses a dedicated service per level
    // to avoid core starvation between nested waits.
    let outer = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let po = outer.submit_pilot(PilotDescription::new(2, SimDuration::MAX));
    assert!(outer.wait_pilot_active(po));

    let mut g = Dataflow::new();
    let gen = g.add_stage("gen-text", 1, |_, _| {
        let cfg = TextConfig {
            lines: 120,
            ..TextConfig::small()
        };
        Ok(Arc::new(generate_text(&cfg)) as StageData)
    });
    let count = g.add_stage("wordcount", 1, move |_, inputs| {
        let text = inputs.downcast_all::<Vec<String>>(gen)[0].as_ref().clone();
        let reference = count_words(&text);
        // Nested: its own small pilot service for the inner job.
        let inner = ThreadPilotService::new(Box::new(FirstFitScheduler));
        let pi = inner.submit_pilot(PilotDescription::new(2, SimDuration::MAX));
        assert!(inner.wait_pilot_active(pi));
        let job = MapReduceJob::new(
            MapReduceJob::<String, String, u64, u64>::split_input(text, 4),
            |line: &String, emit: &mut dyn FnMut(String, u64)| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1);
                }
            },
            |_k, vs: Vec<u64>| vs.iter().sum::<u64>(),
            2,
        );
        let result = job.run(&inner);
        inner.shutdown();
        let matches = result
            .output
            .iter()
            .all(|(k, v)| reference.get(k) == Some(v));
        if matches && result.output.len() == reference.len() {
            Ok(Arc::new(result.output.len()) as StageData)
        } else {
            Err("wordcount mismatch".to_string())
        }
    });
    g.add_edge(gen, count).unwrap();
    let report = g.run(&outer).unwrap();
    outer.shutdown();
    assert!(report.all_done(), "{:?}", report.status);
    assert!(*report.stage_outputs::<usize>(count)[0] > 10);
}

#[test]
fn iterative_kmeans_on_pilots_matches_sequential_reference() {
    let cfg = BlobConfig::new(3, 2, 900, 0xC4A7);
    let (points, _) = generate_blob_matrix(&cfg);
    let reference = lloyd_sequential(&points, 3, 6);
    let init = init_centroids(&points, 3);
    let bands: Vec<Vec<Matrix>> = points
        .partition_rows(6)
        .into_iter()
        .map(|band| vec![band])
        .collect();
    let source = Arc::new(VecSource::from_partitions(bands));
    let cache = Arc::new(CacheManager::new(source as _, CacheMode::Cached));
    let svc = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = svc.submit_pilot(PilotDescription::new(3, SimDuration::MAX));
    assert!(svc.wait_pilot_active(p));
    let exec = IterativeExecutor::new(
        cache,
        |part: &[Matrix], c: &Matrix, par: &Parallelism| match part.first() {
            Some(band) => assign_step(band, c, par),
            None => Partial::zero(c.rows(), c.cols()),
        },
        |ps: Vec<Partial>, c: Matrix| update_centroids(&ps, &c).0,
    );
    let out = exec.run(&svc, init, 6, |_, _| false);
    svc.shutdown();
    assert_eq!(out.failed_units, 0);
    for (a, b) in out
        .state
        .as_slice()
        .iter()
        .zip(reference.centroids.as_slice())
    {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
