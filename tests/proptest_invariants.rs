//! Property-based tests over the core invariants of the workspace.

use pilot_abstraction::apps::kmeans::{
    assign_step, generate_blob_matrix, init_centroids, update_centroids, BlobConfig, Partial,
};
use pilot_abstraction::apps::linalg::Matrix;
use pilot_abstraction::apps::pairwise::{
    contacts_grid, contacts_naive, contacts_naive_par, generate_points,
};
use pilot_abstraction::apps::seqalign::{
    align_reads, generate_reads, generate_reference, smith_waterman, Scoring,
};
use pilot_abstraction::core::describe::UnitDescription;
use pilot_abstraction::core::ids::{PilotId, UnitId};
use pilot_abstraction::core::retry::RetryPolicy;
use pilot_abstraction::core::scheduler::{
    DataAwareScheduler, FirstFitScheduler, LoadBalanceScheduler, PilotSnapshot,
    RoundRobinScheduler, Scheduler, UnitRequest,
};
use pilot_abstraction::core::Parallelism;
use pilot_abstraction::infra::types::SiteId;
use pilot_abstraction::perfmodel::{r_squared, FeatureMap, LinearModel};
use pilot_abstraction::sim::{percentile, Executor, Machine, Outbox, SimRng, SimTime};
use pilot_abstraction::streaming::Broker;
use proptest::prelude::*;
use std::sync::Arc;

// ---- DES engine ----------------------------------------------------------

struct Collector {
    seen: Vec<(SimTime, u32)>,
}

impl Machine for Collector {
    type Event = u32;
    fn handle(&mut self, now: SimTime, e: u32, _out: &mut Outbox<u32>) {
        self.seen.push((now, e));
    }
}

proptest! {
    #[test]
    fn engine_fires_events_in_nondecreasing_time_order(
        times in prop::collection::vec(0u64..100_000, 1..200)
    ) {
        let mut ex = Executor::new(Collector { seen: vec![] });
        for (i, &t) in times.iter().enumerate() {
            ex.schedule_at(SimTime::from_nanos(t), i as u32);
        }
        ex.run();
        let seen = &ex.machine().seen;
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
        }
        // Same-instant events preserve submission order.
        for w in seen.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    // ---- statistics -------------------------------------------------------

    #[test]
    fn percentiles_are_monotone_and_bounded(
        xs in prop::collection::vec(-1e6f64..1e6, 1..300)
    ) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p25 = percentile(&xs, 25.0);
        let p50 = percentile(&xs, 50.0);
        let p99 = percentile(&xs, 99.0);
        prop_assert!(lo <= p25 && p25 <= p50 && p50 <= p99 && p99 <= hi);
        prop_assert_eq!(percentile(&xs, 0.0), lo);
        prop_assert_eq!(percentile(&xs, 100.0), hi);
    }

    // ---- schedulers ---------------------------------------------------------

    #[test]
    fn schedulers_never_overcommit(
        frees in prop::collection::vec(0u32..16, 1..20),
        cores in 1u32..8,
    ) {
        let pilots: Vec<PilotSnapshot> = frees
            .iter()
            .enumerate()
            .map(|(i, &free)| PilotSnapshot {
                pilot: PilotId(i as u64),
                site: SiteId((i % 3) as u16),
                total_cores: 16,
                free_cores: free,
                bound_units: 0,
                remaining_walltime_s: 1e6,
            })
            .collect();
        let desc = UnitDescription::new(cores);
        let req = UnitRequest { unit: UnitId(1), desc: &desc };
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FirstFitScheduler),
            Box::new(RoundRobinScheduler::default()),
            Box::new(LoadBalanceScheduler),
            Box::new(DataAwareScheduler::default()),
        ];
        for s in &mut schedulers {
            if let Some(pid) = s.select(&req, &pilots) {
                let p = pilots.iter().find(|p| p.pilot == pid).expect("known pilot");
                prop_assert!(
                    p.free_cores >= cores,
                    "{} over-committed pilot {pid}",
                    s.name()
                );
            } else {
                // None is only allowed if nothing fits (modulo the
                // data-aware delay rule, which needs inputs to trigger —
                // this unit has none).
                prop_assert!(pilots.iter().all(|p| p.free_cores < cores));
            }
        }
    }

    // ---- K-Means ------------------------------------------------------------

    #[test]
    fn kmeans_partitioning_is_associative(
        raw in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 6..120),
        split in 1usize..5,
    ) {
        let rows: Vec<Vec<f64>> = raw.iter().map(|&(a, b)| vec![a, b]).collect();
        let points = Matrix::from_rows(&rows);
        let centroids = init_centroids(&points, 3.min(points.rows()));
        let par = Parallelism::sequential();
        let whole = assign_step(&points, &centroids, &par);
        let parts: Vec<Partial> = points
            .partition_rows(split)
            .iter()
            .map(|band| assign_step(band, &centroids, &par))
            .collect();
        let (c1, i1) = update_centroids(&parts, &centroids);
        let (c2, i2) = update_centroids(&[whole], &centroids);
        prop_assert!((i1 - i2).abs() <= 1e-6 * (1.0 + i2.abs()));
        for (a, b) in c1.as_slice().iter().zip(c2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    // Determinism contract of `pilot_core::par`: with fixed block boundaries
    // and an ordered left-fold merge, thread count must not change a single
    // bit of the K-Means partial. Dataset sizes span several
    // ASSIGN_BLOCK_ROWS blocks so the parallel path really engages.
    #[test]
    fn kmeans_parallel_partials_are_bit_identical(
        seed in 0u64..10_000,
        n in 1100usize..4000,
        threads in 2usize..9,
    ) {
        let cfg = BlobConfig::new(4, 3, n, seed);
        let (points, _) = generate_blob_matrix(&cfg);
        let centroids = init_centroids(&points, cfg.k);
        let seq = assign_step(&points, &centroids, &Parallelism::sequential());
        let par = assign_step(&points, &centroids, &Parallelism::new(threads));
        prop_assert_eq!(seq, par, "threads={} changed the partial", threads);
    }

    // ---- pairwise ------------------------------------------------------------

    #[test]
    fn grid_contacts_equal_naive(
        raw in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 0..150),
        cutoff in 0.5f64..5.0,
    ) {
        let points: Vec<[f64; 2]> = raw.iter().map(|&(a, b)| [a, b]).collect();
        prop_assert_eq!(contacts_naive(&points, cutoff), contacts_grid(&points, cutoff));
    }

    #[test]
    fn parallel_contacts_equal_sequential(
        seed in 0u64..10_000,
        n in 0usize..1200,
        threads in 1usize..9,
        cutoff in 0.5f64..4.0,
    ) {
        let points = generate_points(n, 60.0, seed);
        let par = Parallelism::new(threads);
        prop_assert_eq!(
            contacts_naive_par(&points, cutoff, &par),
            contacts_naive(&points, cutoff)
        );
    }

    // ---- alignment -------------------------------------------------------------

    #[test]
    fn smith_waterman_score_bounds(
        q in prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 1..40),
        r in prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 1..80),
    ) {
        let s = Scoring::default();
        let a = smith_waterman(&q, &r, s);
        prop_assert!(a.score >= 0, "local alignment is never negative");
        prop_assert!(a.score <= q.len() as i32 * s.match_score);
        prop_assert!(a.ref_end < r.len() || a.score == 0);
        // Self-alignment is maximal.
        let self_a = smith_waterman(&q, &q, s);
        prop_assert_eq!(self_a.score, q.len() as i32 * s.match_score);
    }

    // Determinism contract for the read-alignment fan-out: integer DP per
    // read, blocks concatenated in order — scores must be identical for any
    // thread count.
    #[test]
    fn parallel_alignment_scores_are_identical(
        seed in 0u64..10_000,
        n_reads in 1usize..70,
        threads in 2usize..9,
    ) {
        let reference = generate_reference(300, seed);
        let reads = generate_reads(&reference, n_reads, 30, 0.05, seed ^ 0xA5);
        let s = Scoring::default();
        let seq = align_reads(&reads, &reference, s, &Parallelism::sequential());
        let par = align_reads(&reads, &reference, s, &Parallelism::new(threads));
        prop_assert_eq!(seq, par, "threads={} changed an alignment", threads);
    }

    // ---- regression ---------------------------------------------------------------

    #[test]
    fn ols_recovers_planted_coefficients(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        c in -5.0f64..5.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 11) as f64, ((i * 7) % 13) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| a + b * x[0] + c * x[1]).collect();
        let m = LinearModel::fit(&xs, &ys, FeatureMap::Linear).expect("full-rank design");
        let preds = m.predict_all(&xs);
        prop_assert!(r_squared(&ys, &preds) > 1.0 - 1e-6);
        prop_assert!((m.weights[0] - a).abs() < 1e-5);
        prop_assert!((m.weights[1] - b).abs() < 1e-5);
        prop_assert!((m.weights[2] - c).abs() < 1e-5);
    }

    // ---- broker ---------------------------------------------------------------------

    #[test]
    fn broker_conserves_messages(
        n_msgs in 1usize..400,
        partitions in 1usize..8,
        keyed in proptest::bool::ANY,
    ) {
        let broker = Broker::new();
        broker.create_topic("t", partitions, 1_000_000).unwrap();
        broker.join_group("g", "t", "c").unwrap();
        for i in 0..n_msgs {
            let key = if keyed { Some(i as u64) } else { None };
            broker.produce("t", key, Arc::new(vec![0u8; 4])).unwrap();
        }
        let mut consumed = 0;
        loop {
            let batch = broker.poll("g", "c", 37).unwrap();
            if batch.is_empty() {
                break;
            }
            consumed += batch.len();
            // Offsets within each partition strictly increase per batch.
        }
        prop_assert_eq!(consumed, n_msgs);
        let hw: u64 = (0..partitions)
            .map(|p| broker.high_watermark("t", p).unwrap())
            .sum();
        prop_assert_eq!(hw, n_msgs as u64);
    }
}

// ---- retry backoff -------------------------------------------------------

proptest! {
    #[test]
    fn backoff_schedule_is_monotone_and_capped(
        base in 0.0f64..10.0,
        factor in 1.0f64..4.0,
        cap in 0.0f64..120.0,
        attempts in 1u32..40,
    ) {
        let p = RetryPolicy::exponential(attempts, base, factor, cap);
        let mut prev = 0.0f64;
        for k in 1..40u32 {
            let d = p.base_delay_s(k);
            prop_assert!(d >= prev - 1e-12, "schedule decreased at failure {}", k);
            prop_assert!(d <= cap + 1e-12, "schedule exceeded the cap at failure {}", k);
            prev = d;
        }
    }

    #[test]
    fn fixed_backoff_is_constant(delay in 0.0f64..60.0, k in 1u32..50) {
        let p = RetryPolicy::fixed(3, delay);
        prop_assert_eq!(p.base_delay_s(k), delay);
    }

    #[test]
    fn jittered_backoff_is_deterministic_per_seed_and_bounded(
        base in 0.01f64..10.0,
        factor in 1.0f64..3.0,
        cap in 0.01f64..60.0,
        jitter in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let p = RetryPolicy::exponential(8, base, factor, cap).with_jitter(jitter);
        let schedule = |seed: u64| -> Vec<f64> {
            let mut rng = SimRng::new(seed);
            (1..12u32).map(|k| p.delay_s(k, &mut rng)).collect()
        };
        let a = schedule(seed);
        let b = schedule(seed);
        prop_assert_eq!(a.clone(), b, "same seed must replay the same schedule");
        for (i, d) in a.iter().enumerate() {
            let base_k = p.base_delay_s(i as u32 + 1);
            prop_assert!(*d >= base_k - 1e-12, "jitter must not shrink the delay");
            prop_assert!(
                *d <= base_k * (1.0 + jitter) + 1e-12,
                "jitter must stay within its fraction"
            );
        }
    }

    #[test]
    fn retry_budget_counts_the_first_attempt(n in 1u32..20) {
        let p = RetryPolicy::fixed(n, 0.0);
        prop_assert!(p.allows_retry(n - 1), "attempt {} of {} must be allowed", n, n);
        prop_assert!(!p.allows_retry(n), "budget {} must be exhausted after {} attempts", n, n);
    }
}
