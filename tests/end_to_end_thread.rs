//! End-to-end integration of the threaded backend: multi-pilot scheduling,
//! report integrity, and the cross-crate frameworks driven through one
//! Pilot-API service.

use pilot_abstraction::core::describe::{PilotDescription, UnitDescription};
use pilot_abstraction::core::scheduler::{FirstFitScheduler, LoadBalanceScheduler};
use pilot_abstraction::core::state::UnitState;
use pilot_abstraction::core::thread::{kernel_fn, SyntheticKernel, TaskOutput, ThreadPilotService};
use pilot_abstraction::mapreduce::MapReduceJob;
use pilot_abstraction::sim::SimDuration;
use std::sync::Arc;

fn svc(cores: u32) -> ThreadPilotService {
    let s = ThreadPilotService::new(Box::new(FirstFitScheduler));
    let p = s.submit_pilot(PilotDescription::new(cores, SimDuration::MAX));
    assert!(s.wait_pilot_active(p));
    s
}

#[test]
fn report_timestamps_are_causally_ordered() {
    let s = svc(4);
    for _ in 0..24 {
        s.submit_unit(
            UnitDescription::new(1),
            Arc::new(SyntheticKernel::new(0.002)),
        );
    }
    s.wait_all_units();
    let report = s.shutdown();
    assert_eq!(report.units.len(), 24);
    for u in &report.units {
        assert_eq!(u.state, UnitState::Done);
        let t = u.times;
        let bound = t.bound.expect("done unit was bound");
        let started = t.started.expect("done unit started");
        let finished = t.finished.expect("done unit finished");
        assert!(t.submitted <= bound, "submit <= bind");
        assert!(bound <= started, "bind <= start");
        assert!(started <= finished, "start <= finish");
        assert!(u.pilot.is_some());
    }
}

#[test]
fn many_pilots_share_one_unit_queue() {
    let s = ThreadPilotService::new(Box::new(LoadBalanceScheduler));
    let pilots: Vec<_> = (0..3)
        .map(|_| s.submit_pilot(PilotDescription::new(2, SimDuration::MAX)))
        .collect();
    for p in &pilots {
        assert!(s.wait_pilot_active(*p));
    }
    let units: Vec<_> = (0..30)
        .map(|i| {
            s.submit_unit(
                UnitDescription::new(1),
                kernel_fn(move |_| Ok(TaskOutput::of(i as u64 * 2))),
            )
        })
        .collect();
    let mut sum = 0u64;
    for u in units {
        let out = s.wait_unit(u).unwrap();
        assert_eq!(out.state, UnitState::Done);
        sum += out.output.unwrap().unwrap().downcast::<u64>().ok().unwrap();
    }
    assert_eq!(sum, (0..30u64).map(|i| i * 2).sum::<u64>());
    let report = s.shutdown();
    // Every pilot ran something (load balancing across 3 × 2 cores).
    for p in pilots {
        let n = report.units.iter().filter(|u| u.pilot == Some(p)).count();
        assert!(n > 0, "pilot {p} ran nothing");
    }
}

#[test]
fn mapreduce_inside_units_composes_with_plain_units() {
    // A MapReduce job and loose units share the same pilots concurrently.
    let s = svc(4);
    let background: Vec<_> = (0..8)
        .map(|_| {
            s.submit_unit(
                UnitDescription::new(1),
                Arc::new(SyntheticKernel::new(0.01)),
            )
        })
        .collect();
    let job = MapReduceJob::new(
        MapReduceJob::<u32, u32, u32, u32>::split_input((0..400u32).collect(), 6),
        |x: &u32, emit: &mut dyn FnMut(u32, u32)| emit(x % 10, 1),
        |_k, vs: Vec<u32>| vs.iter().sum::<u32>(),
        3,
    );
    let r = job.run(&s);
    assert_eq!(r.output.len(), 10);
    assert!(r.output.iter().all(|(_, c)| *c == 40));
    for u in background {
        assert_eq!(s.wait_unit(u).unwrap().state, UnitState::Done);
    }
    s.shutdown();
}

#[test]
fn unit_results_are_taken_exactly_once() {
    let s = svc(1);
    let u = s.submit_unit(
        UnitDescription::new(1),
        kernel_fn(|_| Ok(TaskOutput::of(String::from("payload")))),
    );
    let first = s.wait_unit(u).unwrap();
    assert!(first.output.is_some());
    let second = s.wait_unit(u).unwrap();
    assert!(second.output.is_none(), "output is moved out on first wait");
    assert_eq!(second.state, UnitState::Done);
    s.shutdown();
}

#[test]
fn saturation_then_drain() {
    // More units than the pilot can ever run at once; they all finish and
    // peak concurrency never exceeds the pilot size.
    use std::sync::atomic::{AtomicU32, Ordering};
    let s = svc(3);
    let live = Arc::new(AtomicU32::new(0));
    let peak = Arc::new(AtomicU32::new(0));
    let units: Vec<_> = (0..30)
        .map(|_| {
            let live = Arc::clone(&live);
            let peak = Arc::clone(&peak);
            s.submit_unit(
                UnitDescription::new(1),
                kernel_fn(move |_| {
                    let n = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(n, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(3));
                    live.fetch_sub(1, Ordering::SeqCst);
                    Ok(TaskOutput::none())
                }),
            )
        })
        .collect();
    for u in units {
        assert_eq!(s.wait_unit(u).unwrap().state, UnitState::Done);
    }
    assert!(peak.load(Ordering::SeqCst) <= 3);
    s.shutdown();
}
