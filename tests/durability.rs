//! End-to-end durability: a replicated broker cluster under concurrent
//! producers and consumers, with a deterministic fault-plan-driven node kill
//! mid-stream, a failover, a recovery, and an exactly-once drain.

use pilot_core::retry::FaultPlan;
use pilot_streaming::wal::TempDir;
use pilot_streaming::{FsyncPolicy, KillSchedule, ReplicatedBroker, Retention, WalConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn encode(producer: u64, seq: u64) -> Arc<Vec<u8>> {
    let mut b = Vec::with_capacity(16);
    b.extend_from_slice(&producer.to_le_bytes());
    b.extend_from_slice(&seq.to_le_bytes());
    Arc::new(b)
}

fn decode(payload: &[u8]) -> (u64, u64) {
    let mut p = [0u8; 8];
    let mut s = [0u8; 8];
    p.copy_from_slice(&payload[..8]);
    s.copy_from_slice(&payload[8..16]);
    (u64::from_le_bytes(p), u64::from_le_bytes(s))
}

/// The full robustness story in one run: produce at full speed into a
/// 3-node replicated cluster, kill the node the deterministic fault plan
/// picks while the stream is in flight, keep producing and consuming through
/// the failover, restart the victim, and verify zero loss and zero
/// duplication end to end — plus a caught-up, byte-identical rejoined node.
#[test]
fn replicated_cluster_survives_scheduled_node_kill_exactly_once() {
    const PRODUCERS: u64 = 2;
    const CONSUMERS: usize = 2;
    const PER_PRODUCER: u64 = 3_000;
    const BATCH: u64 = 64;

    let dirs: Vec<TempDir> = (0..3)
        .map(|i| TempDir::new(&format!("durability-e2e-{i}")).unwrap())
        .collect();
    let cfgs: Vec<WalConfig> = dirs
        .iter()
        .map(|d| WalConfig::new(d.path()).with_fsync(FsyncPolicy::Never))
        .collect();
    let cluster = Arc::new(ReplicatedBroker::open(&cfgs).unwrap());
    cluster
        .create_topic("events", 4, Retention::Count(1_000_000))
        .unwrap();
    for c in 0..CONSUMERS {
        cluster.join_group("g", "events", &format!("c{c}")).unwrap();
    }

    // The kill is not ad hoc: the fault plan draws it from the reserved
    // BROKER_KILL stream, so the same seed replays the same failure.
    let plan = FaultPlan::none().with_broker_node_kills(0.5);
    let schedule = KillSchedule::from_plan(&plan, 42, 3);
    let (victim, _kill_t) = schedule.first().unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let producer_handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut seq = 0u64;
                while seq < PER_PRODUCER {
                    let chunk = BATCH.min(PER_PRODUCER - seq);
                    let records: Vec<_> =
                        (seq..seq + chunk).map(|s| (None, encode(p, s))).collect();
                    // Replication never fails the producer while any node is
                    // alive — the kill only drops a replica.
                    cluster.produce_batch("events", records).unwrap();
                    seq += chunk;
                }
            })
        })
        .collect();

    let consumer_handles: Vec<_> = (0..CONSUMERS)
        .map(|c| {
            let cluster = Arc::clone(&cluster);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut sub = cluster.subscribe("g", &format!("c{c}")).unwrap();
                let mut buf = Vec::new();
                let mut got: Vec<(u64, u64)> = Vec::new();
                loop {
                    let was_done = done.load(Ordering::Acquire);
                    let seq = cluster.data_seq();
                    let n = cluster.poll_into(&mut sub, 64, &mut buf).unwrap();
                    if n == 0 {
                        if was_done {
                            break;
                        }
                        cluster.wait_for_data(seq, Duration::from_millis(5));
                        continue;
                    }
                    got.extend(buf.iter().map(|m| decode(&m.payload)));
                }
                got
            })
        })
        .collect();

    // Kill the scheduled victim while the stream is demonstrably in flight
    // (before producers have finished).
    std::thread::sleep(Duration::from_millis(10));
    let pre_epoch = cluster.cluster_epoch();
    let failovers = cluster.kill_node(victim).unwrap();
    assert!(cluster.cluster_epoch() > pre_epoch);
    assert!(
        failovers >= 1,
        "with 4 partitions round-robin over 3 nodes, every node leads"
    );

    for h in producer_handles {
        h.join().unwrap();
    }
    done.store(true, Ordering::Release);
    cluster.wake_all();
    let mut seen: Vec<(u64, u64)> = Vec::new();
    for h in consumer_handles {
        seen.extend(h.join().unwrap());
    }

    let expected = PRODUCERS * PER_PRODUCER;
    assert_eq!(seen.len() as u64, expected, "zero loss, zero duplication");
    let unique: HashSet<(u64, u64)> = seen.iter().copied().collect();
    assert_eq!(unique.len() as u64, expected);
    let stats = cluster.stats();
    assert_eq!(stats.node_kills, 1);
    assert!(stats.leader_failovers >= 1);

    // The victim restarts, replays its WAL, and catches up from a live
    // replica until its partitions are record-for-record identical.
    cluster.restart_node(victim).unwrap();
    assert_eq!(cluster.alive_nodes(), vec![0, 1, 2]);
    let restarted = cluster.node_broker(victim).unwrap();
    let survivor = cluster
        .node_broker(
            cluster
                .alive_nodes()
                .into_iter()
                .find(|&n| n != victim)
                .unwrap(),
        )
        .unwrap();
    for p in 0..4 {
        let a: Vec<_> = restarted
            .fetch("events", p, 0, usize::MAX)
            .unwrap()
            .iter()
            .map(|m| (m.offset, m.payload.as_ref().clone()))
            .collect();
        let b: Vec<_> = survivor
            .fetch("events", p, 0, usize::MAX)
            .unwrap()
            .iter()
            .map(|m| (m.offset, m.payload.as_ref().clone()))
            .collect();
        assert_eq!(a, b, "partition {p} diverged after catch-up");
    }
    // Committed offsets replicated to the rejoined node too: the whole
    // stream is accounted as consumed everywhere.
    assert_eq!(restarted.group_stats("g").unwrap().committed, expected);
}

/// Double failure: two of three nodes die at different points mid-stream,
/// leaving a single survivor carrying every partition lease. The stream
/// must ride through both failovers exactly once, and both victims must
/// catch back up to byte parity on restart.
#[test]
fn replicated_cluster_survives_two_staggered_node_kills() {
    const PRODUCERS: u64 = 2;
    const PER_PRODUCER: u64 = 2_000;
    const BATCH: u64 = 64;

    let dirs: Vec<TempDir> = (0..3)
        .map(|i| TempDir::new(&format!("durability-2kill-{i}")).unwrap())
        .collect();
    let cfgs: Vec<WalConfig> = dirs
        .iter()
        .map(|d| WalConfig::new(d.path()).with_fsync(FsyncPolicy::Never))
        .collect();
    let cluster = Arc::new(ReplicatedBroker::open(&cfgs).unwrap());
    cluster
        .create_topic("events", 4, Retention::Count(1_000_000))
        .unwrap();
    cluster.join_group("g", "events", "c0").unwrap();

    // Both kills come off the same deterministic schedule: first draw and
    // second draw, in kill-time order.
    let plan = FaultPlan::none().with_broker_node_kills(0.5);
    let schedule = KillSchedule::from_plan(&plan, 42, 3);
    let mut order: Vec<(usize, f64)> = (0..3)
        .filter_map(|i| schedule.kill_time_s(i).map(|t| (i, t)))
        .collect();
    order.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (first_victim, second_victim) = (order[0].0, order[1].0);

    let done = Arc::new(AtomicBool::new(false));
    let producer_handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut seq = 0u64;
                while seq < PER_PRODUCER {
                    let chunk = BATCH.min(PER_PRODUCER - seq);
                    let records: Vec<_> =
                        (seq..seq + chunk).map(|s| (None, encode(p, s))).collect();
                    cluster.produce_batch("events", records).unwrap();
                    seq += chunk;
                }
            })
        })
        .collect();

    let consumer = {
        let cluster = Arc::clone(&cluster);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut sub = cluster.subscribe("g", "c0").unwrap();
            let mut buf = Vec::new();
            let mut got: Vec<(u64, u64)> = Vec::new();
            loop {
                let was_done = done.load(Ordering::Acquire);
                let seq = cluster.data_seq();
                let n = cluster.poll_into(&mut sub, 64, &mut buf).unwrap();
                if n == 0 {
                    if was_done {
                        break;
                    }
                    cluster.wait_for_data(seq, Duration::from_millis(5));
                    continue;
                }
                got.extend(buf.iter().map(|m| decode(&m.payload)));
            }
            got
        })
    };

    // Stagger the two kills while the stream is in flight. After the
    // second, a single node survives and must hold every partition lease.
    std::thread::sleep(Duration::from_millis(5));
    cluster.kill_node(first_victim).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    cluster.kill_node(second_victim).unwrap();
    let survivor_idx = (0..3)
        .find(|i| ![first_victim, second_victim].contains(i))
        .unwrap();
    assert_eq!(cluster.alive_nodes(), vec![survivor_idx]);
    for p in 0..4 {
        assert_eq!(cluster.lease("events", p).unwrap().node, survivor_idx);
    }

    for h in producer_handles {
        h.join().unwrap();
    }
    done.store(true, Ordering::Release);
    cluster.wake_all();
    let seen = consumer.join().unwrap();

    let expected = PRODUCERS * PER_PRODUCER;
    assert_eq!(seen.len() as u64, expected, "zero loss, zero duplication");
    let unique: HashSet<(u64, u64)> = seen.iter().copied().collect();
    assert_eq!(unique.len() as u64, expected);
    let stats = cluster.stats();
    assert_eq!(stats.node_kills, 2);

    // Both victims restart against the lone survivor and converge to
    // record-for-record parity.
    cluster.restart_node(first_victim).unwrap();
    cluster.restart_node(second_victim).unwrap();
    assert_eq!(cluster.alive_nodes(), vec![0, 1, 2]);
    let survivor = cluster.node_broker(survivor_idx).unwrap();
    for victim in [first_victim, second_victim] {
        let rejoined = cluster.node_broker(victim).unwrap();
        for p in 0..4 {
            let a: Vec<_> = rejoined
                .fetch("events", p, 0, usize::MAX)
                .unwrap()
                .iter()
                .map(|m| (m.offset, m.payload.as_ref().clone()))
                .collect();
            let b: Vec<_> = survivor
                .fetch("events", p, 0, usize::MAX)
                .unwrap()
                .iter()
                .map(|m| (m.offset, m.payload.as_ref().clone()))
                .collect();
            assert_eq!(a, b, "node {victim} partition {p} diverged after catch-up");
        }
        assert_eq!(rejoined.group_stats("g").unwrap().committed, expected);
    }
}
