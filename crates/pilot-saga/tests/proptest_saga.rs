//! Property-based tests of the access layer: the uniform capacity protocol
//! (`Queued → CapacityUp* → CapacityDown*/Done`) must hold for every backend
//! under arbitrary submit/cancel interleavings, and capacity accounting must
//! balance exactly.

use pilot_infra::cloud::{CloudConfig, CloudProvider};
use pilot_infra::component::drive_until;
use pilot_infra::hpc::{HpcCluster, HpcConfig};
use pilot_infra::htc::{HtcConfig, HtcPool};
use pilot_infra::types::JobId;
use pilot_infra::yarn::{YarnCluster, YarnConfig};
use pilot_saga::{JobDescription, ResourceAdaptor, SagaIn, SagaOut};
use pilot_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;

fn adaptor(kind: usize) -> ResourceAdaptor {
    match kind {
        0 => ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet("hpc", 64))),
        1 => ResourceAdaptor::htc(HtcPool::new(HtcConfig::reliable("htc", 64))),
        2 => ResourceAdaptor::cloud(CloudProvider::new(CloudConfig::generic("cloud", 256))),
        _ => ResourceAdaptor::yarn(YarnCluster::new(YarnConfig::new("yarn", 64))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every backend and arbitrary job mixes: the protocol order holds,
    /// CapacityUp/Down totals are consistent, every job emits exactly one
    /// Done, and capacity ends at zero.
    #[test]
    fn adaptor_protocol_is_balanced(
        kind in 0usize..4,
        jobs in prop::collection::vec(
            // (cores, runtime_s, walltime_s, submit_at_s, cancel_after)
            (1u32..24, 10u64..600, 60u64..900, 0u64..120, prop::option::of(5u64..700)),
            1..12
        ),
    ) {
        let mut a = adaptor(kind);
        let mut inputs = a.initial_inputs();
        for (i, &(cores, runtime, walltime, at, cancel)) in jobs.iter().enumerate() {
            let job = JobId(i as u64);
            inputs.push((
                SimTime::from_secs(at),
                SagaIn::Submit {
                    job,
                    desc: JobDescription::task(
                        cores,
                        SimDuration::from_secs(runtime),
                        SimDuration::from_secs(walltime),
                    ),
                },
            ));
            if let Some(after) = cancel {
                inputs.push((SimTime::from_secs(at + after), SagaIn::Cancel(job)));
            }
        }
        let outs = drive_until(&mut a, inputs, SimTime::from_hours(200));

        let mut queued: HashMap<JobId, usize> = HashMap::new();
        let mut live: HashMap<JobId, i64> = HashMap::new();
        let mut done: HashMap<JobId, usize> = HashMap::new();
        for (_, o) in &outs {
            match o {
                SagaOut::Queued { job } => {
                    *queued.entry(*job).or_insert(0) += 1;
                    prop_assert!(!done.contains_key(job), "Queued after Done");
                }
                SagaOut::CapacityUp { job, cores, total } => {
                    prop_assert!(queued.contains_key(job), "capacity before Queued");
                    prop_assert!(!done.contains_key(job), "capacity after Done");
                    let l = live.entry(*job).or_insert(0);
                    *l += i64::from(*cores);
                    prop_assert_eq!(*l, i64::from(*total), "CapacityUp total mismatch");
                }
                SagaOut::CapacityDown { job, cores, total } => {
                    let l = live.entry(*job).or_insert(0);
                    *l -= i64::from(*cores);
                    prop_assert!(*l >= 0, "capacity went negative");
                    prop_assert_eq!(*l, i64::from(*total), "CapacityDown total mismatch");
                }
                SagaOut::Done { job, .. } => {
                    *done.entry(*job).or_insert(0) += 1;
                }
            }
        }
        // Exactly one Queued and one Done per submitted job.
        prop_assert_eq!(queued.len(), jobs.len());
        prop_assert!(queued.values().all(|&c| c == 1));
        prop_assert_eq!(done.len(), jobs.len(), "every job must terminate");
        prop_assert!(done.values().all(|&c| c == 1), "Done exactly once");
        // All capacity returned.
        for (job, l) in &live {
            prop_assert_eq!(*l, 0, "job {} still holds cores", job);
        }
        // Adaptor agrees.
        for i in 0..jobs.len() {
            prop_assert_eq!(a.active_cores(JobId(i as u64)), 0);
            let st = a.job_state(JobId(i as u64)).expect("tracked");
            prop_assert!(st.is_terminal());
        }
    }

    /// Placeholders (runtime = forever) on any backend are fully torn down
    /// by cancel, regardless of when the cancel lands.
    #[test]
    fn placeholder_cancel_always_tears_down(
        kind in 0usize..4,
        cores in 1u32..32,
        cancel_at in 1u64..5000,
    ) {
        let mut a = adaptor(kind);
        let mut inputs = a.initial_inputs();
        inputs.push((
            SimTime::ZERO,
            SagaIn::Submit {
                job: JobId(1),
                desc: JobDescription::placeholder(cores, SimDuration::from_hours(4)),
            },
        ));
        inputs.push((SimTime::from_secs(cancel_at), SagaIn::Cancel(JobId(1))));
        let outs = drive_until(&mut a, inputs, SimTime::from_hours(100));
        let dones = outs
            .iter()
            .filter(|(_, o)| matches!(o, SagaOut::Done { .. }))
            .count();
        prop_assert_eq!(dones, 1);
        prop_assert_eq!(a.active_cores(JobId(1)), 0);
    }
}
