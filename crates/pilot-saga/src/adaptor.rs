//! Resource adaptors: one uniform job interface, four backends.
//!
//! Each [`ResourceAdaptor`] wraps exactly one infrastructure component and
//! translates between the uniform alphabet ([`SagaIn`]/[`SagaOut`]) and the
//! backend's native one. Capacity semantics per backend:
//!
//! - **HPC**: gang allocation — all cores arrive at once when the batch job
//!   starts, and leave at once.
//! - **HTC**: a request for N cores becomes N single-slot *glide-ins*;
//!   capacity arrives incrementally as slots match and can shrink when slots
//!   fail (the glide-in is requeued and capacity later returns).
//! - **Cloud**: the request is planned onto instance types (greedy
//!   largest-fit); capacity arrives per VM as boots complete. Walltime is
//!   enforced by the adaptor (clouds don't kill your VMs for you).
//! - **YARN**: one container, allocated after a negotiation latency;
//!   walltime enforced by the adaptor.

use crate::job::{JobDescription, JobState};
use pilot_infra::cloud::{CloudIn, CloudOut, CloudProvider, VmId};
use pilot_infra::component::{Component, Effects};
use pilot_infra::hpc::{BatchRequest, HpcCluster, HpcIn, HpcOut};
use pilot_infra::htc::{HtcIn, HtcOut, HtcPool, HtcRequest};
use pilot_infra::types::{JobId, JobOutcome};
use pilot_infra::yarn::{ContainerId, YarnCluster, YarnIn, YarnOut};
use pilot_sim::SimTime;
use std::collections::HashMap;

/// Native inputs of the wrapped backend, routed back by the embedding sim.
#[derive(Clone, Debug)]
pub enum InfraIn {
    /// HPC batch cluster event.
    Hpc(HpcIn),
    /// HTC pool event.
    Htc(HtcIn),
    /// Cloud provider event.
    Cloud(CloudIn),
    /// YARN resource-manager event.
    Yarn(YarnIn),
}

/// Uniform input alphabet.
#[derive(Clone, Debug)]
pub enum SagaIn {
    /// Submit a job.
    Submit {
        /// Caller-chosen id.
        job: JobId,
        /// What to run.
        desc: JobDescription,
    },
    /// Cancel a job in any non-terminal state.
    Cancel(JobId),
    /// Internal: adaptor-enforced walltime/runtime expiry (generation-guarded).
    Expire(JobId, u64),
    /// Internal: wrapped backend event.
    Infra(InfraIn),
}

/// Uniform output alphabet.
#[derive(Clone, Debug, PartialEq)]
pub enum SagaOut {
    /// The job was accepted and waits for resources.
    Queued { job: JobId },
    /// `cores` additional cores became usable; `total` now active.
    CapacityUp { job: JobId, cores: u32, total: u32 },
    /// `cores` were lost (failure, partial teardown); `total` now active.
    CapacityDown { job: JobId, cores: u32, total: u32 },
    /// Terminal transition.
    Done { job: JobId, outcome: JobOutcome },
}

enum Backend {
    Hpc(HpcCluster),
    Htc(HtcPool),
    Cloud(CloudProvider),
    Yarn(YarnCluster),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum SubId {
    Batch(JobId),
    Slot(JobId),
    Vm(VmId),
    Container(ContainerId),
}

struct Sub {
    id: SubId,
    cores: u32,
    active: bool,
    dead: bool,
}

struct JobRec {
    desc: JobDescription,
    state: JobState,
    active_cores: u32,
    subs: Vec<Sub>,
    generation: u64,
    cancel_requested: bool,
    ever_active: bool,
}

impl JobRec {
    fn natural_outcome(&self) -> JobOutcome {
        if self.cancel_requested {
            JobOutcome::Canceled
        } else if !self.ever_active {
            JobOutcome::Rejected
        } else if self.desc.runtime <= self.desc.walltime {
            JobOutcome::Completed
        } else {
            JobOutcome::WalltimeExceeded
        }
    }
}

/// Uniform adaptor over one infrastructure backend.
pub struct ResourceAdaptor {
    name: String,
    backend: Backend,
    jobs: HashMap<JobId, JobRec>,
    /// Reverse map from backend-native sub-unit to the uniform job.
    sub_owner: HashMap<SubId, JobId>,
    next_sub: u64,
}

/// Greedy largest-fit plan of `cores` onto instance types. Returns catalog
/// indices; may overshoot by at most the smallest type's core count.
pub fn plan_instances(cores: u32, types: &[pilot_infra::cloud::InstanceType]) -> Vec<usize> {
    assert!(!types.is_empty(), "empty instance catalog");
    let mut by_size: Vec<usize> = (0..types.len()).collect();
    by_size.sort_by_key(|&i| std::cmp::Reverse(types[i].cores));
    // lint: allow(panic, reason = "guarded by the non-empty catalog assert at function entry")
    let smallest = *by_size.last().expect("non-empty");
    let mut plan = Vec::new();
    let mut remaining = cores as i64;
    while remaining > 0 {
        let pick = by_size
            .iter()
            .copied()
            .find(|&i| (types[i].cores as i64) <= remaining)
            .unwrap_or(smallest);
        plan.push(pick);
        remaining -= types[pick].cores as i64;
    }
    plan
}

impl ResourceAdaptor {
    /// Wrap an HPC batch cluster.
    pub fn hpc(cluster: HpcCluster) -> Self {
        Self::new(cluster.name().to_string(), Backend::Hpc(cluster))
    }

    /// Wrap an HTC pool.
    pub fn htc(pool: HtcPool) -> Self {
        Self::new(pool.name().to_string(), Backend::Htc(pool))
    }

    /// Wrap a cloud provider/region.
    pub fn cloud(provider: CloudProvider) -> Self {
        Self::new(provider.name().to_string(), Backend::Cloud(provider))
    }

    /// Wrap a YARN-like resource manager.
    pub fn yarn(cluster: YarnCluster) -> Self {
        Self::new(cluster.name().to_string(), Backend::Yarn(cluster))
    }

    fn new(name: String, backend: Backend) -> Self {
        ResourceAdaptor {
            name,
            backend,
            jobs: HashMap::new(),
            sub_owner: HashMap::new(),
            next_sub: 1,
        }
    }

    /// Backend resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Short label of the backend kind.
    pub fn kind(&self) -> &'static str {
        match self.backend {
            Backend::Hpc(_) => "hpc",
            Backend::Htc(_) => "htc",
            Backend::Cloud(_) => "cloud",
            Backend::Yarn(_) => "yarn",
        }
    }

    /// Events that must be scheduled at simulation start.
    pub fn initial_inputs(&self) -> Vec<(SimTime, SagaIn)> {
        match &self.backend {
            Backend::Hpc(c) => c
                .initial_inputs()
                .into_iter()
                .map(|(t, e)| (t, SagaIn::Infra(InfraIn::Hpc(e))))
                .collect(),
            Backend::Htc(p) => p
                .initial_inputs()
                .into_iter()
                .map(|(t, e)| (t, SagaIn::Infra(InfraIn::Htc(e))))
                .collect(),
            Backend::Cloud(_) | Backend::Yarn(_) => vec![],
        }
    }

    /// Current lifecycle state of a job, if known.
    pub fn job_state(&self, job: JobId) -> Option<JobState> {
        self.jobs.get(&job).map(|r| r.state)
    }

    /// Cores the job currently holds.
    pub fn active_cores(&self, job: JobId) -> u32 {
        self.jobs.get(&job).map_or(0, |r| r.active_cores)
    }

    /// Access the wrapped HPC cluster, if that is the backend kind.
    pub fn as_hpc(&self) -> Option<&HpcCluster> {
        match &self.backend {
            Backend::Hpc(c) => Some(c),
            _ => None,
        }
    }

    /// Access the wrapped cloud provider, if that is the backend kind.
    pub fn as_cloud(&self) -> Option<&CloudProvider> {
        match &self.backend {
            Backend::Cloud(c) => Some(c),
            _ => None,
        }
    }

    fn fresh_sub(&mut self) -> u64 {
        let id = self.next_sub;
        self.next_sub += 1;
        id
    }

    // ---- backend feeding -------------------------------------------------

    fn feed(&mut self, now: SimTime, ev: InfraIn, fx: &mut Effects<SagaIn, SagaOut>) {
        match ev {
            InfraIn::Hpc(e) => {
                let Backend::Hpc(c) = &mut self.backend else {
                    return;
                };
                let mut inner = Effects::new(now);
                c.handle(now, e, &mut inner);
                for (t, ie) in inner.later {
                    fx.at(t, SagaIn::Infra(InfraIn::Hpc(ie)));
                }
                for o in inner.out {
                    self.on_hpc_out(now, o, fx);
                }
            }
            InfraIn::Htc(e) => {
                let Backend::Htc(p) = &mut self.backend else {
                    return;
                };
                let mut inner = Effects::new(now);
                p.handle(now, e, &mut inner);
                for (t, ie) in inner.later {
                    fx.at(t, SagaIn::Infra(InfraIn::Htc(ie)));
                }
                for o in inner.out {
                    self.on_htc_out(now, o, fx);
                }
            }
            InfraIn::Cloud(e) => {
                let Backend::Cloud(c) = &mut self.backend else {
                    return;
                };
                let mut inner = Effects::new(now);
                c.handle(now, e, &mut inner);
                for (t, ie) in inner.later {
                    fx.at(t, SagaIn::Infra(InfraIn::Cloud(ie)));
                }
                for o in inner.out {
                    self.on_cloud_out(now, o, fx);
                }
            }
            InfraIn::Yarn(e) => {
                let Backend::Yarn(y) = &mut self.backend else {
                    return;
                };
                let mut inner = Effects::new(now);
                y.handle(now, e, &mut inner);
                for (t, ie) in inner.later {
                    fx.at(t, SagaIn::Infra(InfraIn::Yarn(ie)));
                }
                for o in inner.out {
                    self.on_yarn_out(now, o, fx);
                }
            }
        }
    }

    // ---- submission ------------------------------------------------------

    fn submit(
        &mut self,
        now: SimTime,
        job: JobId,
        desc: JobDescription,
        fx: &mut Effects<SagaIn, SagaOut>,
    ) {
        if self.jobs.contains_key(&job) {
            fx.emit(SagaOut::Done {
                job,
                outcome: JobOutcome::Rejected,
            });
            return;
        }
        let mut rec = JobRec {
            desc: desc.clone(),
            state: JobState::Pending,
            active_cores: 0,
            subs: Vec::new(),
            generation: 0,
            cancel_requested: false,
            ever_active: false,
        };
        fx.emit(SagaOut::Queued { job });
        match &self.backend {
            Backend::Hpc(_) => {
                let sub = JobId(self.fresh_sub());
                rec.subs.push(Sub {
                    id: SubId::Batch(sub),
                    cores: desc.cores,
                    active: false,
                    dead: false,
                });
                self.sub_owner.insert(SubId::Batch(sub), job);
                self.jobs.insert(job, rec);
                self.feed(
                    now,
                    InfraIn::Hpc(HpcIn::Submit(BatchRequest {
                        job: sub,
                        cores: desc.cores,
                        walltime: desc.walltime,
                        runtime: desc.runtime,
                    })),
                    fx,
                );
            }
            Backend::Htc(_) => {
                // Glide-in decomposition: one single-slot job per core.
                let slot_runtime = desc.runtime.min(desc.walltime);
                let n = desc.cores.max(1);
                let mut submits = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let sub = JobId(self.fresh_sub());
                    rec.subs.push(Sub {
                        id: SubId::Slot(sub),
                        cores: 1,
                        active: false,
                        dead: false,
                    });
                    self.sub_owner.insert(SubId::Slot(sub), job);
                    submits.push(sub);
                }
                self.jobs.insert(job, rec);
                for sub in submits {
                    self.feed(
                        now,
                        InfraIn::Htc(HtcIn::Submit(HtcRequest {
                            job: sub,
                            runtime: slot_runtime,
                        })),
                        fx,
                    );
                }
            }
            Backend::Cloud(provider) => {
                let plan = plan_instances(desc.cores, provider.types());
                let type_cores: Vec<u32> = provider.types().iter().map(|t| t.cores).collect();
                let mut requests = Vec::with_capacity(plan.len());
                for type_index in plan {
                    let vm = VmId(self.fresh_sub());
                    let cores = type_cores[type_index];
                    rec.subs.push(Sub {
                        id: SubId::Vm(vm),
                        cores,
                        active: false,
                        dead: false,
                    });
                    self.sub_owner.insert(SubId::Vm(vm), job);
                    requests.push((vm, type_index));
                }
                let expiry = desc.runtime.min(desc.walltime);
                let gen = rec.generation;
                self.jobs.insert(job, rec);
                for (vm, type_index) in requests {
                    self.feed(now, InfraIn::Cloud(CloudIn::Request { vm, type_index }), fx);
                }
                fx.after(expiry, SagaIn::Expire(job, gen));
            }
            Backend::Yarn(_) => {
                let container = ContainerId(self.fresh_sub());
                rec.subs.push(Sub {
                    id: SubId::Container(container),
                    cores: desc.cores,
                    active: false,
                    dead: false,
                });
                self.sub_owner.insert(SubId::Container(container), job);
                let expiry = desc.runtime.min(desc.walltime);
                let gen = rec.generation;
                self.jobs.insert(job, rec);
                self.feed(
                    now,
                    InfraIn::Yarn(YarnIn::Request {
                        container,
                        vcores: desc.cores,
                    }),
                    fx,
                );
                fx.after(expiry, SagaIn::Expire(job, gen));
            }
        }
    }

    // ---- cancellation / expiry -------------------------------------------

    fn teardown(
        &mut self,
        now: SimTime,
        job: JobId,
        cancel: bool,
        fx: &mut Effects<SagaIn, SagaOut>,
    ) {
        let Some(rec) = self.jobs.get_mut(&job) else {
            return;
        };
        if rec.state.is_terminal() {
            return;
        }
        if cancel {
            rec.cancel_requested = true;
        }
        rec.generation += 1;
        let live: Vec<SubId> = rec.subs.iter().filter(|s| !s.dead).map(|s| s.id).collect();
        for sub in live {
            match sub {
                SubId::Batch(id) => self.feed(now, InfraIn::Hpc(HpcIn::Cancel(id)), fx),
                SubId::Slot(id) => self.feed(now, InfraIn::Htc(HtcIn::Cancel(id)), fx),
                SubId::Vm(vm) => self.feed(now, InfraIn::Cloud(CloudIn::Terminate(vm)), fx),
                SubId::Container(c) => self.feed(now, InfraIn::Yarn(YarnIn::Release(c)), fx),
            }
        }
    }

    // ---- shared sub-unit state transitions --------------------------------

    fn sub_up(&mut self, job: JobId, sub: SubId, fx: &mut Effects<SagaIn, SagaOut>) {
        let Some(rec) = self.jobs.get_mut(&job) else {
            return;
        };
        let Some(s) = rec.subs.iter_mut().find(|s| s.id == sub) else {
            return;
        };
        if s.active || s.dead {
            return;
        }
        s.active = true;
        let cores = s.cores;
        rec.active_cores += cores;
        rec.ever_active = true;
        if rec.state == JobState::Pending {
            rec.state = JobState::Running;
        }
        fx.emit(SagaOut::CapacityUp {
            job,
            cores,
            total: rec.active_cores,
        });
    }

    /// A sub-unit lost capacity. `dead` means it will never come back.
    fn sub_down(
        &mut self,
        job: JobId,
        sub: SubId,
        dead: bool,
        outcome_hint: Option<JobOutcome>,
        fx: &mut Effects<SagaIn, SagaOut>,
    ) {
        let Some(rec) = self.jobs.get_mut(&job) else {
            return;
        };
        let Some(s) = rec.subs.iter_mut().find(|s| s.id == sub) else {
            return;
        };
        if s.dead {
            return;
        }
        let was_active = s.active;
        s.active = false;
        if dead {
            s.dead = true;
        }
        if was_active {
            rec.active_cores -= s.cores;
            let cores = s.cores;
            fx.emit(SagaOut::CapacityDown {
                job,
                cores,
                total: rec.active_cores,
            });
        }
        if rec.subs.iter().all(|s| s.dead) && !rec.state.is_terminal() {
            let outcome = match outcome_hint {
                // A hint only decides the aggregate when nothing ever ran
                // (e.g. all-rejected); otherwise natural outcome rules.
                Some(h) if !rec.ever_active => h,
                _ => rec.natural_outcome(),
            };
            rec.state = match outcome {
                JobOutcome::Completed => JobState::Done,
                JobOutcome::Canceled => JobState::Canceled,
                _ => JobState::Failed,
            };
            fx.emit(SagaOut::Done { job, outcome });
        }
    }

    // ---- per-backend output translation ------------------------------------

    fn on_hpc_out(&mut self, _now: SimTime, o: HpcOut, fx: &mut Effects<SagaIn, SagaOut>) {
        match o {
            HpcOut::Queued { .. } => {} // uniform Queued already emitted
            HpcOut::Started { job: sub } => {
                if let Some(&owner) = self.sub_owner.get(&SubId::Batch(sub)) {
                    self.sub_up(owner, SubId::Batch(sub), fx);
                }
            }
            HpcOut::Finished { job: sub, outcome } => {
                if let Some(&owner) = self.sub_owner.get(&SubId::Batch(sub)) {
                    self.sub_down(owner, SubId::Batch(sub), true, Some(outcome), fx);
                }
            }
        }
    }

    fn on_htc_out(&mut self, _now: SimTime, o: HtcOut, fx: &mut Effects<SagaIn, SagaOut>) {
        match o {
            HtcOut::Queued { .. } => {}
            HtcOut::Started { job: sub, .. } => {
                if let Some(&owner) = self.sub_owner.get(&SubId::Slot(sub)) {
                    self.sub_up(owner, SubId::Slot(sub), fx);
                }
            }
            HtcOut::Requeued { job: sub } => {
                // Slot lost, glide-in will come back: capacity down, not dead.
                if let Some(&owner) = self.sub_owner.get(&SubId::Slot(sub)) {
                    self.sub_down(owner, SubId::Slot(sub), false, None, fx);
                }
            }
            HtcOut::Finished { job: sub, outcome } => {
                if let Some(&owner) = self.sub_owner.get(&SubId::Slot(sub)) {
                    self.sub_down(owner, SubId::Slot(sub), true, Some(outcome), fx);
                }
            }
        }
    }

    fn on_cloud_out(&mut self, _now: SimTime, o: CloudOut, fx: &mut Effects<SagaIn, SagaOut>) {
        match o {
            CloudOut::Active { vm, .. } => {
                if let Some(&owner) = self.sub_owner.get(&SubId::Vm(vm)) {
                    self.sub_up(owner, SubId::Vm(vm), fx);
                }
            }
            CloudOut::Terminated { vm, .. } => {
                if let Some(&owner) = self.sub_owner.get(&SubId::Vm(vm)) {
                    self.sub_down(owner, SubId::Vm(vm), true, None, fx);
                }
            }
            CloudOut::Rejected { vm } => {
                if let Some(&owner) = self.sub_owner.get(&SubId::Vm(vm)) {
                    self.sub_down(owner, SubId::Vm(vm), true, Some(JobOutcome::Rejected), fx);
                }
            }
        }
    }

    fn on_yarn_out(&mut self, _now: SimTime, o: YarnOut, fx: &mut Effects<SagaIn, SagaOut>) {
        match o {
            YarnOut::Allocated { container, .. } => {
                if let Some(&owner) = self.sub_owner.get(&SubId::Container(container)) {
                    self.sub_up(owner, SubId::Container(container), fx);
                }
            }
            YarnOut::Released { container } => {
                if let Some(&owner) = self.sub_owner.get(&SubId::Container(container)) {
                    self.sub_down(owner, SubId::Container(container), true, None, fx);
                }
            }
            YarnOut::Rejected { container } => {
                if let Some(&owner) = self.sub_owner.get(&SubId::Container(container)) {
                    self.sub_down(
                        owner,
                        SubId::Container(container),
                        true,
                        Some(JobOutcome::Rejected),
                        fx,
                    );
                }
            }
        }
    }
}

impl Component for ResourceAdaptor {
    type In = SagaIn;
    type Out = SagaOut;

    fn handle(&mut self, now: SimTime, input: SagaIn, fx: &mut Effects<SagaIn, SagaOut>) {
        match input {
            SagaIn::Submit { job, desc } => self.submit(now, job, desc, fx),
            SagaIn::Cancel(job) => self.teardown(now, job, true, fx),
            SagaIn::Expire(job, gen) => {
                let still_valid = self
                    .jobs
                    .get(&job)
                    .map(|r| r.generation == gen && !r.state.is_terminal())
                    .unwrap_or(false);
                if still_valid {
                    self.teardown(now, job, false, fx);
                }
            }
            SagaIn::Infra(ev) => self.feed(now, ev, fx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_infra::cloud::CloudConfig;
    use pilot_infra::component::drive_until;
    use pilot_infra::hpc::HpcConfig;
    use pilot_infra::htc::HtcConfig;
    use pilot_infra::yarn::YarnConfig;
    use pilot_sim::SimDuration;

    fn run(
        adaptor: &mut ResourceAdaptor,
        mut inputs: Vec<(SimTime, SagaIn)>,
        until_s: u64,
    ) -> Vec<(SimTime, SagaOut)> {
        let mut all = adaptor.initial_inputs();
        all.append(&mut inputs);
        drive_until(adaptor, all, SimTime::from_secs(until_s))
    }

    fn submit(t: u64, id: u64, desc: JobDescription) -> (SimTime, SagaIn) {
        (
            SimTime::from_secs(t),
            SagaIn::Submit {
                job: JobId(id),
                desc,
            },
        )
    }

    fn outcome_of(outs: &[(SimTime, SagaOut)], id: u64) -> Option<JobOutcome> {
        outs.iter().find_map(|(_, o)| match o {
            SagaOut::Done { job, outcome } if job.0 == id => Some(*outcome),
            _ => None,
        })
    }

    #[test]
    fn hpc_placeholder_gang_capacity() {
        let mut a = ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet("hpc", 64)));
        let outs = run(
            &mut a,
            vec![
                submit(
                    0,
                    1,
                    JobDescription::placeholder(32, SimDuration::from_hours(1)),
                ),
                (SimTime::from_secs(500), SagaIn::Cancel(JobId(1))),
            ],
            10_000,
        );
        assert_eq!(outs[0].1, SagaOut::Queued { job: JobId(1) });
        assert!(outs.iter().any(|(_, o)| matches!(
            o,
            SagaOut::CapacityUp {
                job: JobId(1),
                cores: 32,
                total: 32
            }
        )));
        assert_eq!(outcome_of(&outs, 1), Some(JobOutcome::Canceled));
        assert_eq!(a.job_state(JobId(1)), Some(JobState::Canceled));
        assert_eq!(a.active_cores(JobId(1)), 0);
        assert_eq!(a.kind(), "hpc");
    }

    #[test]
    fn hpc_finite_task_completes() {
        let mut a = ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet("hpc", 8)));
        let desc = JobDescription::task(4, SimDuration::from_secs(60), SimDuration::from_secs(600));
        let outs = run(&mut a, vec![submit(0, 1, desc)], 10_000);
        assert_eq!(outcome_of(&outs, 1), Some(JobOutcome::Completed));
        assert_eq!(a.job_state(JobId(1)), Some(JobState::Done));
    }

    #[test]
    fn htc_glidein_capacity_arrives_incrementally() {
        let mut a = ResourceAdaptor::htc(HtcPool::new(HtcConfig::reliable("osg", 3)));
        // 5 glide-ins on a 3-slot pool: 3 match in cycle 1, 2 when slots free.
        let desc =
            JobDescription::task(5, SimDuration::from_secs(100), SimDuration::from_secs(1000));
        let outs = run(&mut a, vec![submit(0, 1, desc)], 100_000);
        let ups: Vec<u32> = outs
            .iter()
            .filter_map(|(_, o)| match o {
                SagaOut::CapacityUp { total, .. } => Some(*total),
                _ => None,
            })
            .collect();
        // The pool caps concurrent capacity at 3; the last two glide-ins
        // match only after earlier ones finish their 100 s runtime.
        assert_eq!(ups.len(), 5);
        assert_eq!(*ups.iter().max().unwrap(), 3);
        assert_eq!(ups[..3], [1, 2, 3]);
        assert_eq!(outcome_of(&outs, 1), Some(JobOutcome::Completed));
    }

    #[test]
    fn htc_slot_failure_shrinks_then_restores_capacity() {
        let cfg = HtcConfig::reliable("flaky", 4).with_failures(200.0);
        let mut a = ResourceAdaptor::htc(HtcPool::new(cfg));
        let desc =
            JobDescription::task(4, SimDuration::from_secs(600), SimDuration::from_secs(6000));
        let outs = run(&mut a, vec![submit(0, 1, desc)], 1_000_000);
        let downs = outs
            .iter()
            .filter(|(_, o)| matches!(o, SagaOut::CapacityDown { .. }))
            .count();
        assert!(downs > 0, "MTBF 200s with 600s slots must fail sometimes");
        assert_eq!(outcome_of(&outs, 1), Some(JobOutcome::Completed));
    }

    #[test]
    fn cloud_vms_boot_and_walltime_is_enforced() {
        let provider = CloudProvider::new(CloudConfig::generic("eu", 256));
        let mut a = ResourceAdaptor::cloud(provider);
        let desc = JobDescription::placeholder(80, SimDuration::from_secs(3600));
        let outs = run(&mut a, vec![submit(0, 1, desc)], 100_000);
        // 80 cores => large.64 + medium.16 under greedy planning.
        let total_up: u32 = outs
            .iter()
            .filter_map(|(_, o)| match o {
                SagaOut::CapacityUp { cores, .. } => Some(*cores),
                _ => None,
            })
            .sum();
        assert_eq!(total_up, 80);
        // Placeholder outcome at adaptor-enforced walltime: runtime(MAX) >
        // walltime -> WalltimeExceeded, like a batch system would report.
        assert_eq!(outcome_of(&outs, 1), Some(JobOutcome::WalltimeExceeded));
        let done_t = outs
            .iter()
            .find(|(_, o)| matches!(o, SagaOut::Done { .. }))
            .unwrap()
            .0;
        assert_eq!(done_t, SimTime::from_secs(3600));
        assert_eq!(a.as_cloud().unwrap().used_cores(), 0);
    }

    #[test]
    fn cloud_over_capacity_rejects() {
        let provider = CloudProvider::new(CloudConfig::generic("tiny", 16));
        let mut a = ResourceAdaptor::cloud(provider);
        let desc = JobDescription::placeholder(64, SimDuration::from_secs(600));
        let outs = run(&mut a, vec![submit(0, 1, desc)], 10_000);
        assert_eq!(outcome_of(&outs, 1), Some(JobOutcome::Rejected));
        assert_eq!(a.job_state(JobId(1)), Some(JobState::Failed));
    }

    #[test]
    fn yarn_container_lifecycle() {
        let mut a = ResourceAdaptor::yarn(YarnCluster::new(YarnConfig::new("emr", 64)));
        let desc = JobDescription::task(
            16,
            SimDuration::from_secs(120),
            SimDuration::from_secs(1200),
        );
        let outs = run(&mut a, vec![submit(0, 1, desc)], 10_000);
        assert!(outs.iter().any(|(_, o)| matches!(
            o,
            SagaOut::CapacityUp {
                cores: 16,
                total: 16,
                ..
            }
        )));
        assert_eq!(outcome_of(&outs, 1), Some(JobOutcome::Completed));
        let done_t = outs
            .iter()
            .find(|(_, o)| matches!(o, SagaOut::Done { .. }))
            .unwrap()
            .0;
        // Runtime expiry is scheduled from submission.
        assert_eq!(done_t, SimTime::from_secs(120));
    }

    #[test]
    fn duplicate_submit_rejected() {
        let mut a = ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet("hpc", 8)));
        let d = JobDescription::placeholder(4, SimDuration::from_secs(100));
        let outs = run(
            &mut a,
            vec![submit(0, 1, d.clone()), submit(1, 1, d)],
            10_000,
        );
        let rejections = outs
            .iter()
            .filter(|(_, o)| {
                matches!(
                    o,
                    SagaOut::Done {
                        outcome: JobOutcome::Rejected,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(rejections, 1);
    }

    #[test]
    fn cancel_before_capacity_yields_canceled() {
        let mut a = ResourceAdaptor::htc(HtcPool::new(HtcConfig::reliable("osg", 4)));
        let desc = JobDescription::placeholder(2, SimDuration::from_secs(10_000));
        let outs = run(
            &mut a,
            vec![
                submit(0, 1, desc),
                // Cancel before the first 30 s match cycle.
                (SimTime::from_secs(10), SagaIn::Cancel(JobId(1))),
            ],
            10_000,
        );
        assert_eq!(outcome_of(&outs, 1), Some(JobOutcome::Canceled));
        assert!(!outs
            .iter()
            .any(|(_, o)| matches!(o, SagaOut::CapacityUp { .. })));
    }

    #[test]
    fn expire_after_cancel_is_a_noop() {
        // Cancel at 100 s, expiry timer fires at 600 s: must not double-emit.
        let provider = CloudProvider::new(CloudConfig::generic("eu", 256));
        let mut a = ResourceAdaptor::cloud(provider);
        let desc = JobDescription::placeholder(4, SimDuration::from_secs(600));
        let outs = run(
            &mut a,
            vec![
                submit(0, 1, desc),
                (SimTime::from_secs(100), SagaIn::Cancel(JobId(1))),
            ],
            100_000,
        );
        let dones = outs
            .iter()
            .filter(|(_, o)| matches!(o, SagaOut::Done { .. }))
            .count();
        assert_eq!(dones, 1);
        assert_eq!(outcome_of(&outs, 1), Some(JobOutcome::Canceled));
    }

    #[test]
    fn plan_instances_greedy_fit() {
        let provider = CloudProvider::new(CloudConfig::generic("x", 1024));
        let types = provider.types();
        // 80 = 64 + 16
        let plan = plan_instances(80, types);
        let cores: Vec<u32> = plan.iter().map(|&i| types[i].cores).collect();
        assert_eq!(cores, vec![64, 16]);
        // 2 -> one small.4 (overshoot allowed)
        let plan = plan_instances(2, types);
        assert_eq!(plan.len(), 1);
        assert_eq!(types[plan[0]].cores, 4);
        // 129 = 64+64+... exact greedy: 64,64,1->small
        let plan = plan_instances(129, types);
        let total: u32 = plan.iter().map(|&i| types[i].cores).sum();
        assert!((129..=132).contains(&total));
    }
}
