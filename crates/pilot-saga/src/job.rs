//! Uniform job description and state model.

use pilot_sim::SimDuration;

/// Backend-independent description of a (placeholder) job.
#[derive(Clone, Debug)]
pub struct JobDescription {
    /// Cores requested.
    pub cores: u32,
    /// Walltime limit; infrastructure or adaptor enforces it.
    pub walltime: SimDuration,
    /// Actual runtime. `SimDuration::MAX` (the default) means
    /// run-until-canceled, the pilot placeholder pattern.
    pub runtime: SimDuration,
}

impl JobDescription {
    /// A pilot-style placeholder: runs until canceled or walltime expiry.
    pub fn placeholder(cores: u32, walltime: SimDuration) -> Self {
        JobDescription {
            cores,
            walltime,
            runtime: SimDuration::MAX,
        }
    }

    /// A job with a known runtime.
    pub fn task(cores: u32, runtime: SimDuration, walltime: SimDuration) -> Self {
        JobDescription {
            cores,
            walltime,
            runtime,
        }
    }
}

/// Uniform job lifecycle, the SAGA job state model collapsed to what the
/// pilot layer consumes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    /// Created, not yet submitted.
    New,
    /// Accepted by the backend, waiting for resources.
    Pending,
    /// Holding at least one core.
    Running,
    /// Finished successfully (or canceled after doing its work).
    Done,
    /// Lost: rejected, failed, or walltime-exceeded without completing.
    Failed,
    /// Canceled before or during execution.
    Canceled,
}

impl JobState {
    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }

    /// Legal state-machine transitions (used by assertions in the adaptors).
    pub fn can_transition_to(self, next: JobState) -> bool {
        use JobState::*;
        matches!(
            (self, next),
            (New, Pending)
                | (New, Failed)
                | (New, Canceled)
                | (Pending, Running)
                | (Pending, Failed)
                | (Pending, Canceled)
                | (Running, Done)
                | (Running, Failed)
                | (Running, Canceled)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholder_runs_forever() {
        let d = JobDescription::placeholder(64, SimDuration::from_hours(4));
        assert_eq!(d.runtime, SimDuration::MAX);
        assert_eq!(d.cores, 64);
    }

    #[test]
    fn state_machine_legal_paths() {
        use JobState::*;
        assert!(New.can_transition_to(Pending));
        assert!(Pending.can_transition_to(Running));
        assert!(Running.can_transition_to(Done));
        assert!(Pending.can_transition_to(Canceled));
        assert!(!Done.can_transition_to(Running));
        assert!(!New.can_transition_to(Running), "must pass through Pending");
        assert!(!Running.can_transition_to(Pending));
    }

    #[test]
    fn terminal_states() {
        use JobState::*;
        for s in [Done, Failed, Canceled] {
            assert!(s.is_terminal());
        }
        for s in [New, Pending, Running] {
            assert!(!s.is_terminal());
        }
    }
}
