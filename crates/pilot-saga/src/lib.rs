//! # pilot-saga — standardized access layer over heterogeneous infrastructures
//!
//! Models the role SAGA plays in the paper's architecture (\[70\]): one job
//! description and one state model, adaptors per resource type (the classic
//! adaptor pattern, Section IV-B). A pilot placeholder job submitted through
//! this layer behaves identically from the caller's perspective whether the
//! backend is an HPC batch queue, an HTC matchmaking pool, an IaaS cloud, or
//! a YARN resource manager — the differences (queue waits vs. boot delays,
//! gang allocation vs. incremental glide-in capacity) surface only through
//! *when* capacity arrives, which is exactly what the interoperability
//! experiments measure.
//!
//! The central type is [`ResourceAdaptor`], a `pilot_infra::Component` whose
//! uniform output alphabet reports capacity as it comes and goes:
//! `Queued → CapacityUp*(cores) → CapacityDown*/Done`.

pub mod adaptor;
pub mod job;

pub use adaptor::{InfraIn, ResourceAdaptor, SagaIn, SagaOut};
pub use job::{JobDescription, JobState};
