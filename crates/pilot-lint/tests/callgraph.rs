//! Unit tests for call-graph construction and resolution: qualified paths,
//! use aliases, receiver typing, class-hierarchy fan-out for trait calls,
//! and the conservatism rules for callees the graph cannot resolve.

use pilot_lint::callgraph::{self, CallKind, CallSite, Workspace};
use pilot_lint::rules::{prepare, Prepared};
use pilot_lint::FileClass;

fn ws(files: &[(&str, &str)]) -> (Vec<Prepared>, Workspace) {
    let prepared: Vec<Prepared> = files
        .iter()
        .map(|(display, src)| prepare(display, FileClass::Library, src))
        .collect();
    let graph = callgraph::build(&prepared);
    (prepared, graph)
}

fn fn_ix(g: &Workspace, name: &str) -> usize {
    g.fns
        .iter()
        .position(|d| d.name == name)
        .unwrap_or_else(|| {
            let have: Vec<&str> = g.fns.iter().map(|d| d.name.as_str()).collect();
            panic!("no fn named {name}; have {have:?}")
        })
}

fn site<'a>(g: &'a Workspace, caller: &str, label: &str) -> &'a CallSite {
    let f = fn_ix(g, caller);
    g.calls[f]
        .iter()
        .find(|s| s.label == label)
        .unwrap_or_else(|| {
            panic!(
                "no call site labelled {label} in {caller}: {:?}",
                g.calls[f]
            )
        })
}

fn target_names(g: &Workspace, s: &CallSite) -> Vec<String> {
    s.targets.iter().map(|&t| g.fns[t].name.clone()).collect()
}

#[test]
fn cross_crate_qualified_path_resolves_exactly() {
    let (_, g) = ws(&[
        ("crates/pilot-foo/src/lib.rs", "pub fn init() {}\n"),
        (
            "crates/pilot-bar/src/lib.rs",
            "pub fn go() {\n    pilot_foo::init();\n}\n",
        ),
    ]);
    let s = site(&g, "pilot_bar::go", "pilot_foo::init");
    assert_eq!(s.kind, CallKind::Exact);
    assert_eq!(target_names(&g, s), ["pilot_foo::init"]);
}

#[test]
fn use_alias_resolves_through_the_rename() {
    let (_, g) = ws(&[
        ("crates/pilot-foo/src/lib.rs", "pub fn init() {}\n"),
        (
            "crates/pilot-bar/src/lib.rs",
            "use pilot_foo::init as boot;\n\npub fn go() {\n    boot();\n}\n",
        ),
    ]);
    let s = site(&g, "pilot_bar::go", "boot");
    assert_eq!(s.kind, CallKind::Exact);
    assert_eq!(target_names(&g, s), ["pilot_foo::init"]);
}

#[test]
fn submodule_file_gets_its_own_module_path() {
    let (_, g) = ws(&[
        ("crates/pilot-foo/src/util.rs", "pub fn tick() {}\n"),
        (
            "crates/pilot-bar/src/lib.rs",
            "pub fn go() {\n    pilot_foo::util::tick();\n}\n",
        ),
    ]);
    let s = site(&g, "pilot_bar::go", "pilot_foo::util::tick");
    assert_eq!(s.kind, CallKind::Exact);
    assert_eq!(target_names(&g, s), ["pilot_foo::util::tick"]);
}

const TRAIT_SRC: &str = "\
pub trait Store {
    fn put(&self);
}

pub struct Mem;

impl Store for Mem {
    fn put(&self) {}
}

pub struct Disk;

impl Store for Disk {
    fn put(&self) {}
}

pub fn driver(s: &Mem, any: &dyn Store) {
    s.put();
    any.put();
}
";

#[test]
fn struct_receiver_resolves_to_its_own_impl_only() {
    let (_, g) = ws(&[("crates/pilot-foo/src/lib.rs", TRAIT_SRC)]);
    let f = fn_ix(&g, "pilot_foo::driver");
    let s = &g.calls[f][0]; // s.put()
    assert_eq!(s.kind, CallKind::Typed, "{s:?}");
    let names = target_names(&g, s);
    assert!(names.contains(&"pilot_foo::Mem::put".into()), "{names:?}");
    assert!(
        !names.contains(&"pilot_foo::Disk::put".into()),
        "a Mem receiver must not reach Disk: {names:?}"
    );
}

#[test]
fn trait_receiver_fans_out_over_all_implementors() {
    let (_, g) = ws(&[("crates/pilot-foo/src/lib.rs", TRAIT_SRC)]);
    let f = fn_ix(&g, "pilot_foo::driver");
    let s = &g.calls[f][1]; // any.put()
    assert_eq!(s.kind, CallKind::Typed, "{s:?}");
    let names = target_names(&g, s);
    assert!(names.contains(&"pilot_foo::Mem::put".into()), "{names:?}");
    assert!(names.contains(&"pilot_foo::Disk::put".into()), "{names:?}");
}

#[test]
fn std_receiver_resolves_to_nothing() {
    // `v.pop()` on a Vec must NOT fall back to the workspace's own `pop`
    // methods: std never calls back into the workspace.
    let (_, g) = ws(&[(
        "crates/pilot-foo/src/lib.rs",
        "pub struct Stack;\n\nimpl Stack {\n    pub fn pop(&self) {}\n}\n\n\
         pub fn f(mut v: Vec<u32>) {\n    v.pop();\n}\n",
    )]);
    let s = site(&g, "pilot_foo::f", ".pop");
    assert_eq!(s.kind, CallKind::Unresolved, "{s:?}");
    assert!(s.targets.is_empty(), "{s:?}");
}

#[test]
fn std_builder_chain_resolves_to_nothing() {
    // `OpenOptions::new().append(true).create(true).open(p)` — every link
    // in the chain is a std value, so `.create` / `.open` must NOT pull in
    // same-named workspace methods via the bare-name fallback (that is how
    // a sink's `create`, which takes broker locks, once poisoned the WAL's
    // acquisition sets into a phantom lock-order cycle).
    let (_, g) = ws(&[(
        "crates/pilot-foo/src/lib.rs",
        "pub struct Sink;\n\nimpl Sink {\n    pub fn create(&self) {}\n    pub fn open(&self) {}\n}\n\n\
         pub fn f(p: &str) {\n    std::fs::OpenOptions::new().append(true).create(true).open(p);\n}\n",
    )]);
    for label in [".create", ".open"] {
        let s = site(&g, "pilot_foo::f", label);
        assert_eq!(s.kind, CallKind::Unresolved, "{s:?}");
        assert!(s.targets.is_empty(), "{s:?}");
    }
}

#[test]
fn workspace_headed_call_chain_still_falls_back() {
    // A chain headed by a *workspace* constructor is not decidable (return
    // types are untracked) and must keep the conservative fallback.
    let (_, g) = ws(&[(
        "crates/pilot-foo/src/lib.rs",
        "pub struct Builder;\n\nimpl Builder {\n    pub fn new() -> Builder {\n        Builder\n    }\n    pub fn arm(&self) {}\n}\n\n\
         pub fn f() {\n    Builder::new().arm();\n}\n",
    )]);
    let s = site(&g, "pilot_foo::f", ".arm");
    assert_eq!(s.kind, CallKind::Method, "{s:?}");
    assert_eq!(target_names(&g, s), ["pilot_foo::Builder::arm"]);
}

#[test]
fn untypeable_receiver_falls_back_to_bare_name_over_approximation() {
    let (_, g) = ws(&[(
        "crates/pilot-foo/src/lib.rs",
        "pub struct Stack;\n\nimpl Stack {\n    pub fn pop(&self) {}\n}\n\n\
         pub fn g(x: &ExternalThing) {\n    x.pop();\n}\n",
    )]);
    let s = site(&g, "pilot_foo::g", ".pop");
    assert_eq!(s.kind, CallKind::Method, "{s:?}");
    assert_eq!(target_names(&g, s), ["pilot_foo::Stack::pop"]);
}

#[test]
fn field_chains_and_for_bindings_type_the_receiver() {
    let (_, g) = ws(&[(
        "crates/pilot-foo/src/lib.rs",
        "pub struct Queue;\n\nimpl Queue {\n    pub fn push(&self) {}\n}\n\n\
         pub struct Other;\n\nimpl Other {\n    pub fn push(&self) {}\n}\n\n\
         pub struct Engine {\n    q: Queue,\n    table: HashMap<u32, Queue>,\n}\n\n\
         impl Engine {\n    pub fn run(&self) {\n        self.q.push();\n    }\n\n\
             pub fn drain(&self) {\n        for q in self.table.values() {\n            q.push();\n        }\n\
                 let r = &self.q;\n        r.push();\n    }\n}\n",
    )]);
    for (caller, n) in [
        ("pilot_foo::Engine::run", 1),
        ("pilot_foo::Engine::drain", 2),
    ] {
        let f = fn_ix(&g, caller);
        let sites: Vec<&CallSite> = g.calls[f].iter().filter(|s| s.label == ".push").collect();
        assert_eq!(sites.len(), n, "{caller}: {:?}", g.calls[f]);
        for s in sites {
            assert_eq!(s.kind, CallKind::Typed, "{caller}: {s:?}");
            assert_eq!(
                target_names(&g, s),
                ["pilot_foo::Queue::push"],
                "{caller}: field/let/for receiver must stay precise"
            );
        }
    }
}

#[test]
fn unknown_free_function_stays_unresolved() {
    let (_, g) = ws(&[(
        "crates/pilot-foo/src/lib.rs",
        "pub fn go() {\n    missing_helper();\n    std::mem::forget(3u32);\n}\n",
    )]);
    let f = fn_ix(&g, "pilot_foo::go");
    for s in &g.calls[f] {
        assert_eq!(s.kind, CallKind::Unresolved, "{s:?}");
        assert!(s.targets.is_empty(), "{s:?}");
    }
}

#[test]
fn non_test_callers_never_target_test_code() {
    let (_, g) = ws(&[(
        "crates/pilot-foo/src/lib.rs",
        "pub fn go() {\n    fixture();\n}\n\n\
         #[cfg(test)]\nmod tests {\n    pub fn fixture() {}\n}\n",
    )]);
    let s = site(&g, "pilot_foo::go", "fixture");
    assert_eq!(s.kind, CallKind::Unresolved, "{s:?}");
    assert!(s.targets.is_empty(), "{s:?}");
}

#[test]
fn stats_count_each_resolution_class() {
    let (_, g) = ws(&[
        ("crates/pilot-foo/src/lib.rs", "pub fn init() {}\n"),
        (
            "crates/pilot-bar/src/lib.rs",
            "pub struct S;\n\nimpl S {\n    pub fn m(&self) {}\n}\n\n\
             pub fn go(s: &S) {\n    pilot_foo::init();\n    s.m();\n    nothing();\n}\n",
        ),
    ]);
    assert!(g.stats.functions >= 3, "{:?}", g.stats);
    assert!(g.stats.resolved_exact >= 1, "{:?}", g.stats);
    assert!(g.stats.resolved_typed >= 1, "{:?}", g.stats);
    assert!(g.stats.unresolved >= 1, "{:?}", g.stats);
    assert_eq!(
        g.stats.call_sites,
        g.stats.resolved_exact
            + g.stats.resolved_suffix
            + g.stats.resolved_typed
            + g.stats.resolved_method
            + g.stats.unresolved,
        "{:?}",
        g.stats
    );
}
