//! Fixture-driven rule tests: each rule has a positive, a suppressed and a
//! clean fixture under `tests/fixtures/`. Fixtures are linted as library
//! code via `lint_paths`, exactly as the CLI does with explicit file args.

use pilot_lint::{lint_paths, Report};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> Report {
    match lint_paths(&[fixture(name)]) {
        Ok(r) => r,
        Err(e) => panic!("linting {name}: {e}"),
    }
}

fn rules(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn r1_panic_positive() {
    let r = lint("r1_panic.rs");
    assert_eq!(rules(&r), ["panic", "panic", "panic"], "{r:?}");
}

#[test]
fn r1_panic_suppressed() {
    let r = lint("r1_suppressed.rs");
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 2);
}

#[test]
fn r1_panic_clean() {
    let r = lint("r1_clean.rs");
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 0);
}

#[test]
fn r2_wall_clock_positive() {
    let r = lint("r2_wall_clock.rs");
    assert_eq!(
        rules(&r),
        ["wall-clock", "wall-clock", "wall-clock"],
        "{r:?}"
    );
}

#[test]
fn r2_wall_clock_suppressed() {
    let r = lint("r2_suppressed.rs");
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1);
}

#[test]
fn r2_wall_clock_clean() {
    let r = lint("r2_clean.rs");
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn r3_state_mutation_positive() {
    let r = lint("r3_mutation.rs");
    assert_eq!(rules(&r), ["state-mutation", "state-mutation"], "{r:?}");
}

#[test]
fn r3_state_mutation_suppressed() {
    let r = lint("r3_suppressed.rs");
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1);
}

#[test]
fn r3_state_mutation_clean() {
    let r = lint("r3_clean.rs");
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn r4_lock_positive() {
    let r = lint("r4_lock.rs");
    let rs = rules(&r);
    assert_eq!(rs.len(), 3, "send-under-guard + both order sites: {r:?}");
    assert!(rs.iter().all(|x| *x == "lock-discipline"), "{r:?}");
}

#[test]
fn r4_lock_suppressed() {
    let r = lint("r4_suppressed.rs");
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1);
}

#[test]
fn r4_lock_clean() {
    let r = lint("r4_clean.rs");
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn r5_debug_macro_positive() {
    let r = lint("r5_debug.rs");
    // R5 applies even inside #[cfg(test)].
    assert_eq!(
        rules(&r),
        ["debug-macro", "debug-macro", "debug-macro"],
        "{r:?}"
    );
}

#[test]
fn r5_debug_macro_suppressed() {
    let r = lint("r5_suppressed.rs");
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1);
}

#[test]
fn r5_debug_macro_clean() {
    let r = lint("r5_clean.rs");
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn reasonless_or_unknown_suppressions_are_findings() {
    let r = lint("suppression_bad.rs");
    let rs = rules(&r);
    assert_eq!(
        rs.iter().filter(|x| **x == "suppression").count(),
        2,
        "reason-less and unknown-rule allows: {r:?}"
    );
    assert_eq!(
        rs.iter().filter(|x| **x == "panic").count(),
        2,
        "a malformed allow must not silence the finding: {r:?}"
    );
}

#[test]
fn binary_exits_nonzero_on_positive_fixtures() {
    for name in [
        "r1_panic.rs",
        "r2_wall_clock.rs",
        "r3_mutation.rs",
        "r4_lock.rs",
        "r5_debug.rs",
        "suppression_bad.rs",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_pilot-lint"))
            .arg("--format")
            .arg("json")
            .arg(fixture(name))
            .output()
            .unwrap_or_else(|e| panic!("running pilot-lint on {name}: {e}"));
        assert_eq!(out.status.code(), Some(1), "{name} should fail the lint");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("\"clean\":false"), "{name}: {stdout}");
    }
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_pilot-lint"))
        .arg(fixture("r1_clean.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running pilot-lint: {e}"));
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn json_output_is_well_formed_enough() {
    let r = lint("r1_panic.rs");
    let json = pilot_lint::render_json(&r);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"rule\":\"panic\""));
    assert!(json.contains("\"clean\":false"));
}
