// Clean fixture for R6: the raw apply has no guard of its own, but its only
// caller compares epochs first — fencing propagates down the call graph.

pub struct Replica {
    epoch: u64,
    inner: u64,
}

impl Replica {
    fn raw_apply(&mut self, off: u64) {
        self.inner.append_at(off);
    }

    pub fn guarded(&mut self, off: u64, epoch: u64) {
        if epoch != self.epoch {
            return;
        }
        self.raw_apply(off);
    }
}
