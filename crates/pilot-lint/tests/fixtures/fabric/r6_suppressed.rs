// Suppressed variant: the append is audited as safe under an outer lock.

pub struct Replica {
    inner: u64,
}

impl Replica {
    pub fn apply(&mut self, off: u64) {
        // lint: allow(fence-discipline, reason = "audited: serialized by the partition lock")
        self.inner.append_at(off);
    }
}
