// Positive fixture for R6 (`fence-discipline`): a log append and a control
// message applied with no epoch comparison anywhere on the call path.

pub enum ToDaemon {
    Assign { unit: u64 },
}

pub struct Replica {
    inner: u64,
}

impl Replica {
    pub fn apply(&mut self, off: u64) {
        self.inner.append_at(off);
    }

    pub fn produce(&mut self, off: u64) {
        self.apply(off);
    }

    pub fn on_msg(&mut self, m: ToDaemon) {
        match m {
            ToDaemon::Assign { unit } => self.remember(unit),
        }
    }

    fn remember(&mut self, unit: u64) {
        self.inner = unit;
    }
}
