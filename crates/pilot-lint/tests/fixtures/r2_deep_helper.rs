// Support file for the R2-deep fixtures: wall-clock use is legal here (the
// file is not tagged deterministic) but must not be reachable from a file
// that is.

pub fn measure(n: u64) -> f64 {
    let t0 = std::time::Instant::now();
    let _ = n;
    t0.elapsed().as_secs_f64()
}
