// lint: deterministic
// Clean fixture for R7: draws happen on forked streams or on RNGs handed in
// by the caller (who owns the derivation).

pub struct Sched {
    rng: SimRng,
}

impl Sched {
    pub fn pick(&mut self, unit: u64, n: usize) -> usize {
        self.rng
            .stream(streams::keyed(streams::SCHED_PICK, unit, 0))
            .below_usize(n)
    }

    pub fn from_param(r: &mut SimRng, n: usize) -> usize {
        r.below_usize(n)
    }
}

pub fn derived(root: &SimRng, n: usize) -> usize {
    let mut d = root.stream(9);
    d.below_usize(n)
}
