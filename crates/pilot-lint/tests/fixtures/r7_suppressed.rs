// lint: deterministic
// Suppressed variant: an audited draw on the root RNG.

pub struct Sched {
    rng: SimRng,
}

impl Sched {
    pub fn pick(&mut self, n: usize) -> usize {
        // lint: allow(rng-stream, reason = "audited: single consumer, draw order is the stream")
        self.rng.below_usize(n)
    }
}
