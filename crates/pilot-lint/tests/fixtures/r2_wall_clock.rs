// lint: deterministic
// Positive fixture for R2 (`wall-clock`): three findings expected.
use std::time::{Duration, Instant, SystemTime};

pub fn leaky() -> Duration {
    let t0 = Instant::now();
    let _ = SystemTime::now();
    std::thread::sleep(Duration::from_millis(1));
    t0.elapsed()
}
