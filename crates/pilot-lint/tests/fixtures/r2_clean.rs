// lint: deterministic
// Clean fixture for R2: virtual time only; wall clock allowed in tests.
pub fn advance(now_s: f64, dt_s: f64) -> f64 {
    now_s + dt_s
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_ok_in_tests() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
