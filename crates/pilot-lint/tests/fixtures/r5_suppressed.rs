// Suppressed fixture for R5: zero findings, one suppression.
pub fn stub(x: u32) -> u32 {
    if x > 1_000_000 {
        // lint: allow(debug-macro, reason = "tracked by issue #42; unreachable in v0")
        todo!()
    }
    x
}
