// Clean fixture for R4: guard dropped before the send, consistent order.
pub fn scoped_drop(m: &std::sync::Mutex<u32>, tx: &Sender) {
    let v = {
        let g = m.lock();
        *g
    };
    tx.send(v);
}

pub fn explicit_drop(m: &std::sync::Mutex<u32>, tx: &Sender) {
    let g = m.lock();
    let v = *g;
    drop(g);
    tx.send(v);
}

pub fn consistent_order(units: &L, pilots: &L) {
    let a = units.lock();
    let b = pilots.lock();
    drop(b);
    drop(a);
}

pub fn consistent_order_again(units: &L, pilots: &L) {
    let a = units.lock();
    let b = pilots.lock();
    drop(b);
    drop(a);
}

pub struct L;
pub struct Sender;
