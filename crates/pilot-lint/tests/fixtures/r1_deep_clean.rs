// Clean fixture for R1-deep: errors are returned, never panicked, at every
// depth of the call chain.

pub fn entry(v: &[u32]) -> Option<u32> {
    step(v)
}

fn step(v: &[u32]) -> Option<u32> {
    v.first().copied()
}
