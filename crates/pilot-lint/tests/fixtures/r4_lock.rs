// Positive fixture for R4 (`lock-discipline`): a send under a live guard
// plus an inconsistent acquisition order between the two functions.
pub fn guard_across_send(m: &std::sync::Mutex<u32>, tx: &Sender) {
    let g = m.lock();
    tx.send(*g);
}

pub fn order_ab(units: &L, pilots: &L) {
    let a = units.lock();
    let b = pilots.lock();
    drop(b);
    drop(a);
}

pub fn order_ba(units: &L, pilots: &L) {
    let b = pilots.lock();
    let a = units.lock();
    drop(a);
    drop(b);
}

pub struct L;
pub struct Sender;
