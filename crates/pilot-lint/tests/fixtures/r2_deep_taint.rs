// lint: deterministic
// Positive fixture for R2-deep (`wall-clock-reach`): this deterministic
// module never touches a clock itself — the helper module it calls does,
// legally (that file is not tagged). Only the call graph sees the leak.

use r2_deep_helper::measure;

pub fn schedule(n: u64) -> f64 {
    plan(n)
}

fn plan(n: u64) -> f64 {
    measure(n)
}
