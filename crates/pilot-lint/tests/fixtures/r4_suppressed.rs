// Suppressed fixture for R4: zero findings, one suppression.
pub fn bounded_send(m: &std::sync::Mutex<u32>, tx: &Sender) {
    let g = m.lock();
    // lint: allow(lock-discipline, reason = "unbounded channel; send never blocks")
    tx.send(*g);
}

pub struct Sender;
