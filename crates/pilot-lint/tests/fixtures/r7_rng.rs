// lint: deterministic
// Positive fixture for R7 (`rng-stream`): ad-hoc draws on root RNGs inside
// deterministic code. Both the field-held root and the local root must be
// forked with .stream() before drawing.

pub struct Sched {
    rng: SimRng,
}

impl Sched {
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.below_usize(n)
    }
}

pub fn local_root(n: usize) -> usize {
    let mut r = SimRng::new(7);
    r.below_usize(n)
}
