// Clean fixture for R5: the word `todo` in comments and strings is fine.
// TODO: comments like this are not findings.
pub fn fine() -> &'static str {
    "todo!() in a string is not a finding"
}
