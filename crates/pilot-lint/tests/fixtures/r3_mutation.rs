// Positive fixture for R3 (`state-mutation`): two findings expected.
pub struct UnitRt {
    pub state: UnitState,
}

pub enum UnitState {
    Pending,
    Running,
}

pub enum PilotState {
    Active,
}

pub struct PilotRt {
    pub state: PilotState,
}

pub fn mutate(u: &mut UnitRt, p: &mut PilotRt) {
    u.state = UnitState::Running;
    p.state = PilotState::Active;
}
