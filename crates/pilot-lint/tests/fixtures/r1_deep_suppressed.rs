// Suppression kills the seed: an audited panic site does not taint its
// callers, so `entry` needs no annotation of its own.

pub fn entry(v: &[u32]) -> u32 {
    step(v)
}

fn step(v: &[u32]) -> u32 {
    // lint: allow(panic, reason = "audited: slice is non-empty by construction")
    *v.first().unwrap()
}
