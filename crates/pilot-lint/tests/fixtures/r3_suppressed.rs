// Suppressed fixture for R3: zero findings, one suppression.
pub enum UnitState {
    Running,
}

pub struct Mirror {
    pub state: UnitState,
}

pub fn publish(m: &mut Mirror) {
    // lint: allow(state-mutation, reason = "registry mirror of an authoritative machine")
    m.state = UnitState::Running;
}
