// Positive fixture for R5 (`debug-macro`): three findings expected — note
// the macros are banned in test code too.
pub fn unfinished(x: u32) -> u32 {
    if x == 0 {
        todo!()
    }
    dbg!(x)
}

#[cfg(test)]
mod tests {
    #[test]
    fn also_banned_here() {
        unimplemented!()
    }
}
