// Positive fixture for R4-deep (`lock-cycle`): a three-lock cycle that only
// exists across call boundaries. No single function ever holds two locks,
// so the per-file pairwise order check cannot see it.

use std::sync::Mutex;

pub struct Trio {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
}

impl Trio {
    pub fn ab(&self) {
        let _a = self.a.lock();
        self.bc();
    }

    pub fn bc(&self) {
        let _b = self.b.lock();
        self.ca();
    }

    pub fn ca(&self) {
        let _c = self.c.lock();
        self.grab_a();
    }

    fn grab_a(&self) {
        let _a = self.a.lock();
    }
}
