// lint: deterministic
// Suppression kills the seed: the audited wall-clock read does not taint
// its callers, so `caller` stays clean with no annotation of its own.

pub fn caller() -> f64 {
    leak()
}

fn leak() -> f64 {
    // lint: allow(wall-clock, reason = "audited: coarse profiling counter, not event order")
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
