// Clean fixture for R3: comparisons and transition-function calls are fine.
#[derive(PartialEq, Clone, Copy)]
pub enum UnitState {
    Pending,
    Running,
}

pub struct UnitRt {
    pub state: UnitState,
}

impl UnitState {
    pub fn advance(_slot: &mut UnitState, _next: UnitState) {}
}

pub fn check_and_advance(u: &mut UnitRt) -> bool {
    if u.state == UnitState::Pending {
        UnitState::advance(&mut u.state, UnitState::Running);
        return true;
    }
    u.state != UnitState::Running
}
