// Positive fixture for the `suppression` meta-rule: a reason-less allow is
// itself a finding, and the original finding is NOT silenced.
pub fn sloppy(v: Option<u32>) -> u32 {
    // lint: allow(panic)
    v.unwrap()
}

pub fn unknown_rule(v: Option<u32>) -> u32 {
    // lint: allow(everything, reason = "no such rule")
    v.unwrap()
}
