// Positive fixture for R1 (`panic`): three findings expected.
pub fn broken(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("present");
    if a + b == 0 {
        panic!("zero");
    }
    a + b
}
