// Suppressed variant of the cross-function lock cycle: the allow sits on
// the anchor edge (the lowest call site participating in the cycle).

use std::sync::Mutex;

pub struct Trio {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
}

impl Trio {
    pub fn ab(&self) {
        let _a = self.a.lock();
        // lint: allow(lock-cycle, reason = "audited: ab/bc/ca never run concurrently")
        self.bc();
    }

    pub fn bc(&self) {
        let _b = self.b.lock();
        self.ca();
    }

    pub fn ca(&self) {
        let _c = self.c.lock();
        self.grab_a();
    }

    fn grab_a(&self) {
        let _a = self.a.lock();
    }
}
