// Suppressed fixture for R1: zero findings, two suppressions.
pub fn guarded(v: Option<u32>) -> u32 {
    // lint: allow(panic, reason = "checked non-empty by the caller")
    let a = v.unwrap();
    let b = v.expect("present"); // lint: allow(panic, reason = "invariant: set at construction")
    a + b
}
