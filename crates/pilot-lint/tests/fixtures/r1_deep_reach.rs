// Positive fixture for R1-deep (`panic-reach`): the public entry point
// reaches a panic three calls down. Per-file R1 sees only the seed; the
// chain from `entry` to it is invisible without the call graph.

pub fn entry(v: &[u32]) -> u32 {
    step_one(v)
}

fn step_one(v: &[u32]) -> u32 {
    step_two(v)
}

fn step_two(v: &[u32]) -> u32 {
    danger(v)
}

fn danger(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

// Depth-0 case only this pass covers: per-file R1 does not scan
// `unreachable!`, but a public entry point must not contain one.
pub fn invariant(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}
