// Clean fixture for R4-deep: every path acquires the locks in the same
// a -> b -> c order, so the cross-function lock graph is acyclic.

use std::sync::Mutex;

pub struct Trio {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
}

impl Trio {
    pub fn ab(&self) {
        let _a = self.a.lock();
        self.bc();
    }

    pub fn bc(&self) {
        let _b = self.b.lock();
        self.just_c();
    }

    fn just_c(&self) {
        let _c = self.c.lock();
    }
}
