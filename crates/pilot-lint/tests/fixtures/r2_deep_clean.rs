// lint: deterministic
// Clean fixture for R2-deep: time is threaded through as a value.

pub fn schedule(now_s: f64, n: u64) -> f64 {
    plan(now_s, n)
}

fn plan(now_s: f64, n: u64) -> f64 {
    now_s + n as f64 * 0.5
}
