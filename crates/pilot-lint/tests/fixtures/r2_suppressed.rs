// lint: deterministic
// Suppressed fixture for R2: zero findings, one suppression.
use std::time::Instant;

pub fn timed() -> f64 {
    // lint: allow(wall-clock, reason = "diagnostic only; never feeds sim results")
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
