//! Fixture-driven tests for the five interprocedural rules. Each deep rule
//! has a positive, a suppressed and a clean fixture under `tests/fixtures/`;
//! the positives are constructed so the per-file pass alone cannot see the
//! violation (or sees only the seed, never the entry-point exposure).

use pilot_lint::{lint_paths, lint_paths_deep, Report};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_deep(names: &[&str]) -> Report {
    let paths: Vec<PathBuf> = names.iter().map(|n| fixture(n)).collect();
    match lint_paths_deep(&paths) {
        Ok(r) => r,
        Err(e) => panic!("linting {names:?}: {e}"),
    }
}

fn rules(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// --- R1-deep: panic-reach -------------------------------------------------

#[test]
fn r1_deep_positive_reports_entry_and_seed() {
    let r = lint_deep(&["r1_deep_reach.rs"]);
    // Sorted by line: the entry-point exposure, the per-file seed, and the
    // depth-0 `unreachable!` that the per-file pass does not scan at all.
    assert_eq!(rules(&r), ["panic-reach", "panic", "panic-reach"], "{r:?}");
    let reach = r
        .findings
        .iter()
        .find(|f| f.rule == "panic-reach" && f.chain.len() > 2)
        .expect("transitive finding with a witness chain");
    assert_eq!(
        reach.chain.len(),
        5,
        "entry→step_one→step_two→danger→seed: {reach:?}"
    );
    assert!(reach.chain[0].contains("entry"), "{reach:?}");
    assert!(reach.chain.last().unwrap().contains("unwrap"), "{reach:?}");
}

#[test]
fn r1_deep_chain_is_invisible_to_the_shallow_pass() {
    let r = lint_paths(&[fixture("r1_deep_reach.rs")]).unwrap();
    // Per-file linting sees only the seed; the exposure of `entry` and the
    // `unreachable!` in `invariant` need the call graph.
    assert_eq!(rules(&r), ["panic"], "{r:?}");
}

#[test]
fn r1_deep_suppressed_seed_kills_the_taint() {
    let r = lint_deep(&["r1_deep_suppressed.rs"]);
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1);
}

#[test]
fn r1_deep_clean() {
    let r = lint_deep(&["r1_deep_clean.rs"]);
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 0);
}

// --- R2-deep: wall-clock-reach --------------------------------------------

#[test]
fn r2_deep_positive_crosses_the_file_boundary() {
    let r = lint_deep(&["r2_deep_taint.rs", "r2_deep_helper.rs"]);
    assert_eq!(rules(&r), ["wall-clock-reach", "wall-clock-reach"], "{r:?}");
    // Both findings land in the deterministic file, not the helper where
    // the clock read is legal.
    for f in &r.findings {
        assert!(f.file.ends_with("r2_deep_taint.rs"), "{f:?}");
        assert!(f.chain.last().unwrap().contains("Instant"), "{f:?}");
    }
}

#[test]
fn r2_deep_violation_is_invisible_to_the_shallow_pass() {
    let paths = [fixture("r2_deep_taint.rs"), fixture("r2_deep_helper.rs")];
    let r = lint_paths(&paths).unwrap();
    // The clock read lives in an untagged file (legal per-file) and the
    // deterministic file never names a clock: per-file linting is blind.
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn r2_deep_suppressed_seed_kills_the_taint() {
    let r = lint_deep(&["r2_deep_suppressed.rs"]);
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1);
}

#[test]
fn r2_deep_clean() {
    let r = lint_deep(&["r2_deep_clean.rs"]);
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 0);
}

// --- R4-deep: lock-cycle --------------------------------------------------

#[test]
fn r4_deep_positive_finds_cross_function_cycle() {
    let r = lint_deep(&["r4_deep_cycle.rs"]);
    assert_eq!(rules(&r), ["lock-cycle"], "{r:?}");
    let f = &r.findings[0];
    assert!(!f.chain.is_empty(), "cycle witness expected: {f:?}");
    assert!(f.message.contains("cycle"), "{f:?}");
}

#[test]
fn r4_deep_cycle_is_invisible_to_the_shallow_pass() {
    let r = lint_paths(&[fixture("r4_deep_cycle.rs")]).unwrap();
    // No function holds two locks at once, so the pairwise order rule
    // has nothing to compare.
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn r4_deep_suppressed_at_anchor_edge() {
    let r = lint_deep(&["r4_deep_suppressed.rs"]);
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1);
}

#[test]
fn r4_deep_clean() {
    let r = lint_deep(&["r4_deep_clean.rs"]);
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 0);
}

// --- R6: fence-discipline -------------------------------------------------

#[test]
fn r6_positive_flags_unfenced_apply_sites() {
    let r = lint_deep(&["fabric/r6_fence.rs"]);
    assert_eq!(rules(&r), ["fence-discipline", "fence-discipline"], "{r:?}");
    let append = r
        .findings
        .iter()
        .find(|f| f.message.contains("append_at"))
        .expect("append site finding");
    // The witness path walks up to the unfenced root caller.
    assert!(append.chain[0].contains("produce"), "{append:?}");
    let arm = r
        .findings
        .iter()
        .find(|f| f.message.contains("match arm"))
        .expect("match-arm finding");
    assert!(arm.message.contains("ToDaemon::Assign"), "{arm:?}");
}

#[test]
fn r6_suppressed() {
    let r = lint_deep(&["fabric/r6_suppressed.rs"]);
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1);
}

#[test]
fn r6_clean_fencing_propagates_from_callers() {
    let r = lint_deep(&["fabric/r6_clean.rs"]);
    // `raw_apply` has no guard of its own; its only caller compares epochs.
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 0);
}

// --- R7: rng-stream -------------------------------------------------------

#[test]
fn r7_positive_flags_root_draws() {
    let r = lint_deep(&["r7_rng.rs"]);
    assert_eq!(rules(&r), ["rng-stream", "rng-stream"], "{r:?}");
}

#[test]
fn r7_suppressed() {
    let r = lint_deep(&["r7_suppressed.rs"]);
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1);
}

#[test]
fn r7_clean_streams_and_params_pass() {
    let r = lint_deep(&["r7_clean.rs"]);
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 0);
}

// --- CLI integration ------------------------------------------------------

#[test]
fn binary_deep_flag_reports_chains_in_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_pilot-lint"))
        .arg("--deep")
        .arg("--format")
        .arg("json")
        .arg(fixture("r1_deep_reach.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running pilot-lint: {e}"));
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\":\"panic-reach\""), "{stdout}");
    assert!(stdout.contains("\"chain\":["), "{stdout}");
    assert!(stdout.contains("\"graph\":{"), "{stdout}");
}

#[test]
fn binary_deep_flag_exit_zero_on_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_pilot-lint"))
        .arg("--deep")
        .arg(fixture("r1_deep_clean.rs"))
        .output()
        .unwrap_or_else(|e| panic!("running pilot-lint: {e}"));
    assert_eq!(out.status.code(), Some(0));
}
