//! Self-check: the workspace this crate lives in must be lint-clean. This is
//! the same walk the CI `lint` job performs via the binary.

use std::path::PathBuf;

#[test]
fn workspace_is_lint_clean() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = match pilot_lint::find_workspace_root(&manifest) {
        Some(r) => r,
        None => panic!("no workspace root above {}", manifest.display()),
    };
    let report = match pilot_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => panic!("walking workspace: {e}"),
    };
    assert!(
        report.is_clean(),
        "workspace has unsuppressed lint findings:\n{}",
        pilot_lint::render_human(&report)
    );
    assert!(
        report.files > 50,
        "walk looks broken: {} files",
        report.files
    );
}
