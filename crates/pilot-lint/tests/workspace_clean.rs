//! Self-check: the workspace this crate lives in must be lint-clean under
//! the full interprocedural pass. This is the same walk the CI `lint` job
//! performs via the binary.

use std::path::PathBuf;
use std::time::{Duration, Instant};

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match pilot_lint::find_workspace_root(&manifest) {
        Some(r) => r,
        None => panic!("no workspace root above {}", manifest.display()),
    }
}

#[test]
fn workspace_is_lint_clean() {
    let report = match pilot_lint::lint_workspace(&workspace_root()) {
        Ok(r) => r,
        Err(e) => panic!("walking workspace: {e}"),
    };
    assert!(
        report.is_clean(),
        "workspace has unsuppressed lint findings:\n{}",
        pilot_lint::render_human(&report)
    );
    assert!(
        report.files > 50,
        "walk looks broken: {} files",
        report.files
    );
    // The deep pass must actually have built a graph of workspace scale,
    // and receiver typing must be pulling its weight — these bounds catch
    // a silently degraded resolver (e.g. everything falling back to the
    // bare-name over-approximation or to Unresolved).
    let g = report.graph.expect("workspace lint runs the deep pass");
    assert!(g.functions > 1_000, "{g:?}");
    assert!(g.edges > 5_000, "{g:?}");
    assert!(g.resolved_exact > 500, "{g:?}");
    assert!(g.resolved_typed > 500, "{g:?}");
    assert_eq!(
        g.call_sites,
        g.resolved_exact + g.resolved_suffix + g.resolved_typed + g.resolved_method + g.unresolved,
        "{g:?}"
    );
}

#[test]
fn deep_pass_fits_the_wall_time_budget() {
    // The lint job is meant to stay a trivial fraction of CI: the whole
    // interprocedural pass over the workspace must finish well inside a
    // debug-build budget (release CI has far more headroom).
    let start = Instant::now();
    let report = pilot_lint::lint_workspace(&workspace_root()).expect("walking workspace");
    let elapsed = start.elapsed();
    assert!(report.files > 50);
    assert!(
        elapsed < Duration::from_secs(30),
        "deep lint took {elapsed:?}; the fixed-point analyses have regressed"
    );
}
