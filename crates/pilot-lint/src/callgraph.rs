//! Workspace-wide symbol table and call graph, built from token streams.
//!
//! This is the substrate for every interprocedural rule in [`crate::deep`]:
//! it walks each prepared file once, recording function definitions with
//! fully-qualified module paths (`pilot_core::fabric::controller::step`,
//! `pilot_streaming::replica::ReplicatedBroker::produce`), then extracts and
//! resolves call sites.
//!
//! Resolution is deliberately approximate, in directions chosen per use:
//!
//! * **Path calls** (`binding::queue_pass(…)`, `WallClock::start()`) resolve
//!   through per-file `use` aliases (including `as` renames, `{…}` groups and
//!   glob prefixes) and `crate`/`self`/`super`/`Self` normalization; a path
//!   that still misses the table falls back to a last-two-segment
//!   (`Type::method`) suffix match across the workspace.
//! * **Method calls** (`.select(…)`) are resolved through receiver typing
//!   first: `self.m()` uses the enclosing impl's type, `self.field.m()` the
//!   struct's declared field types, `x.m()` a `let x: T = …` /
//!   `let x = T::new(…)` binding or a typed fn parameter. A receiver typed
//!   as a workspace type resolves to that type's methods (trait receivers
//!   fan out over every `impl Trait for X` — class-hierarchy dispatch; a
//!   struct receiver also reaches default methods of traits it implements).
//!   A receiver typed as a std container ([`STD_HEADS`]) resolves to
//!   *nothing*: std never calls back into the workspace, and closure
//!   arguments are scanned as part of the enclosing body anyway. Untypeable
//!   receivers (iterator bindings, call-chain results, generics) fall back
//!   to bare-name over-approximation: every known method with that name,
//!   which may add edges but never drops a real one. Calls from non-test
//!   code never resolve into test-only code.
//! * **Anything else** (std, shims, closures, turbofish) stays unresolved.
//!   Unresolved callees contribute no taint: the deep rules under-approximate
//!   across them and say so in DESIGN §8.

use std::collections::{HashMap, HashSet};

use crate::lexer::{Tok, Token};
use crate::rules::{ident_at, punct_at, FileClass, Prepared};

/// Index into [`Workspace::fns`].
pub type FnId = usize;

/// One function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Fully qualified name, `crate::module::Type::fn` style.
    pub name: String,
    /// Index into the prepared-file slice the workspace was built from.
    pub file_ix: usize,
    pub line: u32,
    /// `pub` without a `pub(…)` restriction.
    pub is_pub: bool,
    /// Defined inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Defined inside an `impl` or `trait` block (resolvable by method name).
    pub is_method: bool,
    /// Enclosing `impl`/`trait` type name, for `Self::…` resolution.
    pub self_type: Option<String>,
    /// Module path segments (no type, no fn name).
    pub module: Vec<String>,
    /// Code-token index of the `fn` keyword (the signature starts here).
    pub decl_ix: usize,
    /// Code-token range of the body: `(open_brace, close_brace)` inclusive.
    /// `None` for bodiless trait declarations.
    pub body: Option<(usize, usize)>,
}

/// How a call site was resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// Exact qualified-path match.
    Exact,
    /// `Type::method` suffix match.
    Suffix,
    /// Receiver-typed method match (precise; trait receivers fan out).
    Typed,
    /// Bare method-name match (over-approximate).
    Method,
    /// No workspace target (std, shims, macros, closures).
    Unresolved,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Code-token index of the callee identifier.
    pub tok_ix: usize,
    pub line: u32,
    /// What the source spells, for messages (`queue_pass`, `.select`).
    pub label: String,
    pub kind: CallKind,
    /// Candidate targets (empty iff `Unresolved`).
    pub targets: Vec<FnId>,
}

/// Aggregate size/precision counters, surfaced in reports.
#[derive(Debug, Default, Clone, Copy)]
pub struct GraphStats {
    pub functions: usize,
    pub call_sites: usize,
    pub resolved_exact: usize,
    pub resolved_suffix: usize,
    pub resolved_typed: usize,
    pub resolved_method: usize,
    pub unresolved: usize,
    /// Caller→callee edges after target fan-out.
    pub edges: usize,
}

/// The resolved call graph over a set of prepared files.
pub struct Workspace {
    pub fns: Vec<FnDef>,
    /// Per function: its call sites, in body order.
    pub calls: Vec<Vec<CallSite>>,
    pub stats: GraphStats,
}

impl Workspace {
    /// `qualified::name (file:line)` — the witness-chain entry format.
    pub fn label(&self, files: &[Prepared], f: FnId) -> String {
        let d = &self.fns[f];
        format!("{} ({}:{})", d.name, files[d.file_ix].display, d.line)
    }

    /// Deduplicated forward adjacency (caller → callees).
    pub fn adjacency(&self) -> Vec<Vec<FnId>> {
        self.calls
            .iter()
            .map(|sites| {
                let mut out: Vec<FnId> = sites
                    .iter()
                    .flat_map(|s| s.targets.iter().copied())
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect()
    }
}

/// Build the workspace call graph from prepared files.
pub fn build(files: &[Prepared]) -> Workspace {
    // Phase one: type names and trait-impl pairs, workspace-wide, so that
    // field/param/let type expressions in any file can name a type from any
    // other file.
    let mut table = TypeTable::default();
    for p in files {
        scan_types(p, &mut table);
    }
    {
        let TypeTable { names, fields, .. } = &mut table;
        for p in files {
            scan_fields(p, names, fields);
        }
    }

    let mut fns: Vec<FnDef> = Vec::new();
    let mut ctxs: Vec<FileCtx> = Vec::new();
    for (file_ix, p) in files.iter().enumerate() {
        let module = module_path(&p.display);
        let mut ctx = FileCtx {
            module,
            aliases: HashMap::new(),
            globs: Vec::new(),
        };
        parse_uses(p, &mut ctx);
        scan_defs(p, file_ix, &ctx.module, &mut fns);
        ctxs.push(ctx);
    }

    // Symbol tables.
    let mut exact: HashMap<&str, Vec<FnId>> = HashMap::new();
    let mut suffix2: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
    let mut methods: HashMap<&str, Vec<FnId>> = HashMap::new();
    let mut typed_methods: HashMap<(String, String), Vec<FnId>> = HashMap::new();
    for (id, d) in fns.iter().enumerate() {
        exact.entry(d.name.as_str()).or_default().push(id);
        let segs: Vec<&str> = d.name.split("::").collect();
        if segs.len() >= 2 {
            suffix2
                .entry((segs[segs.len() - 2], segs[segs.len() - 1]))
                .or_default()
                .push(id);
        }
        if d.is_method {
            methods.entry(segs[segs.len() - 1]).or_default().push(id);
            if let Some(t) = &d.self_type {
                typed_methods
                    .entry((t.clone(), segs[segs.len() - 1].to_string()))
                    .or_default()
                    .push(id);
            }
        }
    }

    let mut stats = GraphStats {
        functions: fns.len(),
        ..GraphStats::default()
    };
    let mut calls: Vec<Vec<CallSite>> = Vec::with_capacity(fns.len());
    for id in 0..fns.len() {
        let d = &fns[id];
        let p = &files[d.file_ix];
        let ctx = &ctxs[d.file_ix];
        let mut sites = Vec::new();
        if let Some((open, close)) = d.body {
            // Nested definitions own their ranges; the enclosing fn skips them.
            let inner: Vec<(usize, usize)> = fns
                .iter()
                .enumerate()
                .filter(|(o, other)| {
                    *o != id
                        && other.file_ix == d.file_ix
                        && other.body.is_some_and(|(s, e)| s > open && e < close)
                })
                .filter_map(|(_, other)| other.body)
                .collect();
            let mut locals: HashMap<String, TypeRef> = HashMap::new();
            parse_params(&p.code, d.decl_ix, open, &table.names, &mut locals);
            scan_locals(
                &p.code,
                open,
                close,
                d.self_type.as_deref(),
                &table,
                &mut locals,
            );
            let res = Resolver {
                exact: &exact,
                suffix2: &suffix2,
                methods: &methods,
                typed_methods: &typed_methods,
                table: &table,
                locals: &locals,
            };
            extract_calls(
                p, d, ctx, open, close, &inner, &res, files, &fns, &mut sites,
            );
        }
        for s in &sites {
            stats.call_sites += 1;
            stats.edges += s.targets.len();
            match s.kind {
                CallKind::Exact => stats.resolved_exact += 1,
                CallKind::Suffix => stats.resolved_suffix += 1,
                CallKind::Typed => stats.resolved_typed += 1,
                CallKind::Method => stats.resolved_method += 1,
                CallKind::Unresolved => stats.unresolved += 1,
            }
        }
        calls.push(sites);
    }
    Workspace { fns, calls, stats }
}

/// Workspace type knowledge for receiver-typed method resolution.
#[derive(Default)]
pub(crate) struct TypeTable {
    /// Every struct/enum/union/trait/impl-self name seen in the workspace.
    pub(crate) names: HashSet<String>,
    /// `(type, field)` → the field's classified type.
    pub(crate) fields: HashMap<(String, String), TypeRef>,
    /// trait → implementing types (`impl Trait for X`).
    pub(crate) trait_impls: HashMap<String, Vec<String>>,
    /// type → traits it implements.
    pub(crate) impls_of: HashMap<String, Vec<String>>,
}

/// What a type expression tells us about a receiver.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum TypeRef {
    /// A workspace type (possibly through `Arc<Mutex<…>>`-style wrappers).
    Known(String),
    /// Definitely std / primitive: resolves to no workspace method.
    Std,
}

/// Bundled symbol tables threaded through call extraction.
struct Resolver<'a> {
    exact: &'a HashMap<&'a str, Vec<FnId>>,
    suffix2: &'a HashMap<(&'a str, &'a str), Vec<FnId>>,
    methods: &'a HashMap<&'a str, Vec<FnId>>,
    typed_methods: &'a HashMap<(String, String), Vec<FnId>>,
    table: &'a TypeTable,
    locals: &'a HashMap<String, TypeRef>,
}

/// Per-file resolution context.
struct FileCtx {
    module: Vec<String>,
    /// `alias → full path segments` from `use` items (already normalized).
    aliases: HashMap<String, Vec<String>>,
    /// `use path::*` prefixes.
    globs: Vec<Vec<String>>,
}

/// Derive the module path of a file from its workspace-relative display path.
///
/// `crates/pilot-core/src/fabric/mod.rs` → `[pilot_core, fabric]`;
/// `crates/pilot-sim/src/lib.rs` → `[pilot_sim]`; files outside a
/// `crates/<name>/src` layout (fixtures, tests) root at their own stem, so a
/// fixture is a self-contained single-file "crate".
fn module_path(display: &str) -> Vec<String> {
    let parts: Vec<&str> = display.split('/').collect();
    let mut out = Vec::new();
    let src_at = parts
        .windows(3)
        .position(|w| w[0] == "crates" && w[2] == "src");
    if let Some(at) = src_at {
        out.push(parts[at + 1].replace('-', "_"));
        let rest = &parts[at + 3..];
        for (i, seg) in rest.iter().enumerate() {
            let last = i + 1 == rest.len();
            if last {
                match seg.strip_suffix(".rs") {
                    Some("lib") | Some("main") | Some("mod") => {}
                    Some(stem) => out.push(stem.replace('-', "_")),
                    None => out.push(seg.replace('-', "_")),
                }
            } else if *seg != "bin" {
                out.push(seg.replace('-', "_"));
            }
        }
    } else {
        let stem = parts
            .last()
            .and_then(|s| s.strip_suffix(".rs"))
            .unwrap_or("file");
        out.push(stem.replace('-', "_"));
    }
    out
}

/// Parse every `use …;` item into alias and glob maps.
fn parse_uses(p: &Prepared, ctx: &mut FileCtx) {
    let code = &p.code;
    let mut i = 0;
    while i < code.len() {
        if ident_at(code, i) == Some("use") {
            let start = i + 1;
            let mut j = start;
            while j < code.len() && !punct_at(code, j, ';') {
                j += 1;
            }
            let module = ctx.module.clone();
            parse_use_tree(code, start, j, &module, Vec::new(), ctx);
            i = j;
        }
        i += 1;
    }
}

/// Recursive descent over one use-tree token range `[i, end)`.
fn parse_use_tree(
    code: &[Token],
    mut i: usize,
    end: usize,
    module: &[String],
    mut prefix: Vec<String>,
    ctx: &mut FileCtx,
) {
    let mut segs: Vec<String> = Vec::new();
    while i < end {
        match &code[i].tok {
            Tok::Ident(s) if s == "as" => {
                if let Some(alias) = ident_at(code, i + 1) {
                    let full = normalize(module, &prefix, &segs);
                    ctx.aliases.insert(alias.to_string(), full);
                }
                return;
            }
            Tok::Ident(s) if s == "self" && !segs.is_empty() => {
                // only reachable spelled as a path head; `{self, …}` group
                // members are handled below
                segs.push(s.clone());
                i += 1;
            }
            Tok::Ident(s) => {
                segs.push(s.clone());
                i += 1;
            }
            Tok::Punct(':') => {
                i += 1;
            }
            Tok::Punct('*') => {
                ctx.globs.push(normalize(module, &prefix, &segs));
                return;
            }
            Tok::Punct('{') => {
                // Split the balanced group on top-level commas; recurse.
                prefix = normalize(module, &prefix, &segs);
                let mut depth = 0i32;
                let mut item_start = i + 1;
                let mut j = i;
                while j < end {
                    match code[j].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Punct(',') if depth == 1 => {
                            use_group_item(code, item_start, j, module, &prefix, ctx);
                            item_start = j + 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                use_group_item(code, item_start, j, module, &prefix, ctx);
                return;
            }
            _ => return,
        }
    }
    if let Some(last) = segs.last().cloned() {
        let full = normalize(module, &prefix, &segs);
        ctx.aliases.insert(last, full);
    }
}

fn use_group_item(
    code: &[Token],
    start: usize,
    end: usize,
    module: &[String],
    prefix: &[String],
    ctx: &mut FileCtx,
) {
    if start >= end {
        return;
    }
    // `{self, …}`: the bare module itself, aliased by its final segment.
    if end - start == 1 {
        if let Some("self") = ident_at(code, start) {
            if let Some(last) = prefix.last() {
                ctx.aliases.insert(last.clone(), prefix.to_vec());
            }
            return;
        }
    }
    parse_use_tree(code, start, end, module, prefix.to_vec(), ctx);
}

/// Resolve `crate`/`self`/`super` heads and join `prefix ++ segs`.
fn normalize(module: &[String], prefix: &[String], segs: &[String]) -> Vec<String> {
    let mut out: Vec<String> = prefix.to_vec();
    for (i, s) in segs.iter().enumerate() {
        if i == 0 && out.is_empty() {
            match s.as_str() {
                "crate" => {
                    out.extend(module.first().cloned());
                    continue;
                }
                "self" => {
                    out.extend(module.iter().cloned());
                    continue;
                }
                "super" => {
                    out.extend(module.iter().take(module.len().saturating_sub(1)).cloned());
                    continue;
                }
                _ => {}
            }
        }
        if s == "self" {
            continue;
        }
        out.push(s.clone());
    }
    out
}

/// One pass over a file's code tokens recording every `fn` definition with
/// its enclosing `mod`/`impl`/`trait` scope.
fn scan_defs(p: &Prepared, file_ix: usize, module: &[String], fns: &mut Vec<FnDef>) {
    #[derive(Clone, Debug, PartialEq)]
    enum Kind {
        Mod(String),
        Type(String),
        Other,
    }
    let code = &p.code;
    let mut frames: Vec<(Kind, usize)> = Vec::new(); // (kind, depth at open)
    let mut pending: Option<Kind> = None;
    let mut depth = 0usize;
    let mut i = 0;
    while i < code.len() {
        match &code[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                frames.push((pending.take().unwrap_or(Kind::Other), depth));
            }
            Tok::Punct('}') => {
                if frames.last().is_some_and(|(_, d)| *d == depth) {
                    frames.pop();
                }
                depth = depth.saturating_sub(1);
            }
            Tok::Punct(';') => {
                pending = None;
            }
            Tok::Ident(kw) if kw == "mod" => {
                if let Some(name) = ident_at(code, i + 1) {
                    if punct_at(code, i + 2, '{') {
                        pending = Some(Kind::Mod(name.to_string()));
                    }
                }
            }
            Tok::Ident(kw) if kw == "trait" => {
                if let Some(name) = ident_at(code, i + 1) {
                    pending = Some(Kind::Type(name.to_string()));
                }
            }
            Tok::Ident(kw) if kw == "impl" => {
                pending = Some(Kind::Type(impl_self_type(code, i + 1)));
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident_at(code, i + 1) {
                    let mut mod_path: Vec<String> = module.to_vec();
                    let mut self_type = None;
                    for (kind, _) in &frames {
                        match kind {
                            Kind::Mod(m) => {
                                mod_path.push(m.clone());
                                self_type = None;
                            }
                            Kind::Type(t) => self_type = Some(t.clone()),
                            Kind::Other => {}
                        }
                    }
                    let mut qualified = mod_path.join("::");
                    if let Some(t) = &self_type {
                        qualified.push_str("::");
                        qualified.push_str(t);
                    }
                    qualified.push_str("::");
                    qualified.push_str(name);
                    // Body: first `{` before a `;` ends the signature.
                    let mut j = i + 2;
                    let mut body = None;
                    while j < code.len() {
                        match code[j].tok {
                            Tok::Punct('{') => {
                                body = Some((j, close_brace(code, j)));
                                break;
                            }
                            Tok::Punct(';') => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    fns.push(FnDef {
                        name: qualified,
                        file_ix,
                        line: code[i].line,
                        is_pub: is_pub_at(code, i),
                        in_test: p.in_test.get(i).copied().unwrap_or(false),
                        is_method: self_type.is_some(),
                        self_type,
                        module: mod_path,
                        decl_ix: i,
                        body,
                    });
                    // Keep walking normally so nested items are still seen;
                    // the body brace will push an `Other` frame.
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// The self type of an `impl` header starting just past the `impl` keyword:
/// last path ident at angle-depth 0 before the body, restarting after `for`.
fn impl_self_type(code: &[Token], mut i: usize) -> String {
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    while i < code.len() {
        match &code[i].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('{') | Tok::Punct(';') => break,
            Tok::Ident(s) if s == "where" && angle == 0 => break,
            Tok::Ident(s) if s == "for" && angle == 0 => last = None,
            Tok::Ident(s) if angle == 0 => last = Some(s.clone()),
            _ => {}
        }
        i += 1;
    }
    last.unwrap_or_else(|| "_".to_string())
}

/// Whether the `fn` keyword at `i` is preceded by an unrestricted `pub`.
fn is_pub_at(code: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &code[j].tok {
            Tok::Ident(s) if matches!(s.as_str(), "const" | "unsafe" | "async" | "extern") => {}
            Tok::Literal => {} // `extern "C"`
            Tok::Ident(s) if s == "pub" => return !punct_at(code, j + 1, '('),
            _ => return false,
        }
    }
    false
}

/// Index just past the brace matching the `{` at `open` (or last token).
pub(crate) fn close_brace(code: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < code.len() {
        match code[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

/// Std/prelude type heads that never call back into workspace code. A
/// receiver typed as one of these resolves to no target; closure arguments
/// passed to its methods are scanned as part of the enclosing body, so no
/// workspace call is lost by dropping the edge.
const STD_HEADS: [&str; 38] = [
    "File",
    "OpenOptions",
    "Vec",
    "VecDeque",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Option",
    "Result",
    "String",
    "Box",
    "Arc",
    "Rc",
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "Cow",
    "PathBuf",
    "Path",
    "OsString",
    "Instant",
    "Duration",
    "SystemTime",
    "Sender",
    "SyncSender",
    "Receiver",
    "JoinHandle",
    "Condvar",
    "Range",
    "Ordering",
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "PhantomData",
];

/// Classify a type expression by its identifiers: the *last* workspace type
/// mentioned anywhere wins — `Arc<Mutex<Controller>>` types as `Controller`,
/// and a `HashMap<UnitId, HostUnit>` as its value type, which is what
/// iterating the collection yields; an expression made of nothing but std
/// heads, primitives, and type-position keywords is definitely-std; anything
/// else (generic parameters, unknown names) is untypeable.
fn classify_type_idents(idents: &[String], names: &HashSet<String>) -> Option<TypeRef> {
    for id in idents.iter().rev() {
        if names.contains(id) {
            return Some(TypeRef::Known(id.clone()));
        }
    }
    let all_std = !idents.is_empty()
        && idents.iter().all(|id| {
            STD_HEADS.contains(&id.as_str())
                || id.chars().next().is_some_and(|c| c.is_lowercase())
                || matches!(id.as_str(), "dyn" | "impl" | "mut" | "const")
        });
    if all_std {
        Some(TypeRef::Std)
    } else {
        None
    }
}

/// Collect the identifiers of a type expression starting at `i`, stopping at
/// a `stops` punct at nesting depth 0, an unmatched closer, or `end`.
/// Angle-bracket aware; a `->` does not close an angle. Returns the idents
/// and the index of the terminator.
fn type_expr(code: &[Token], mut i: usize, end: usize, stops: &[char]) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut angle = 0i32;
    let mut nest = 0i32;
    while i < end {
        match &code[i].tok {
            Tok::Punct(c) if nest == 0 && angle <= 0 && stops.contains(c) => return (idents, i),
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') if (i == 0 || !punct_at(code, i - 1, '-')) => {
                angle -= 1;
            }
            Tok::Punct('(' | '[' | '{') => nest += 1,
            Tok::Punct(')' | ']' | '}') => {
                if nest == 0 {
                    return (idents, i);
                }
                nest -= 1;
            }
            Tok::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        i += 1;
    }
    (idents, end)
}

/// Record every type name and `impl Trait for Type` pair in a file.
fn scan_types(p: &Prepared, table: &mut TypeTable) {
    let code = &p.code;
    let mut i = 0;
    while i < code.len() {
        match ident_at(code, i) {
            Some("struct") | Some("enum") | Some("trait") | Some("union") => {
                if let Some(name) = ident_at(code, i + 1) {
                    table.names.insert(name.to_string());
                }
            }
            Some("impl") => {
                let mut angle = 0i32;
                let mut last: Option<&str> = None;
                let mut trait_name: Option<&str> = None;
                let mut j = i + 1;
                while j < code.len() {
                    match &code[j].tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') if !punct_at(code, j - 1, '-') => angle -= 1,
                        Tok::Punct('{' | ';') => break,
                        Tok::Ident(s) if angle == 0 => match s.as_str() {
                            "where" => break,
                            "for" => trait_name = last.take(),
                            _ => last = Some(s),
                        },
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(ty) = last {
                    table.names.insert(ty.to_string());
                    if let Some(tr) = trait_name {
                        table
                            .trait_impls
                            .entry(tr.to_string())
                            .or_default()
                            .push(ty.to_string());
                        table
                            .impls_of
                            .entry(ty.to_string())
                            .or_default()
                            .push(tr.to_string());
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Record the classified type of every named struct field in a file.
fn scan_fields(
    p: &Prepared,
    names: &HashSet<String>,
    fields: &mut HashMap<(String, String), TypeRef>,
) {
    let code = &p.code;
    let mut i = 0;
    while i < code.len() {
        if ident_at(code, i) != Some("struct") {
            i += 1;
            continue;
        }
        let Some(sname) = ident_at(code, i + 1) else {
            i += 1;
            continue;
        };
        // Skip generics to the body; `(` or `;` means no named fields.
        let mut angle = 0i32;
        let mut j = i + 2;
        let mut open = None;
        while j < code.len() {
            match &code[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if !punct_at(code, j - 1, '-') => angle -= 1,
                Tok::Punct('{') if angle == 0 => {
                    open = Some(j);
                    break;
                }
                Tok::Punct('(' | ';') if angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let end = close_brace(code, open);
        let mut k = open + 1;
        while k < end {
            if let Some(field) = ident_at(code, k) {
                if punct_at(code, k + 1, ':')
                    && !punct_at(code, k + 2, ':')
                    && !punct_at(code, k.wrapping_sub(1), ':')
                {
                    let (idents, stop) = type_expr(code, k + 2, end, &[',']);
                    if let Some(t) = classify_type_idents(&idents, names) {
                        fields.insert((sname.to_string(), field.to_string()), t);
                    }
                    k = stop + 1;
                    continue;
                }
            }
            k += 1;
        }
        i = end;
    }
}

/// Type the named parameters of the signature starting at `decl_ix` (the
/// `fn` keyword); pattern parameters and untypeable types are skipped.
fn parse_params(
    code: &[Token],
    decl_ix: usize,
    body_open: usize,
    names: &HashSet<String>,
    out: &mut HashMap<String, TypeRef>,
) {
    let mut angle = 0i32;
    let mut j = decl_ix + 2;
    let mut open = None;
    while j < body_open {
        match &code[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') if !punct_at(code, j - 1, '-') => angle -= 1,
            Tok::Punct('(') if angle == 0 => {
                open = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let Some(open) = open else { return };
    let mut depth = 0i32;
    let mut close = open;
    for (k, tok) in code.iter().enumerate().take(body_open).skip(open) {
        match tok.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut k = open + 1;
    while k < close {
        let mut m = k;
        if ident_at(code, m) == Some("mut") {
            m += 1;
        }
        if let Some(nm) = ident_at(code, m) {
            if punct_at(code, m + 1, ':') && !punct_at(code, m + 2, ':') {
                let (idents, stop) = type_expr(code, m + 2, close, &[',']);
                if let Some(t) = classify_type_idents(&idents, names) {
                    out.insert(nm.to_string(), t);
                }
                k = stop + 1;
                continue;
            }
        }
        let (_, stop) = type_expr(code, k, close, &[',']);
        k = stop + 1;
    }
}

/// Type simple `let` bindings in a body: `let x: T = …` by annotation,
/// `let x = Head::…` by the constructor path's head, and
/// `let x = [&][mut] self.f.g;` / `let x = &typed_local.f;` by folding
/// declared field types. One flat map — the lint ignores shadowing and
/// block scopes.
fn scan_locals(
    code: &[Token],
    open: usize,
    close: usize,
    self_type: Option<&str>,
    table: &TypeTable,
    out: &mut HashMap<String, TypeRef>,
) {
    let names = &table.names;
    let mut i = open;
    while i < close {
        if ident_at(code, i) == Some("for") {
            scan_for_binding(code, i, close, self_type, table, out);
            i += 1;
            continue;
        }
        if ident_at(code, i) != Some("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if ident_at(code, j) == Some("mut") {
            j += 1;
        }
        if let Some(nm) = ident_at(code, j) {
            if punct_at(code, j + 1, ':') && !punct_at(code, j + 2, ':') {
                let (idents, _) = type_expr(code, j + 2, close, &['=', ';']);
                if let Some(t) = classify_type_idents(&idents, names) {
                    out.insert(nm.to_string(), t);
                }
            } else if punct_at(code, j + 1, '=') && !punct_at(code, j + 2, '=') {
                let mut k = j + 2;
                while punct_at(code, k, '&') {
                    k += 1;
                }
                if ident_at(code, k) == Some("mut") {
                    k += 1;
                }
                if let Some(head) = ident_at(code, k) {
                    if punct_at(code, k + 1, ':') && punct_at(code, k + 2, ':') {
                        // `let x = Head::…` — typed by the constructor head.
                        if names.contains(head) {
                            out.insert(nm.to_string(), TypeRef::Known(head.to_string()));
                        } else if STD_HEADS.contains(&head) {
                            out.insert(nm.to_string(), TypeRef::Std);
                        }
                    } else if punct_at(code, k + 1, '.') || punct_at(code, k + 1, ';') {
                        // Pure field chain ending at `;` — fold field types.
                        let root = if head == "self" {
                            self_type.map(|t| TypeRef::Known(t.to_string()))
                        } else {
                            out.get(head).cloned()
                        };
                        let mut cur = root;
                        let mut m = k + 1;
                        while cur.is_some() && punct_at(code, m, '.') {
                            let (field, t) = match (ident_at(code, m + 1), &cur) {
                                (Some(f), Some(TypeRef::Known(t))) => (f, t.clone()),
                                _ => {
                                    cur = None;
                                    break;
                                }
                            };
                            cur = table.fields.get(&(t, field.to_string())).cloned();
                            m += 2;
                        }
                        if let (Some(t), true) = (cur, punct_at(code, m, ';')) {
                            out.insert(nm.to_string(), t);
                        }
                    }
                }
            }
        }
        i = j + 1;
    }
}

/// Type a `for` loop's binding: in `for (k, v) in self.f.iter_mut() {…}`,
/// the *last* pattern identifier (the value side of a map iteration) gets
/// the iterated field's classified type — by [`classify_type_idents`]'s
/// last-workspace-ident rule, a collection field already classifies as its
/// workspace element type. Only pure field chains, optionally capped by one
/// identity-element iterator adaptor, are typed.
fn scan_for_binding(
    code: &[Token],
    i: usize,
    close: usize,
    self_type: Option<&str>,
    table: &TypeTable,
    out: &mut HashMap<String, TypeRef>,
) {
    // Pattern: idents up to `in` (bounded; give up at a `{`).
    let mut j = i + 1;
    let mut last_pat: Option<&str> = None;
    let mut guard = 0;
    loop {
        if j >= close || guard > 24 || punct_at(code, j, '{') {
            return;
        }
        match ident_at(code, j) {
            Some("in") => break,
            Some(id) if !matches!(id, "mut" | "ref" | "_") => last_pat = Some(id),
            _ => {}
        }
        j += 1;
        guard += 1;
    }
    let Some(pat) = last_pat else { return };
    let mut k = j + 1;
    while punct_at(code, k, '&') {
        k += 1;
    }
    if ident_at(code, k) == Some("mut") {
        k += 1;
    }
    let Some(root) = ident_at(code, k) else {
        return;
    };
    let mut cur = if root == "self" {
        self_type.map(|t| TypeRef::Known(t.to_string()))
    } else {
        out.get(root).cloned()
    };
    let mut m = k + 1;
    let mut folded = 0;
    while m < close {
        if punct_at(code, m, '{') {
            break;
        }
        if !punct_at(code, m, '.') {
            return;
        }
        let Some(f) = ident_at(code, m + 1) else {
            return;
        };
        if punct_at(code, m + 2, '(') {
            // An element-preserving adaptor keeps the convention; anything
            // else (`.keys()`, `.chars()`, arbitrary calls) is untypeable.
            if (folded == 0 && root == "self")
                || !matches!(
                    f,
                    "iter" | "iter_mut" | "into_iter" | "values" | "values_mut" | "drain"
                )
            {
                return;
            }
            m += 2; // at '('; the `{` check below ends the walk
            let mut depth = 0i32;
            while m < close {
                match code[m].tok {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            m += 1;
            continue;
        }
        let Some(TypeRef::Known(t)) = &cur else {
            return;
        };
        cur = table.fields.get(&(t.clone(), f.to_string())).cloned();
        folded += 1;
        m += 2;
    }
    // `for x in self {…}` / `for x in self.iter() {…}` would type `x` as the
    // container itself; require a field fold when rooted at `self`.
    if let Some(t) = cur {
        if folded > 0 || root != "self" {
            out.insert(pat.to_string(), t);
        }
    }
}

/// Type the receiver of the method call whose callee ident is at `i`:
/// walk the `root(.field)*` chain backwards from the dot, type the root
/// (`self`, a typed local, or a typed parameter), then fold declared field
/// types. `None` = untypeable; fall back to bare-name resolution.
fn receiver_type(
    code: &[Token],
    i: usize,
    d: &FnDef,
    locals: &HashMap<String, TypeRef>,
    table: &TypeTable,
) -> Option<TypeRef> {
    let mut chain: Vec<&str> = Vec::new();
    let mut j = i - 1; // the '.' before the method name
    loop {
        let prev = j.checked_sub(1)?;
        if chain.is_empty() && punct_at(code, prev, ')') {
            // The receiver is a call result. Return types are not tracked,
            // so this is untypeable in general — except for one decidable
            // and load-bearing pattern: a builder chain headed by a std
            // constructor (`OpenOptions::new().append(true).create(true)`),
            // which cannot call back into the workspace. Without this, a
            // workspace method sharing a builder-setter name (`create`,
            // `append`, …) is pulled into the call graph by the bare-name
            // fallback and its lock acquisitions poison the caller's.
            return std_builder_chain(code, prev);
        }
        let id = ident_at(code, prev)?; // `]`, `?` receivers: untypeable
        chain.push(id);
        if prev >= 1 && punct_at(code, prev - 1, '.') {
            j = prev - 1;
            continue;
        }
        if prev >= 1 && punct_at(code, prev - 1, ':') {
            return None; // `T::CONST.m()`-style receivers stay untyped
        }
        break;
    }
    chain.reverse();
    let mut cur = if chain[0] == "self" {
        TypeRef::Known(d.self_type.clone()?)
    } else {
        locals.get(chain[0])?.clone()
    };
    for field in &chain[1..] {
        let TypeRef::Known(t) = &cur else {
            return None; // fields of a std container: untypeable
        };
        cur = table
            .fields
            .get(&(t.clone(), (*field).to_string()))?
            .clone();
    }
    Some(cur)
}

/// Walk a `.m(…)` chain backwards from the `)` at `end`. `Some(Std)` iff
/// every segment is a method call and the head is `Head::assoc(…)` with
/// `Head` in [`STD_HEADS`] — a std builder chain, whose value stays a std
/// type at every step. Workspace or unknown heads, field segments, and
/// index/`?` segments all return `None` (untypeable, bare-name fallback).
fn std_builder_chain(code: &[Token], end: usize) -> Option<TypeRef> {
    let mut close = end;
    loop {
        // Skip the balanced `( … )` whose `)` sits at `close`.
        let mut depth = 0i32;
        let mut q = close;
        loop {
            match code[q].tok {
                Tok::Punct(')') => depth += 1,
                Tok::Punct('(') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            q = q.checked_sub(1)?;
        }
        // Before the `(`: the method or associated-fn name.
        let name_ix = q.checked_sub(1)?;
        ident_at(code, name_ix)?;
        let before = name_ix.checked_sub(1)?;
        if punct_at(code, before, '.') {
            // `….m(…)` — the chain continues; the previous segment must be
            // a call too (field-rooted chains are another pattern).
            let seg = before.checked_sub(1)?;
            if !punct_at(code, seg, ')') {
                return None;
            }
            close = seg;
            continue;
        }
        if before >= 1 && punct_at(code, before, ':') && punct_at(code, before - 1, ':') {
            // `Head::assoc(` — possibly under a module path (`fs::Head::…`);
            // the ident directly left of `::` is the type either way.
            let head = ident_at(code, before.checked_sub(2)?)?;
            return if STD_HEADS.contains(&head) {
                Some(TypeRef::Std)
            } else {
                None
            };
        }
        return None; // free-fn call result (`helper().m()`): untypeable
    }
}

/// All methods named `name` callable on a receiver of workspace type `t`:
/// `t`'s own, every implementor's when `t` is a trait (class-hierarchy
/// dispatch), and default methods of traits `t` implements.
fn typed_targets(
    t: &str,
    name: &str,
    typed_methods: &HashMap<(String, String), Vec<FnId>>,
    table: &TypeTable,
) -> Vec<FnId> {
    let mut out: Vec<FnId> = Vec::new();
    let add = |ty: &str, out: &mut Vec<FnId>| {
        if let Some(v) = typed_methods.get(&(ty.to_string(), name.to_string())) {
            out.extend_from_slice(v);
        }
    };
    add(t, &mut out);
    if let Some(impls) = table.trait_impls.get(t) {
        for ty in impls {
            add(ty, &mut out);
        }
    }
    if let Some(traits) = table.impls_of.get(t) {
        for tr in traits {
            add(tr, &mut out);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

const KEYWORDS: [&str; 30] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "move", "ref", "mut", "await", "fn", "let", "impl", "pub", "use", "mod", "struct", "enum",
    "union", "trait", "type", "where", "unsafe", "async", "const",
];

#[allow(clippy::too_many_arguments)]
fn extract_calls(
    p: &Prepared,
    d: &FnDef,
    ctx: &FileCtx,
    open: usize,
    close: usize,
    inner: &[(usize, usize)],
    res: &Resolver,
    files: &[Prepared],
    fns: &[FnDef],
    out: &mut Vec<CallSite>,
) {
    let code = &p.code;
    let caller_is_test = files[d.file_ix].class == FileClass::Test || d.in_test;
    let mut i = open;
    while i < close {
        if let Some((_, e)) = inner.iter().find(|(s, _)| *s == i) {
            i = e + 1;
            continue;
        }
        let Some(name) = ident_at(code, i) else {
            i += 1;
            continue;
        };
        if !punct_at(code, i + 1, '(') {
            i += 1;
            continue;
        }
        let line = code[i].line;
        if punct_at(code, i.wrapping_sub(1), '.') {
            // Method call: receiver-typed resolution first, bare-name
            // over-approximation for untypeable receivers.
            let (kind, mut targets) = match receiver_type(code, i, d, res.locals, res.table) {
                Some(TypeRef::Known(t)) => (
                    CallKind::Typed,
                    typed_targets(&t, name, res.typed_methods, res.table),
                ),
                Some(TypeRef::Std) => (CallKind::Typed, Vec::new()),
                None => (
                    CallKind::Method,
                    res.methods.get(name).cloned().unwrap_or_default(),
                ),
            };
            if !caller_is_test {
                targets.retain(|t| {
                    files[fns[*t].file_ix].class != FileClass::Test && !fns[*t].in_test
                });
            }
            let kind = if targets.is_empty() {
                CallKind::Unresolved
            } else {
                kind
            };
            out.push(CallSite {
                tok_ix: i,
                line,
                label: format!(".{name}"),
                kind,
                targets,
            });
        } else if punct_at(code, i.wrapping_sub(1), ':') && punct_at(code, i.wrapping_sub(2), ':') {
            // Path call: walk the `a::b::name` spine backwards.
            let mut segs: Vec<String> = vec![name.to_string()];
            let mut j = i;
            while j >= 3
                && punct_at(code, j - 1, ':')
                && punct_at(code, j - 2, ':')
                && ident_at(code, j - 3).is_some()
            {
                segs.insert(0, ident_at(code, j - 3).unwrap_or_default().to_string());
                j -= 3;
            }
            let label = segs.join("::");
            let (kind, mut targets) = resolve_path(&segs, d, ctx, res.exact, res.suffix2);
            if !caller_is_test {
                targets.retain(|t| {
                    files[fns[*t].file_ix].class != FileClass::Test && !fns[*t].in_test
                });
            }
            let kind = if targets.is_empty() {
                CallKind::Unresolved
            } else {
                kind
            };
            out.push(CallSite {
                tok_ix: i,
                line,
                label,
                kind,
                targets,
            });
        } else if !KEYWORDS.contains(&name) && ident_at(code, i.wrapping_sub(1)) != Some("fn") {
            // Plain call: same module, then `use` aliases, then globs.
            let mut full = d.module.join("::");
            full.push_str("::");
            full.push_str(name);
            let mut kind = CallKind::Exact;
            let mut targets: Vec<FnId> = res.exact.get(full.as_str()).cloned().unwrap_or_default();
            if targets.is_empty() {
                if let Some(path) = ctx.aliases.get(name) {
                    targets = res
                        .exact
                        .get(path.join("::").as_str())
                        .cloned()
                        .unwrap_or_default();
                }
            }
            if targets.is_empty() {
                for g in &ctx.globs {
                    let cand = format!("{}::{name}", g.join("::"));
                    if let Some(v) = res.exact.get(cand.as_str()) {
                        targets = v.clone();
                        break;
                    }
                }
            }
            if !caller_is_test {
                targets.retain(|t| {
                    files[fns[*t].file_ix].class != FileClass::Test && !fns[*t].in_test
                });
            }
            if targets.is_empty() {
                kind = CallKind::Unresolved;
                // An unresolved capitalized plain "call" is almost always a
                // tuple-struct or enum constructor; don't count it.
                if name.chars().next().is_some_and(|c| c.is_uppercase()) {
                    i += 1;
                    continue;
                }
            }
            out.push(CallSite {
                tok_ix: i,
                line,
                label: name.to_string(),
                kind,
                targets,
            });
        }
        i += 1;
    }
}

/// Resolve a `::`-path call against the symbol tables.
fn resolve_path(
    segs: &[String],
    d: &FnDef,
    ctx: &FileCtx,
    exact: &HashMap<&str, Vec<FnId>>,
    suffix2: &HashMap<(&str, &str), Vec<FnId>>,
) -> (CallKind, Vec<FnId>) {
    let mut norm: Vec<String> = Vec::new();
    match segs[0].as_str() {
        "crate" => {
            norm.extend(d.module.first().cloned());
            norm.extend(segs[1..].iter().cloned());
        }
        "self" => {
            norm.extend(d.module.iter().cloned());
            norm.extend(segs[1..].iter().cloned());
        }
        "super" => {
            norm.extend(
                d.module
                    .iter()
                    .take(d.module.len().saturating_sub(1))
                    .cloned(),
            );
            norm.extend(segs[1..].iter().cloned());
        }
        "Self" => {
            norm.extend(d.module.iter().cloned());
            norm.extend(d.self_type.iter().cloned());
            norm.extend(segs[1..].iter().cloned());
        }
        head => {
            if let Some(path) = ctx.aliases.get(head) {
                norm.extend(path.iter().cloned());
            } else {
                norm.push(head.to_string());
            }
            norm.extend(segs[1..].iter().cloned());
        }
    }
    if let Some(v) = exact.get(norm.join("::").as_str()) {
        return (CallKind::Exact, v.clone());
    }
    // Module-relative path (`timing::leak()` with `mod timing` in scope).
    let mut rel: Vec<String> = d.module.clone();
    rel.extend(norm.iter().cloned());
    if let Some(v) = exact.get(rel.join("::").as_str()) {
        return (CallKind::Exact, v.clone());
    }
    if norm.len() >= 2 {
        let key = (norm[norm.len() - 2].as_str(), norm[norm.len() - 1].as_str());
        if let Some(v) = suffix2.get(&key) {
            return (CallKind::Suffix, v.clone());
        }
    }
    (CallKind::Unresolved, Vec::new())
}
