//! Reachability taints over the call graph: R2-deep (`wall-clock-reach`) and
//! R1-deep (`panic-reach`).
//!
//! Both analyses share a shape: scan every function body for *seed*
//! primitives, BFS the reverse call graph to find everything that can reach
//! a seed, then report the rule-specific frontier with a witness chain.
//!
//! Suppression semantics are deliberate: a seed site already silenced with a
//! per-file `lint: allow(wall-clock, …)` / `lint: allow(panic, …)` has been
//! audited — it does not seed, so its callers inherit the audit instead of
//! each needing their own annotation. Unresolved callees (std, shims) never
//! taint: the analysis under-approximates across them, by design.

use crate::callgraph::Workspace;
use crate::graph::{chain_to_seed, next_hop_to_seeds};
use crate::rules::{ident_at, punct_at, FileClass, Finding, Prepared};

/// Seed found in a function body.
#[derive(Clone, Debug)]
pub struct Seed {
    pub line: u32,
    /// What grounds the taint (`Instant::now`, `.unwrap()`, …).
    pub what: String,
}

/// R2-deep: deterministic modules transitively reaching wall-clock reads,
/// sleeps, or OS entropy.
pub fn wall_clock_reach(
    files: &[Prepared],
    ws: &Workspace,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    let seeds: Vec<Option<Seed>> = ws
        .fns
        .iter()
        .map(|d| {
            let p = &files[d.file_ix];
            if p.class == FileClass::Test || d.in_test {
                return None;
            }
            d.body.and_then(|(open, close)| clock_seed(p, open, close))
        })
        .collect();
    report_reach(
        files,
        ws,
        &seeds,
        "wall-clock-reach",
        |d, p| p.deterministic && !d.in_test && p.class != FileClass::Test,
        |what, chain_len| {
            format!(
                "reaches `{what}` through {chain_len} call(s) from a \
                 deterministic module — thread virtual time / a keyed stream \
                 through instead"
            )
        },
        findings,
        suppressed,
    );
}

/// R1-deep: public library entry points transitively reaching a panic.
pub fn panic_reach(
    files: &[Prepared],
    ws: &Workspace,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    let seeds: Vec<Option<Seed>> = ws
        .fns
        .iter()
        .map(|d| {
            let p = &files[d.file_ix];
            if p.class != FileClass::Library || d.in_test {
                return None;
            }
            d.body.and_then(|(open, close)| panic_seed(p, open, close))
        })
        .collect();
    report_reach(
        files,
        ws,
        &seeds,
        "panic-reach",
        |d, p| d.is_pub && !d.in_test && p.class == FileClass::Library,
        |what, chain_len| {
            format!(
                "public entry point reaches `{what}` through {chain_len} \
                 call(s) — return an error up the chain or audit the seed \
                 with a per-file allow"
            )
        },
        findings,
        suppressed,
    );
}

/// Shared frontier reporting for both reach rules.
#[allow(clippy::too_many_arguments)]
fn report_reach(
    files: &[Prepared],
    ws: &Workspace,
    seeds: &[Option<Seed>],
    rule: &'static str,
    applies: impl Fn(&crate::callgraph::FnDef, &Prepared) -> bool,
    message: impl Fn(&str, usize) -> String,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    let adj = ws.adjacency();
    let seed_flags: Vec<bool> = seeds.iter().map(Option::is_some).collect();
    let hop = next_hop_to_seeds(&adj, &seed_flags);
    for (f, d) in ws.fns.iter().enumerate() {
        let p = &files[d.file_ix];
        if !applies(d, p) {
            continue;
        }
        if let Some(seed) = seeds[f].as_ref() {
            // The function contains the primitive directly; that is the
            // per-file rule's finding (R1/R2), except for `unreachable!`,
            // which only this pass covers.
            if rule == "panic-reach" && seed.what == "unreachable!" {
                push_checked(
                    p,
                    Finding {
                        rule,
                        file: p.display.clone(),
                        line: seed.line,
                        message: "public entry point contains `unreachable!` — \
                                  make the invariant a returned error"
                            .to_string(),
                        chain: vec![ws.label(files, f)],
                    },
                    findings,
                    suppressed,
                );
            }
            continue;
        }
        // Report the first call site per distinct tainted target.
        let mut hit: Vec<usize> = Vec::new();
        for site in &ws.calls[f] {
            let Some(&t) = site.targets.iter().find(|t| hop[**t].is_some()) else {
                continue;
            };
            if hit.contains(&t) {
                continue;
            }
            hit.push(t);
            let node_chain = chain_to_seed(&hop, t);
            let seed_fn = *node_chain.last().unwrap_or(&t);
            let what = seeds[seed_fn]
                .as_ref()
                .map(|s| s.what.clone())
                .unwrap_or_default();
            let mut chain = vec![ws.label(files, f)];
            chain.extend(node_chain.iter().map(|&n| ws.label(files, n)));
            chain.push(format!("`{what}`"));
            push_checked(
                p,
                Finding {
                    rule,
                    file: p.display.clone(),
                    line: site.line,
                    message: format!("`{}` {}", site.label, message(&what, node_chain.len())),
                    chain,
                },
                findings,
                suppressed,
            );
        }
    }
}

pub(crate) fn push_checked(
    p: &Prepared,
    f: Finding,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    if p.allowed(f.line, f.rule) {
        *suppressed += 1;
    } else {
        findings.push(f);
    }
}

/// First unsuppressed wall-clock / entropy primitive in a body range.
fn clock_seed(p: &Prepared, open: usize, close: usize) -> Option<Seed> {
    const BANNED: [(&str, &str); 4] = [
        ("Instant", "now"),
        ("SystemTime", "now"),
        ("thread", "sleep"),
        ("WallClock", "start"),
    ];
    const ENTROPY: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];
    let code = &p.code;
    for i in open..close {
        if p.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(a) = ident_at(code, i) else { continue };
        let line = code[i].line;
        if punct_at(code, i + 1, ':') && punct_at(code, i + 2, ':') {
            if let Some(b) = ident_at(code, i + 3) {
                if BANNED.contains(&(a, b)) && !p.allowed(line, "wall-clock") {
                    return Some(Seed {
                        line,
                        what: format!("{a}::{b}"),
                    });
                }
            }
        }
        if ENTROPY.contains(&a) && !p.allowed(line, "wall-clock") {
            return Some(Seed {
                line,
                what: a.to_string(),
            });
        }
    }
    None
}

/// First unsuppressed panic primitive in a body range.
fn panic_seed(p: &Prepared, open: usize, close: usize) -> Option<Seed> {
    let code = &p.code;
    for i in open..close {
        if p.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        let line = code[i].line;
        let seed = if matches!(name, "unwrap" | "expect")
            && punct_at(code, i.wrapping_sub(1), '.')
            && punct_at(code, i + 1, '(')
        {
            Some(format!(".{name}()"))
        } else if matches!(name, "panic" | "unreachable") && punct_at(code, i + 1, '!') {
            Some(format!("{name}!"))
        } else {
            None
        };
        if let Some(what) = seed {
            if !p.allowed(line, "panic") {
                return Some(Seed { line, what });
            }
        }
    }
    None
}
