//! The interprocedural pass: orchestrates the call graph plus the five deep
//! rules.
//!
//! | rule               | invariant                                                          |
//! |--------------------|--------------------------------------------------------------------|
//! | `wall-clock-reach` | R2-deep: no deterministic module *transitively* reaches a          |
//! |                    | wall-clock read, sleep, or OS entropy (witness chain printed)      |
//! | `panic-reach`      | R1-deep: no public library entry point transitively reaches an     |
//! |                    | unaudited panic (`unreachable!` included — per-file R1 misses it)  |
//! | `lock-cycle`       | R4-deep: the workspace lock-order graph, with held-guard sets      |
//! |                    | propagated through callees, has no cycles                          |
//! | `fence-discipline` | R6: in `fabric`/`replica`, report application and log appends      |
//! |                    | happen under an epoch comparison in the function or on every       |
//! |                    | caller path                                                        |
//! | `rng-stream`       | R7: RNG draws in deterministic modules flow through reserved       |
//! |                    | keyed streams (`rng.stream(…)`), never ad-hoc off a root RNG       |
//!
//! Conservatism is one-directional per rule and documented in DESIGN §8:
//! reach rules under-approximate across unresolved callees and audited
//! seeds; the lock graph over-approximates through method-name resolution;
//! fence analysis treats any epoch-adjacent comparison as a guard
//! (under-reporting); RNG discipline only flags receivers it can prove are
//! root generators.

use std::collections::HashMap;

use crate::callgraph::{self, CallSite, FnDef, GraphStats, Workspace};
use crate::graph::{EdgeInfo, LockGraph};
use crate::lexer::{Tok, Token};
use crate::rules::{ident_at, lockee_name, punct_at, FileClass, Finding, Prepared};
use crate::taint::{self, push_checked};

/// Output of [`analyze`].
#[derive(Debug, Default)]
pub struct DeepReport {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
    pub stats: GraphStats,
}

/// Run every interprocedural rule over the prepared files.
pub fn analyze(files: &[Prepared]) -> DeepReport {
    let ws = callgraph::build(files);
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    taint::wall_clock_reach(files, &ws, &mut findings, &mut suppressed);
    taint::panic_reach(files, &ws, &mut findings, &mut suppressed);
    lock_cycles(files, &ws, &mut findings, &mut suppressed);
    fence_discipline(files, &ws, &mut findings, &mut suppressed);
    rng_streams(files, &ws, &mut findings, &mut suppressed);
    DeepReport {
        findings,
        suppressed,
        stats: ws.stats,
    }
}

// ---------------------------------------------------------------------------
// R4-deep: whole-workspace lock-order graph with cycle detection.
// ---------------------------------------------------------------------------

/// Locks one function acquires, the order edges inside it, and what it holds
/// at each call site.
#[derive(Debug, Default)]
struct LockSummary {
    /// Lock names (crate-qualified) acquired anywhere in the body.
    acquires: Vec<(String, u32)>,
    /// `(first, second, line)` — second taken while first held, same body.
    intra: Vec<(String, String, u32)>,
    /// `(call index, held lock names)` for calls made under a guard.
    at_calls: Vec<(usize, Vec<String>)>,
}

fn lock_cycles(
    files: &[Prepared],
    ws: &Workspace,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    let relevant = |d: &FnDef| files[d.file_ix].class == FileClass::Library && !d.in_test;
    let summaries: Vec<LockSummary> = ws
        .fns
        .iter()
        .enumerate()
        .map(|(f, d)| {
            if !relevant(d) {
                return LockSummary::default();
            }
            d.body
                .map(|(open, close)| lock_summary(&files[d.file_ix], d, open, close, &ws.calls[f]))
                .unwrap_or_default()
        })
        .collect();

    // Transitive acquisition sets, to a fixed point (the call graph has
    // cycles; iteration is monotone over finite sets so it terminates).
    let adj = ws.adjacency();
    let mut names: HashMap<String, usize> = HashMap::new();
    let intern = |n: &str, names: &mut HashMap<String, usize>| {
        let next = names.len();
        *names.entry(n.to_string()).or_insert(next)
    };
    let mut trans: Vec<Vec<usize>> = summaries
        .iter()
        .map(|s| {
            let mut v: Vec<usize> = s
                .acquires
                .iter()
                .map(|(n, _)| intern(n, &mut names))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    loop {
        let mut changed = false;
        for f in 0..trans.len() {
            let mut merged = trans[f].clone();
            for &t in &adj[f] {
                merged.extend(trans[t].iter().copied());
            }
            merged.sort_unstable();
            merged.dedup();
            if merged.len() != trans[f].len() {
                trans[f] = merged;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let id_names: Vec<&String> = {
        let mut v: Vec<(&String, &usize)> = names.iter().collect();
        v.sort_by_key(|(_, id)| **id);
        v.into_iter().map(|(n, _)| n).collect()
    };

    // Global lock graph: intra edges plus call edges (lock L held while
    // calling something that transitively acquires M).
    let mut graph = LockGraph::default();
    let mut order: Vec<usize> = (0..ws.fns.len()).collect();
    order.sort_by_key(|&f| (&files[ws.fns[f].file_ix].display, ws.fns[f].line));
    for &f in &order {
        let d = &ws.fns[f];
        let p = &files[d.file_ix];
        let s = &summaries[f];
        for (a, b, line) in &s.intra {
            let from = graph.intern(a);
            let to = graph.intern(b);
            graph.add_edge(
                from,
                to,
                EdgeInfo {
                    file: p.display.clone(),
                    line: *line,
                    via: format!("both locked in `{}`", d.name),
                    intra: true,
                },
            );
        }
        for (call_ix, held) in &s.at_calls {
            let site: &CallSite = &ws.calls[f][*call_ix];
            for t in &site.targets {
                for &m in &trans[*t] {
                    let m_name = id_names[m].as_str();
                    for h in held {
                        if h == m_name {
                            continue;
                        }
                        let from = graph.intern(h);
                        let to = graph.intern(m_name);
                        graph.add_edge(
                            from,
                            to,
                            EdgeInfo {
                                file: p.display.clone(),
                                line: site.line,
                                via: format!(
                                    "`{}` holds `{h}` while calling `{}`, which acquires `{m_name}`",
                                    d.name, ws.fns[*t].name
                                ),
                                intra: false,
                            },
                        );
                    }
                }
            }
        }
    }

    for cycle in graph.cycles() {
        let edges: Vec<(&EdgeInfo, String)> = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .take(cycle.len())
            .filter_map(|(&a, &b)| {
                let info = graph.edges.get(&(a, b))?;
                Some((
                    info,
                    format!(
                        "{} -> {} [{}:{} — {}]",
                        graph.name(a),
                        graph.name(b),
                        info.file,
                        info.line,
                        info.via
                    ),
                ))
            })
            .collect();
        if edges.len() != cycle.len() {
            continue;
        }
        // A pure-intra 2-cycle is the pairwise rule's finding, not ours.
        if cycle.len() == 2 && edges.iter().all(|(i, _)| i.intra) {
            continue;
        }
        let (anchor, _) = edges
            .iter()
            .min_by_key(|(i, _)| (i.file.clone(), i.line))
            .map(|(i, w)| (*i, w))
            .unwrap_or((edges[0].0, &edges[0].1));
        let ring: Vec<&str> = cycle
            .iter()
            .chain(cycle.first())
            .map(|&n| graph.name(n))
            .collect();
        let p = files.iter().find(|p| p.display == anchor.file);
        let finding = Finding {
            rule: "lock-cycle",
            file: anchor.file.clone(),
            line: anchor.line,
            message: format!(
                "lock-order cycle `{}` — a deadlock once two threads enter it \
                 from different edges",
                ring.join(" -> ")
            ),
            chain: edges.iter().map(|(_, w)| w.clone()).collect(),
        };
        match p {
            Some(p) => push_checked(p, finding, findings, suppressed),
            None => findings.push(finding),
        }
    }
}

/// Guard-tracking walk of one body, mirroring the per-file R4 scanner but
/// additionally snapshotting held locks at every call site.
fn lock_summary(
    p: &Prepared,
    d: &FnDef,
    open: usize,
    close: usize,
    calls: &[CallSite],
) -> LockSummary {
    struct Guard {
        var: Option<String>,
        lockee: String,
        depth: usize,
    }
    let code = &p.code;
    let krate = d.module.first().cloned().unwrap_or_default();
    let qualify = |l: &str| format!("{krate}::{l}");
    let mut out = LockSummary::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut pending_let: Option<String> = None;
    let mut depth = 0usize;
    let mut call_ix = 0usize;
    let mut i = open;
    while i <= close {
        while call_ix < calls.len() && calls[call_ix].tok_ix < i {
            call_ix += 1;
        }
        if call_ix < calls.len() && calls[call_ix].tok_ix == i {
            let held: Vec<String> = guards.iter().map(|g| g.lockee.clone()).collect();
            if !held.is_empty() && !calls[call_ix].targets.is_empty() {
                out.at_calls.push((call_ix, held));
            }
        }
        match &code[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Punct(';') => {
                pending_let = None;
            }
            Tok::Ident(name) => {
                let line = code[i].line;
                match name.as_str() {
                    "let" => {
                        if let Some(n) = ident_at(code, i + 1) {
                            let n = if n == "mut" {
                                ident_at(code, i + 2).unwrap_or(n)
                            } else {
                                n
                            };
                            pending_let = Some(n.to_string());
                        }
                    }
                    "drop" if punct_at(code, i + 1, '(') => {
                        if let Some(v) = ident_at(code, i + 2) {
                            guards.retain(|g| g.var.as_deref() != Some(v));
                        }
                    }
                    "lock" | "read" | "write"
                        if punct_at(code, i.wrapping_sub(1), '.')
                            && punct_at(code, i + 1, '(')
                            && punct_at(code, i + 2, ')') =>
                    {
                        let lockee = qualify(&lockee_name(code, i));
                        out.acquires.push((lockee.clone(), line));
                        for g in &guards {
                            if g.lockee != lockee {
                                out.intra.push((g.lockee.clone(), lockee.clone(), line));
                            }
                        }
                        if let Some(var) = pending_let.clone() {
                            guards.push(Guard {
                                var: Some(var),
                                lockee,
                                depth,
                            });
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// R6: epoch fence discipline in the fabric and replica subsystems.
// ---------------------------------------------------------------------------

fn r6_scope(display: &str) -> bool {
    display.contains("fabric/") || display.ends_with("replica.rs")
}

fn fence_discipline(
    files: &[Prepared],
    ws: &Workspace,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    // Guard status for every function (cheap scan), not just in-scope ones:
    // fencing may live in a caller outside the subsystem directory.
    let guarded: Vec<bool> = ws
        .fns
        .iter()
        .map(|d| {
            d.body
                .is_some_and(|(open, close)| has_epoch_guard(&files[d.file_ix], open, close))
        })
        .collect();
    let lib_caller = |f: usize| {
        let d = &ws.fns[f];
        files[d.file_ix].class == FileClass::Library && !d.in_test
    };
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
    for (f, sites) in ws.calls.iter().enumerate() {
        if !lib_caller(f) {
            continue;
        }
        for s in sites {
            for &t in &s.targets {
                if !callers[t].contains(&f) {
                    callers[t].push(f);
                }
            }
        }
    }
    // fenced(f) = guard(f) ∨ (callers ≠ ∅ ∧ every caller fenced) — the least
    // fixed point starting from the guards, so cyclic unfenced callers stay
    // unfenced (conservative).
    let mut fenced = guarded.clone();
    loop {
        let mut changed = false;
        for f in 0..fenced.len() {
            if fenced[f] || callers[f].is_empty() {
                continue;
            }
            if callers[f].iter().all(|&c| fenced[c]) {
                fenced[f] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (f, d) in ws.fns.iter().enumerate() {
        let p = &files[d.file_ix];
        if !r6_scope(&p.display) || p.class == FileClass::Test || d.in_test || fenced[f] {
            continue;
        }
        let Some((open, close)) = d.body else {
            continue;
        };
        for (line, what) in apply_sites(p, open, close) {
            let mut chain = unfenced_path(ws, files, &callers, &fenced, f);
            chain.push(format!("`{what}`"));
            push_checked(
                p,
                Finding {
                    rule: "fence-discipline",
                    file: p.display.clone(),
                    line,
                    message: format!(
                        "`{what}` applied in `{}` with no epoch comparison in \
                         the function or on a caller path — a stale-epoch \
                         actor could apply it after losing ownership",
                        d.name
                    ),
                    chain,
                },
                findings,
                suppressed,
            );
        }
    }
}

/// Walk *up* the caller graph along unfenced functions to show one concrete
/// unguarded entry path, root first.
fn unfenced_path(
    ws: &Workspace,
    files: &[Prepared],
    callers: &[Vec<usize>],
    fenced: &[bool],
    f: usize,
) -> Vec<String> {
    let mut path = vec![f];
    let mut cur = f;
    while path.len() < 10 {
        let Some(&up) = callers[cur]
            .iter()
            .find(|c| !fenced[**c] && !path.contains(*c))
        else {
            break;
        };
        path.push(up);
        cur = up;
    }
    path.reverse();
    path.into_iter().map(|n| ws.label(files, n)).collect()
}

/// Report-application / append primitives inside a body.
fn apply_sites(p: &Prepared, open: usize, close: usize) -> Vec<(u32, String)> {
    let code = &p.code;
    let mut out = Vec::new();
    for i in open..close {
        if p.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        let line = code[i].line;
        if matches!(name, "append_at" | "append_messages")
            && punct_at(code, i.wrapping_sub(1), '.')
            && punct_at(code, i + 1, '(')
        {
            out.push((line, format!(".{name}(…)")));
            continue;
        }
        // A `ToController::Variant { … } =>` match arm is where a daemon
        // report gets applied; pattern position is distinguished from
        // construction by the `=>` after the brace-matched pattern.
        if matches!(name, "ToController" | "ToDaemon")
            && punct_at(code, i + 1, ':')
            && punct_at(code, i + 2, ':')
        {
            let Some(variant) = ident_at(code, i + 3) else {
                continue;
            };
            let mut j = i + 4;
            if punct_at(code, j, '{') {
                j = callgraph::close_brace(code, j) + 1;
            } else if punct_at(code, j, '(') {
                let mut depth = 0i32;
                while j < code.len() {
                    match code[j].tok {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            if punct_at(code, j, '=') && punct_at(code, j + 1, '>') {
                out.push((line, format!("{name}::{variant} match arm")));
            }
        }
    }
    out
}

/// Does any single statement both mention an epoch-ish identifier and
/// perform a comparison? (Generic brackets can satisfy `<`/`>`, so this
/// over-accepts guards — the rule under-reports, never false-fires, on
/// fenced code.)
fn has_epoch_guard(p: &Prepared, open: usize, close: usize) -> bool {
    let code = &p.code;
    let mut has_epoch = false;
    let mut has_cmp = false;
    for i in open..close {
        match &code[i].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => {
                has_epoch = false;
                has_cmp = false;
            }
            Tok::Punct(c)
                if (matches!(c, '<' | '>')
                    || (*c == '=' && punct_at(code, i + 1, '='))
                    || (*c == '!' && punct_at(code, i + 1, '='))) =>
            {
                has_cmp = true;
            }
            Tok::Ident(s) if s.to_ascii_lowercase().contains("epoch") => {
                has_epoch = true;
            }
            _ => {}
        }
        if has_epoch && has_cmp {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// R7: RNG draws in deterministic modules go through reserved keyed streams.
// ---------------------------------------------------------------------------

/// SimRng draw methods (everything that consumes randomness; `stream` is the
/// derivation, not a draw).
const DRAWS: [&str; 16] = [
    "next_u64",
    "f64",
    "f64_range",
    "below",
    "below_usize",
    "range_u64",
    "bool",
    "gaussian",
    "normal",
    "exponential",
    "lognormal",
    "weibull",
    "pareto",
    "shuffle",
    "pick",
    "weighted_index",
];

#[derive(Clone, Copy, PartialEq)]
enum Origin {
    Root,
    Derived,
    Unknown,
}

fn rng_streams(
    files: &[Prepared],
    ws: &Workspace,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    for (f, d) in ws.fns.iter().enumerate() {
        let p = &files[d.file_ix];
        if !p.deterministic || p.class == FileClass::Test || d.in_test {
            continue;
        }
        let Some((open, close)) = d.body else {
            continue;
        };
        let locals = local_origins(p, open, close);
        let params = param_names(p, d, open);
        let code = &p.code;
        for i in open..close {
            if p.in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            let Some(name) = ident_at(code, i) else {
                continue;
            };
            if !DRAWS.contains(&name)
                || !punct_at(code, i.wrapping_sub(1), '.')
                || !punct_at(code, i + 1, '(')
            {
                continue;
            }
            let recv = receiver(code, i);
            if recv.derived {
                continue;
            }
            let flagged = match recv.base.as_deref() {
                Some("self") => recv.fields > 0,
                Some("SimRng") => true,
                Some(local) if !params.contains(&local.to_string()) => {
                    locals.get(local).copied().unwrap_or(Origin::Unknown) == Origin::Root
                }
                _ => false,
            };
            if !flagged {
                continue;
            }
            push_checked(
                p,
                Finding {
                    rule: "rng-stream",
                    file: p.display.clone(),
                    line: code[i].line,
                    message: format!(
                        "ad-hoc `.{name}()` draw on a root RNG in a \
                         deterministic module — derive a reserved stream \
                         first (`rng.stream(streams::keyed(…))`) so the draw \
                         survives reordering and rebalances",
                    ),
                    chain: vec![format!("in {}", ws.label(files, f))],
                },
                findings,
                suppressed,
            );
        }
    }
}

struct Receiver {
    /// Leftmost element of the receiver chain (`self`, a local, `SimRng`
    /// for ctor chains), if recognizable.
    base: Option<String>,
    /// `.field` hops between the base and the draw.
    fields: usize,
    /// The chain passes through `.stream(…)`.
    derived: bool,
}

/// Classify the receiver chain of a `.draw(` at token `i` by walking
/// backwards over idents, field dots, and balanced `(...)`/`[...]` groups.
fn receiver(code: &[Token], i: usize) -> Receiver {
    let mut derived = false;
    let mut fields = 0usize;
    let mut base = None;
    let mut j = i.wrapping_sub(2); // before the `.`
    loop {
        match code.get(j).map(|t| &t.tok) {
            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => {
                let (openc, closec) = match code[j].tok {
                    Tok::Punct(')') => ('(', ')'),
                    _ => ('[', ']'),
                };
                let mut depth = 0i32;
                loop {
                    match code.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct(c)) if *c == closec => depth += 1,
                        Some(Tok::Punct(c)) if *c == openc => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        None => {
                            return Receiver {
                                base,
                                fields,
                                derived,
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        return Receiver {
                            base,
                            fields,
                            derived,
                        };
                    }
                    j -= 1;
                }
                if j == 0 {
                    return Receiver {
                        base,
                        fields,
                        derived,
                    };
                }
                j -= 1;
            }
            Some(Tok::Punct('?')) => {
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            Some(Tok::Ident(s)) => {
                if s == "stream" {
                    derived = true;
                }
                if j >= 2 && punct_at(code, j - 1, '.') {
                    fields += 1;
                    j -= 2;
                } else if j >= 2 && punct_at(code, j - 1, ':') && punct_at(code, j - 2, ':') {
                    // Path head (e.g. `SimRng::new(…)`): the path's first
                    // segment is the base.
                    let mut k = j;
                    while k >= 3
                        && punct_at(code, k - 1, ':')
                        && punct_at(code, k - 2, ':')
                        && ident_at(code, k - 3).is_some()
                    {
                        k -= 3;
                    }
                    base = ident_at(code, k).map(str::to_string);
                    break;
                } else {
                    base = Some(s.clone());
                    break;
                }
            }
            _ => break,
        }
    }
    Receiver {
        base,
        fields,
        derived,
    }
}

/// `let name = init;` classification: an initializer through `.stream(` is
/// Derived; one mentioning `SimRng` (ctor or clone of a root) is Root;
/// anything else Unknown (never flagged — conservative).
fn local_origins(p: &Prepared, open: usize, close: usize) -> HashMap<String, Origin> {
    let code = &p.code;
    let mut out = HashMap::new();
    let mut i = open;
    while i < close {
        if ident_at(code, i) != Some("let") {
            i += 1;
            continue;
        }
        let mut at = i + 1;
        if ident_at(code, at) == Some("mut") {
            at += 1;
        }
        let Some(name) = ident_at(code, at) else {
            i += 1;
            continue;
        };
        // Initializer runs to the statement's `;` at this brace depth.
        let mut j = at + 1;
        let mut depth = 0i32;
        let mut origin = Origin::Unknown;
        while j < close {
            match &code[j].tok {
                Tok::Punct('{') | Tok::Punct('(') => depth += 1,
                Tok::Punct('}') | Tok::Punct(')') => depth -= 1,
                Tok::Punct(';') if depth <= 0 => break,
                Tok::Ident(s) if s == "stream" && punct_at(code, j + 1, '(') => {
                    origin = Origin::Derived;
                }
                Tok::Ident(s) if s == "SimRng" && origin == Origin::Unknown => {
                    origin = Origin::Root;
                }
                _ => {}
            }
            j += 1;
        }
        if origin != Origin::Unknown {
            out.insert(name.to_string(), origin);
        }
        i = j;
    }
    out
}

/// Parameter names of the fn whose body opens at `open` (scan the signature
/// parens immediately before the body).
fn param_names(p: &Prepared, d: &FnDef, open: usize) -> Vec<String> {
    let code = &p.code;
    // Find the signature's `(`: first `(` after the fn keyword. The def line
    // gives us a bounded backwards search window.
    let mut start = open;
    while start > 0 && code[start].line >= d.line && ident_at(code, start) != Some("fn") {
        start -= 1;
    }
    let mut i = start;
    while i < open && !punct_at(code, i, '(') {
        i += 1;
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    while i < open {
        match &code[i].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(s) if depth == 1 && (s == "self" || punct_at(code, i + 1, ':')) => {
                out.push(s.clone());
            }
            _ => {}
        }
        i += 1;
    }
    out
}
