//! Fixed-point graph machinery for the deep pass: seed reachability with
//! witness chains, and cycle detection over the workspace lock graph.

use std::collections::{HashMap, VecDeque};

/// BFS from `seeds` over the *reverse* of `adj` (so: which nodes can reach a
/// seed through forward edges). Returns, per node, the forward next hop on a
/// shortest path toward a seed — `None` for unreachable nodes; seeds map to
/// themselves. Witness chains follow the hops.
pub fn next_hop_to_seeds(adj: &[Vec<usize>], seeds: &[bool]) -> Vec<Option<usize>> {
    let n = adj.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, outs) in adj.iter().enumerate() {
        for &v in outs {
            rev[v].push(u);
        }
    }
    let mut hop: Vec<Option<usize>> = vec![None; n];
    let mut q = VecDeque::new();
    for (s, &is_seed) in seeds.iter().enumerate() {
        if is_seed {
            hop[s] = Some(s);
            q.push_back(s);
        }
    }
    while let Some(v) = q.pop_front() {
        for &u in &rev[v] {
            if hop[u].is_none() {
                hop[u] = Some(v);
                q.push_back(u);
            }
        }
    }
    hop
}

/// Walk the next-hop chain from `start` down to its seed (inclusive), capped
/// defensively.
pub fn chain_to_seed(hop: &[Option<usize>], start: usize) -> Vec<usize> {
    let mut out = vec![start];
    let mut cur = start;
    while let Some(next) = hop[cur] {
        if next == cur || out.len() > 64 {
            break;
        }
        out.push(next);
        cur = next;
    }
    out
}

/// Provenance of one lock-order edge in the global graph.
#[derive(Clone, Debug)]
pub struct EdgeInfo {
    pub file: String,
    pub line: u32,
    /// Human description of where the edge comes from: the acquiring
    /// function, plus the call path when the second lock is taken in a
    /// callee.
    pub via: String,
    /// Both locks taken in the same function body (the pairwise rule's
    /// domain) rather than through a call.
    pub intra: bool,
}

/// Directed graph over interned lock names.
#[derive(Default)]
pub struct LockGraph {
    names: Vec<String>,
    ids: HashMap<String, usize>,
    /// First observation wins per (from, to); deterministic because edges are
    /// inserted in sorted file order.
    pub edges: HashMap<(usize, usize), EdgeInfo>,
}

impl LockGraph {
    pub fn intern(&mut self, name: &str) -> usize {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len();
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    pub fn add_edge(&mut self, from: usize, to: usize, info: EdgeInfo) {
        if from == to {
            return;
        }
        self.edges.entry((from, to)).or_insert(info);
    }

    /// Every elementary cycle's node list is expensive; for a lint we want
    /// one witness per strongly connected component. Tarjan SCC, then a DFS
    /// inside each non-trivial component from its smallest node id.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let n = self.names.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(f, t) in self.edges.keys() {
            adj[f].push(t);
        }
        for outs in &mut adj {
            outs.sort_unstable();
        }
        let sccs = tarjan(n, &adj);
        let mut out = Vec::new();
        for scc in sccs {
            if scc.len() < 2 {
                continue;
            }
            let mut members = scc.clone();
            members.sort_unstable();
            if let Some(cycle) = witness_cycle(members[0], &members, &adj) {
                out.push(cycle);
            }
        }
        out.sort();
        out
    }
}

fn tarjan(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    // Iterative Tarjan to keep the lint stack-safe on big graphs.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new(); // (node, next child ix)
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call.push((start, 0));
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// A concrete cycle through `start` staying inside `members` (sorted):
/// backtracking DFS, exponential in the worst case but lock graphs are tiny
/// and an SCC guarantees a cycle exists.
fn witness_cycle(start: usize, members: &[usize], adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let mut path = vec![start];
    let mut iters = vec![0usize];
    while let Some(&cur) = path.last() {
        let i = iters.last_mut()?;
        if let Some(&w) = adj[cur].get(*i) {
            *i += 1;
            if w == start && path.len() > 1 {
                return Some(path);
            }
            if members.binary_search(&w).is_ok() && !path.contains(&w) {
                path.push(w);
                iters.push(0);
            }
        } else {
            path.pop();
            iters.pop();
        }
    }
    None
}
