//! A minimal Rust lexer for rule scanning.
//!
//! The build environment has no crates.io access, so there is no `syn`; the
//! rules in this crate only need a faithful *token* view of a source file —
//! identifiers, punctuation, literals and comments with line numbers — plus
//! enough lexical care that nothing inside strings or comments is ever
//! mistaken for code. Nested block comments, raw strings (`r#"…"#`), byte
//! strings, char literals and lifetimes are all handled.

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including raw identifiers, without the `r#`).
    Ident(String),
    /// Single punctuation character. Multi-char operators arrive as a
    /// sequence of these (`==` is two `=` tokens).
    Punct(char),
    /// Any literal: string, raw string, byte string, char or number. The
    /// content is irrelevant to every rule, only its presence matters.
    Literal,
    /// `// …` comment, text without the slashes. Doc comments included.
    LineComment(String),
    /// `/* … */` comment (possibly nested), raw inner text.
    BlockComment(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Tokenize `src`. Unterminated constructs consume to end of input rather
/// than erroring: the linter must degrade gracefully on any file it meets.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string();
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    // Consume only the `b`; `raw_string` expects to start at
                    // the `r`. (Bumping both here made `raw_string` eat the
                    // opening quote as if it were the `r`, so `br#"…"#`
                    // mis-counted its hashes and terminated at the first
                    // interior quote — string contents leaked out as code
                    // tokens and fabricated call-graph edges.)
                    self.bump();
                    self.raw_string(line);
                }
                'r' if self.peek(1) == Some('"') => self.raw_string(line),
                'r' if self.peek(1) == Some('#') => {
                    // `r#"…"#` is a raw string; `r#ident` is a raw identifier.
                    let mut k = 1;
                    while self.peek(k) == Some('#') {
                        k += 1;
                    }
                    if self.peek(k) == Some('"') {
                        self.raw_string(line);
                    } else {
                        self.bump();
                        self.bump();
                        self.ident(line);
                    }
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::LineComment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(Tok::BlockComment(text), line);
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(Tok::Literal, line);
    }

    fn raw_string(&mut self, line: u32) {
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Tok::Literal, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening quote
        match (self.peek(0), self.peek(1)) {
            // `'\…'` escape: always a char literal.
            (Some('\\'), _) => {
                self.bump();
                self.bump(); // escape head (enough for \n, \', \u{..} handled below)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Literal, line);
            }
            // `'x'` char literal vs `'x` lifetime: decided by the closing quote.
            (Some(c), Some('\'')) if c != '\'' => {
                self.bump();
                self.bump();
                self.push(Tok::Literal, line);
            }
            _ => {
                // Lifetime: consume the identifier, no closing quote.
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(Tok::Punct('\''), line);
            }
        }
    }

    fn number(&mut self, line: u32) {
        // Digits, underscores, radix prefixes, type suffixes; one fractional
        // dot when followed by a digit (so `0..10` stays two range dots);
        // exponent with optional sign.
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                let at_exp = matches!(c, 'e' | 'E');
                self.bump();
                if at_exp
                    && matches!(self.peek(0), Some('+' | '-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    self.bump();
                }
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Literal, line);
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(name), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("foo.bar();\nbaz!");
        assert_eq!(toks[0].tok, Tok::Ident("foo".into()));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[5].tok, Tok::Punct(';'));
        assert_eq!(toks[6].tok, Tok::Ident("baz".into()));
        assert_eq!(toks[6].line, 2);
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "a.unwrap() // not a comment";"#);
        assert!(toks.contains(&Tok::Literal));
        assert!(!toks.contains(&Tok::Ident("unwrap".into())));
        assert!(!toks
            .iter()
            .any(|t| matches!(t, Tok::LineComment(_) | Tok::BlockComment(_))));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"# ; x"###);
        assert!(toks.contains(&Tok::Ident("x".into())));
        assert_eq!(
            toks.iter().filter(|t| **t == Tok::Literal).count(),
            1,
            "one raw string literal"
        );
    }

    #[test]
    fn byte_raw_strings_with_hashes() {
        // Regression: the `br` prefix used to be double-consumed, so the
        // hash count came out wrong and the literal terminated at the first
        // interior quote, leaking string contents as code tokens.
        let toks = kinds(r###"let s = br#"quote " inside"# ; x"###);
        assert!(toks.contains(&Tok::Ident("x".into())));
        assert_eq!(
            toks.iter().filter(|t| **t == Tok::Literal).count(),
            1,
            "one byte raw string literal"
        );
        assert!(
            !toks.contains(&Tok::Ident("quote".into())),
            "string contents must not leak as idents"
        );
        let plain = kinds(r#"let b = br"plain"; y"#);
        assert!(plain.contains(&Tok::Ident("y".into())));
        assert_eq!(plain.iter().filter(|t| **t == Tok::Literal).count(), 1);
    }

    #[test]
    fn unterminated_nested_comment_degrades() {
        let toks = kinds("/* outer /* inner */ never closed");
        assert_eq!(toks.len(), 1);
        assert!(matches!(toks[0], Tok::BlockComment(_)));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ code");
        assert_eq!(toks.len(), 2);
        assert!(matches!(toks[0], Tok::BlockComment(_)));
        assert_eq!(toks[1], Tok::Ident("code".into()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| **t == Tok::Punct('\'')).count(),
            2,
            "two lifetime markers"
        );
        assert_eq!(
            toks.iter().filter(|t| **t == Tok::Literal).count(),
            2,
            "two char literals"
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-3; }");
        assert_eq!(
            toks.iter().filter(|t| **t == Tok::Punct('.')).count(),
            2,
            "range dots survive"
        );
    }

    #[test]
    fn comments_capture_text() {
        let toks = lex("// lint: allow(panic, reason = \"x\")\nfoo");
        match &toks[0].tok {
            Tok::LineComment(text) => assert!(text.contains("lint: allow")),
            other => unreachable!("expected comment, got {other:?}"),
        }
    }
}
