//! CLI for pilot-lint.
//!
//! ```text
//! cargo run -p pilot-lint                       # lint the workspace (deep)
//! cargo run -p pilot-lint -- --format json      # machine-readable output
//! cargo run -p pilot-lint -- --root path/to/ws  # explicit workspace root
//! cargo run -p pilot-lint -- a.rs b.rs          # lint files as library code
//! cargo run -p pilot-lint -- --deep a.rs b.rs   # files + call-graph pass
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut deep = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("human") => json = false,
                other => {
                    eprintln!("pilot-lint: --format expects `json` or `human`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("pilot-lint: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            "--deep" => deep = true,
            "--help" | "-h" => {
                println!(
                    "usage: pilot-lint [--format json|human] [--root DIR] [--deep] [FILES…]\n\
                     Lints the workspace (or FILES, as library code) for the\n\
                     pilot-abstraction invariants. Workspace runs include the\n\
                     interprocedural call-graph pass; pass --deep to run it on\n\
                     explicit FILES too. See DESIGN.md."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("pilot-lint: unknown flag {arg}");
                return ExitCode::from(2);
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }

    let report = if files.is_empty() {
        let root = root
            .or_else(|| {
                let cwd = env::current_dir().ok()?;
                pilot_lint::find_workspace_root(&cwd)
            })
            .unwrap_or_else(|| PathBuf::from("."));
        pilot_lint::lint_workspace(&root)
    } else if deep {
        pilot_lint::lint_paths_deep(&files)
    } else {
        pilot_lint::lint_paths(&files)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pilot-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", pilot_lint::render_json(&report));
    } else {
        print!("{}", pilot_lint::render_human(&report));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
