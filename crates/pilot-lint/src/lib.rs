//! pilot-lint: workspace-aware static analysis for pilot-abstraction
//! invariants.
//!
//! The simulated backend's claims (determinism under a fixed seed, legal
//! P* state transitions, panic-free library crates) are enforced here as
//! five syntactic rules — see [`rules`] for the table and DESIGN.md
//! ("Enforced invariants") for the rationale. Run it with
//! `cargo run -p pilot-lint`; suppress a single finding with
//! `// lint: allow(<rule>, reason = "…")` on the same line or the line
//! above.

pub mod callgraph;
pub mod deep;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod taint;

pub use callgraph::GraphStats;
pub use rules::{FileClass, Finding};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregate result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// Findings silenced by a well-formed `lint: allow`.
    pub suppressed: usize,
    /// Call-graph size and resolution counters when the deep pass ran.
    pub graph: Option<GraphStats>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lint every `.rs` file under `root`, excluding `target/`, `.git/`,
/// `shims/` (vendored third-party stand-ins we do not own) and lint test
/// fixtures (which are violations on purpose).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let sources = files
        .iter()
        .map(|p| {
            let display = p
                .strip_prefix(root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            let class = classify(&display);
            (display, class, p.clone())
        })
        .collect::<Vec<_>>();
    lint_files(&sources, true)
}

/// Lint an explicit set of files, treating each as library code (so that
/// fixture files exercise every rule regardless of where they live).
/// Per-file rules only; see [`lint_paths_deep`] for the interprocedural pass.
pub fn lint_paths(paths: &[PathBuf]) -> io::Result<Report> {
    lint_files(&explicit_sources(paths), false)
}

/// Lint an explicit set of files as one miniature workspace: per-file rules
/// *plus* the call-graph pass. This is how the deep-rule fixtures run.
pub fn lint_paths_deep(paths: &[PathBuf]) -> io::Result<Report> {
    lint_files(&explicit_sources(paths), true)
}

fn explicit_sources(paths: &[PathBuf]) -> Vec<(String, FileClass, PathBuf)> {
    paths
        .iter()
        .map(|p| {
            (
                p.to_string_lossy().into_owned(),
                FileClass::Library,
                p.clone(),
            )
        })
        .collect()
}

fn lint_files(sources: &[(String, FileClass, PathBuf)], deep: bool) -> io::Result<Report> {
    let mut report = Report::default();
    let mut orders = Vec::new();
    let mut prepared = Vec::new();
    for (display, class, path) in sources {
        let src = fs::read_to_string(path)?;
        prepared.push(rules::prepare(display, *class, &src));
    }
    for p in &prepared {
        let mut file = rules::lint_prepared(p);
        report.files += 1;
        report.suppressed += file.suppressed;
        report.findings.append(&mut file.findings);
        orders.append(&mut file.lock_orders);
    }
    report.findings.extend(rules::check_lock_orders(&orders));
    if deep {
        let mut d = deep::analyze(&prepared);
        report.suppressed += d.suppressed;
        report.findings.append(&mut d.findings);
        report.graph = Some(d.stats);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "fixtures") {
                continue;
            }
            // `shims/` holds vendored stand-ins for crates.io deps; not ours.
            if path.parent() == Some(root) && name == "shims" {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Decide which rule set applies from the workspace-relative path.
pub fn classify(display: &str) -> FileClass {
    let parts: Vec<&str> = display.split('/').collect();
    if parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"))
    {
        return FileClass::Test;
    }
    if display.ends_with("src/main.rs") || parts.contains(&"bin") {
        return FileClass::Binary;
    }
    FileClass::Library
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Render findings for humans: one line each, witness chains indented under
/// interprocedural findings, plus a summary (and graph stats when the deep
/// pass ran).
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
        for (i, hop) in f.chain.iter().enumerate() {
            out.push_str(&format!(
                "    {} {hop}\n",
                if i == 0 { "via" } else { " ->" }
            ));
        }
    }
    out.push_str(&format!(
        "pilot-lint: {} file(s), {} finding(s), {} suppressed\n",
        report.files,
        report.findings.len(),
        report.suppressed
    ));
    if let Some(g) = &report.graph {
        out.push_str(&format!(
            "call graph: {} fn(s), {} call site(s), {} edge(s); resolved \
             {} exact / {} suffix / {} typed / {} method, {} unresolved\n",
            g.functions,
            g.call_sites,
            g.edges,
            g.resolved_exact,
            g.resolved_suffix,
            g.resolved_typed,
            g.resolved_method,
            g.unresolved
        ));
    }
    out
}

/// Render the report as JSON (hand-rolled; no serde in this environment).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let chain = f
            .chain
            .iter()
            .map(|c| json_str(c))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{},\"chain\":[{chain}]}}",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str(&format!(
        "],\"files\":{},\"suppressed\":{}",
        report.files, report.suppressed
    ));
    if let Some(g) = &report.graph {
        out.push_str(&format!(
            ",\"graph\":{{\"functions\":{},\"call_sites\":{},\"edges\":{},\
             \"resolved_exact\":{},\"resolved_suffix\":{},\"resolved_typed\":{},\
             \"resolved_method\":{},\"unresolved\":{}}}",
            g.functions,
            g.call_sites,
            g.edges,
            g.resolved_exact,
            g.resolved_suffix,
            g.resolved_typed,
            g.resolved_method,
            g.unresolved
        ));
    }
    out.push_str(&format!(",\"clean\":{}}}", report.is_clean()));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
