//! The five pilot-abstraction invariant rules, run over a token stream.
//!
//! | rule              | invariant                                                           |
//! |-------------------|---------------------------------------------------------------------|
//! | `panic`           | R1: no `unwrap()`/`expect()`/`panic!` in non-test library code      |
//! | `wall-clock`      | R2: no `Instant::now`/`SystemTime::now`/`thread::sleep` in sim paths|
//! |                   |     or modules tagged `// lint: deterministic`                      |
//! | `state-mutation`  | R3: no direct `…state = UnitState::…`/`PilotState::…` stores        |
//! |                   |     outside `state.rs`'s transition functions                       |
//! | `lock-discipline` | R4: no lock guard held across a channel `send`/`recv`; consistent   |
//! |                   |     acquisition order for named mutexes                             |
//! | `debug-macro`     | R5: `todo!`/`dbg!`/`unimplemented!` never committed                 |
//!
//! Every rule is a syntactic approximation — deliberately so: it must run
//! with zero dependencies and in milliseconds over the workspace. Findings
//! can be silenced, one line at a time, with
//! `// lint: allow(<rule>, reason = "…")`; the reason is mandatory and a
//! malformed suppression is itself a finding (rule `suppression`).

use crate::lexer::{lex, Tok, Token};
use std::collections::HashMap;

/// What kind of file is being linted; decides which rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`crates/*/src/**`): all rules.
    Library,
    /// Binary targets (`src/main.rs`, `src/bin/**`): R1/R3/R4 exempt (a CLI
    /// may panic at top level), R2 and R5 still apply.
    Binary,
    /// Tests, benches, examples, fixtures: only R5 applies.
    Test,
}

/// One rule violation (or malformed suppression).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name (`panic`, `wall-clock`, …, `suppression`).
    pub rule: &'static str,
    /// Display path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// For interprocedural findings: the witness call chain from the flagged
    /// function down to the primitive that grounds the finding, rendered as
    /// `qualified::fn (file:line)` entries. Empty for per-file findings.
    pub chain: Vec<String>,
}

impl Finding {
    pub(crate) fn new(rule: &'static str, file: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
            chain: Vec::new(),
        }
    }
}

/// A `lock A then B` observation, combined across files for the
/// acquisition-order half of R4.
#[derive(Clone, Debug)]
pub struct LockOrder {
    pub first: String,
    pub second: String,
    pub file: String,
    pub line: u32,
    /// Whether a suppression for `lock-discipline` covers this site.
    pub suppressed: bool,
}

/// Per-file analysis output.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
    pub lock_orders: Vec<LockOrder>,
}

/// Every rule name `lint: allow(…)` may reference: the five per-file rules
/// plus the five interprocedural rules run by the deep pass (see `deep.rs`).
const RULES: [&str; 10] = [
    "panic",
    "wall-clock",
    "state-mutation",
    "lock-discipline",
    "debug-macro",
    "panic-reach",
    "wall-clock-reach",
    "lock-cycle",
    "fence-discipline",
    "rng-stream",
];

pub(crate) struct Allow {
    pub(crate) rule: String,
    pub(crate) has_reason: bool,
}

/// A file lexed and classified once, shared by the per-file rules and the
/// interprocedural pass so nothing is tokenized twice.
pub struct Prepared {
    pub display: String,
    pub class: FileClass,
    /// Code tokens only — comments already stripped.
    pub code: Vec<Token>,
    /// Per code-token flag: inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// File carries a `// lint: deterministic` tag (or lives under a
    /// sim-only path).
    pub deterministic: bool,
    pub(crate) allows: HashMap<u32, Vec<Allow>>,
    /// Malformed-suppression findings discovered while parsing directives.
    pub(crate) suppression_findings: Vec<Finding>,
}

impl Prepared {
    /// Whether a valid suppression for `rule` covers `line`.
    pub(crate) fn allowed(&self, line: u32, rule: &str) -> bool {
        is_allowed(&self.allows, line, rule)
    }
}

/// Lex and classify one file: parse lint directives, strip comments, mark
/// test regions. The result feeds both [`lint_prepared`] and the deep pass.
pub fn prepare(display_path: &str, class: FileClass, src: &str) -> Prepared {
    let tokens = lex(src);
    let mut allows: HashMap<u32, Vec<Allow>> = HashMap::new();
    let mut deterministic = false;
    let mut suppression_findings = Vec::new();

    for t in &tokens {
        let text = match &t.tok {
            Tok::LineComment(c) | Tok::BlockComment(c) => c,
            _ => continue,
        };
        // Only comments that *start* with `lint:` are directives; prose that
        // merely mentions the syntax (docs, this file) is not.
        let text = text.trim_start();
        if !text.starts_with("lint:") {
            continue;
        }
        if text.starts_with("lint: deterministic") {
            deterministic = true;
        }
        parse_allows(
            text,
            t.line,
            display_path,
            &mut allows,
            &mut suppression_findings,
        );
    }

    // Comments out of the way: rules see only code tokens.
    let code: Vec<Token> = tokens
        .into_iter()
        .filter(|t| !matches!(t.tok, Tok::LineComment(_) | Tok::BlockComment(_)))
        .collect();
    let in_test = test_regions(&code);
    deterministic |= display_path.contains("pilot-core/src/sim");
    Prepared {
        display: display_path.to_string(),
        class,
        code,
        in_test,
        deterministic,
        allows,
        suppression_findings,
    }
}

/// Run the per-file rules over a prepared file.
pub fn lint_prepared(p: &Prepared) -> FileReport {
    let mut report = FileReport {
        findings: p.suppression_findings.clone(),
        ..FileReport::default()
    };
    let display_path = p.display.as_str();
    let is_state_rs = display_path.ends_with("/state.rs") || display_path == "state.rs";

    let mut raw: Vec<Finding> = Vec::new();
    scan_calls(display_path, p.class, &p.code, &p.in_test, &mut raw);
    if p.deterministic {
        scan_wall_clock(display_path, &p.code, &p.in_test, &mut raw);
    }
    if p.class == FileClass::Library && !is_state_rs {
        scan_state_mutation(display_path, &p.code, &p.in_test, &mut raw);
    }
    let mut orders = Vec::new();
    if p.class == FileClass::Library {
        scan_locks(display_path, &p.code, &p.in_test, &mut raw, &mut orders);
    }

    for f in raw {
        if p.allowed(f.line, f.rule) {
            report.suppressed += 1;
        } else {
            report.findings.push(f);
        }
    }
    for mut o in orders {
        o.suppressed = p.allowed(o.line, "lock-discipline");
        report.lock_orders.push(o);
    }
    report
}

/// Lint one file's source text (per-file rules only).
pub fn lint_source(display_path: &str, class: FileClass, src: &str) -> FileReport {
    lint_prepared(&prepare(display_path, class, src))
}

fn is_allowed(allows: &HashMap<u32, Vec<Allow>>, line: u32, rule: &str) -> bool {
    [line, line.saturating_sub(1)].iter().any(|l| {
        allows
            .get(l)
            .is_some_and(|v| v.iter().any(|a| a.rule == rule && a.has_reason))
    })
}

/// Parse every `lint: allow(rule, reason = "…")` in a comment. A missing or
/// empty reason, or an unknown rule name, is reported as a `suppression`
/// finding so that sloppy annotations cannot silently rot.
fn parse_allows(
    text: &str,
    line: u32,
    path: &str,
    allows: &mut HashMap<u32, Vec<Allow>>,
    findings: &mut Vec<Finding>,
) {
    let mut rest = text;
    while let Some(at) = rest.find("lint: allow(") {
        rest = &rest[at + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            findings.push(Finding::new(
                "suppression",
                path,
                line,
                "unterminated `lint: allow(` suppression".to_string(),
            ));
            return;
        };
        let inner = &rest[..close];
        rest = &rest[close + 1..];
        let rule = inner
            .split(',')
            .next()
            .unwrap_or_default()
            .trim()
            .to_string();
        if !RULES.contains(&rule.as_str()) {
            findings.push(Finding::new(
                "suppression",
                path,
                line,
                format!("`lint: allow({rule}, …)` names an unknown rule"),
            ));
            continue;
        }
        let has_reason = inner
            .split_once("reason")
            .and_then(|(_, r)| r.split_once('"'))
            .and_then(|(_, r)| r.split('"').next())
            .is_some_and(|r| !r.trim().is_empty());
        if !has_reason {
            findings.push(Finding::new(
                "suppression",
                path,
                line,
                format!(
                    "`lint: allow({rule})` without a reason — write \
                     `lint: allow({rule}, reason = \"…\")`"
                ),
            ));
        }
        allows
            .entry(line)
            .or_default()
            .push(Allow { rule, has_reason });
    }
}

/// Mark which code-token indices sit inside a `#[cfg(test)]` item.
pub(crate) fn test_regions(code: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if !is_cfg_test_attr(code, i) {
            i += 1;
            continue;
        }
        // Skip to the end of the attribute's `]`.
        let mut j = i + 1;
        let mut brackets = 0i32;
        while j < code.len() {
            match code[j].tok {
                Tok::Punct('[') => brackets += 1,
                Tok::Punct(']') => {
                    brackets -= 1;
                    if brackets == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // The attached item runs to its matching `}` (or to `;` for a
        // brace-less item).
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut opened = false;
        while k < code.len() {
            match code[k].tok {
                Tok::Punct('{') => {
                    depth += 1;
                    opened = true;
                }
                Tok::Punct('}') => {
                    depth -= 1;
                    if opened && depth == 0 {
                        break;
                    }
                }
                Tok::Punct(';') if !opened => break,
                _ => {}
            }
            k += 1;
        }
        for flag in in_test.iter_mut().take((k + 1).min(code.len())).skip(i) {
            *flag = true;
        }
        i = k + 1;
    }
    in_test
}

fn is_cfg_test_attr(code: &[Token], i: usize) -> bool {
    if code[i].tok != Tok::Punct('#') {
        return false;
    }
    let mut j = i + 1;
    if !matches!(code.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
        return false;
    }
    j += 1;
    if !matches!(code.get(j).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "cfg") {
        return false;
    }
    // Accept `test` anywhere inside the cfg predicate (`all(test, …)` too).
    let mut brackets = 1i32;
    while let Some(t) = code.get(j) {
        match &t.tok {
            Tok::Punct('[') => brackets += 1,
            Tok::Punct(']') => {
                brackets -= 1;
                if brackets == 0 {
                    return false;
                }
            }
            Tok::Ident(s) if s == "test" => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

pub(crate) fn ident_at(code: &[Token], i: usize) -> Option<&str> {
    match code.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn punct_at(code: &[Token], i: usize, c: char) -> bool {
    matches!(code.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Name the lock behind a `.lock()`/`.read()`/`.write()` at token `i` (the
/// method ident): the field or variable the receiver chain ends in, walking
/// back over one index expression, so `t.append_locks[p].lock()` names
/// `append_locks` rather than `<expr>`.
pub(crate) fn lockee_name(code: &[Token], i: usize) -> String {
    if i < 2 {
        return "<expr>".to_string();
    }
    let mut j = i - 2; // token before the `.`
    if punct_at(code, j, ']') {
        // Walk back over the balanced `[…]` to the indexed expression.
        let mut depth = 0i32;
        loop {
            match code.get(j).map(|t| &t.tok) {
                Some(Tok::Punct(']')) => depth += 1,
                Some(Tok::Punct('[')) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                None => return "<expr>".to_string(),
                _ => {}
            }
            if j == 0 {
                return "<expr>".to_string();
            }
            j -= 1;
        }
        if j == 0 {
            return "<expr>".to_string();
        }
        j -= 1;
    }
    ident_at(code, j).unwrap_or("<expr>").to_string()
}

/// R1 (`panic`) and R5 (`debug-macro`) in one pass.
fn scan_calls(
    path: &str,
    class: FileClass,
    code: &[Token],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    for i in 0..code.len() {
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        let line = code[i].line;
        // R5 applies everywhere, tests included: these macros never ship.
        if matches!(name, "todo" | "unimplemented" | "dbg") && punct_at(code, i + 1, '!') {
            out.push(Finding::new(
                "debug-macro",
                path,
                line,
                format!("`{name}!` must not be committed"),
            ));
            continue;
        }
        if class != FileClass::Library || in_test[i] {
            continue;
        }
        if matches!(name, "unwrap" | "expect")
            && i > 0
            && punct_at(code, i - 1, '.')
            && punct_at(code, i + 1, '(')
        {
            out.push(Finding::new(
                "panic",
                path,
                line,
                format!(
                    "`.{name}()` in library code — return an error or add \
                     `lint: allow(panic, reason = \"…\")`"
                ),
            ));
        } else if name == "panic" && punct_at(code, i + 1, '!') {
            out.push(Finding::new(
                "panic",
                path,
                line,
                "`panic!` in library code".to_string(),
            ));
        }
    }
}

/// R2: wall-clock reads in deterministic code.
fn scan_wall_clock(path: &str, code: &[Token], in_test: &[bool], out: &mut Vec<Finding>) {
    const BANNED: [(&str, &str); 4] = [
        ("Instant", "now"),
        ("SystemTime", "now"),
        ("thread", "sleep"),
        ("WallClock", "start"),
    ];
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        let Some(a) = ident_at(code, i) else {
            continue;
        };
        if !punct_at(code, i + 1, ':') || !punct_at(code, i + 2, ':') {
            continue;
        }
        let Some(b) = ident_at(code, i + 3) else {
            continue;
        };
        if BANNED.contains(&(a, b)) {
            out.push(Finding::new(
                "wall-clock",
                path,
                code[i].line,
                format!(
                    "`{a}::{b}` in a deterministic module — route through the \
                     sim clock (virtual time) instead"
                ),
            ));
        }
    }
}

/// R3: direct stores of a state-machine constant into a `.state` field.
fn scan_state_mutation(path: &str, code: &[Token], in_test: &[bool], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if in_test[i] || !punct_at(code, i, '.') {
            continue;
        }
        if ident_at(code, i + 1) != Some("state") || !punct_at(code, i + 2, '=') {
            continue;
        }
        if punct_at(code, i + 3, '=') {
            continue; // `.state ==` comparison
        }
        // Scan the right-hand side for a UnitState/PilotState constant.
        let mut j = i + 3;
        while j < code.len() && !punct_at(code, j, ';') {
            if matches!(ident_at(code, j), Some("UnitState" | "PilotState"))
                && punct_at(code, j + 1, ':')
                && punct_at(code, j + 2, ':')
            {
                out.push(Finding::new(
                    "state-mutation",
                    path,
                    code[i + 1].line,
                    format!(
                        "direct `.state = {}::…` store — use the transition \
                         functions in pilot-core's state.rs",
                        ident_at(code, j).unwrap_or_default()
                    ),
                ));
                break;
            }
            j += 1;
        }
    }
}

struct Guard {
    var: Option<String>,
    lockee: String,
    line: u32,
    /// Block-stack depth the guard was declared at.
    depth: usize,
}

/// R4: guard-across-send within a function, plus lock-order observations.
fn scan_locks(
    path: &str,
    code: &[Token],
    in_test: &[bool],
    out: &mut Vec<Finding>,
    orders: &mut Vec<LockOrder>,
) {
    let mut i = 0;
    while i < code.len() {
        // A function item: `fn name … {`. (`fn(` is a pointer type.)
        if !in_test[i] && ident_at(code, i) == Some("fn") && ident_at(code, i + 1).is_some() {
            // Find the body's opening brace; a `;` first means a trait decl.
            let mut j = i + 2;
            let mut body = None;
            while j < code.len() {
                match code[j].tok {
                    Tok::Punct('{') => {
                        body = Some(j);
                        break;
                    }
                    Tok::Punct(';') => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body {
                i = scan_fn_body(path, code, open, out, orders);
                continue;
            }
        }
        i += 1;
    }
}

/// Walk one function body; returns the index just past its closing brace.
fn scan_fn_body(
    path: &str,
    code: &[Token],
    open: usize,
    out: &mut Vec<Finding>,
    orders: &mut Vec<LockOrder>,
) -> usize {
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    // `let <name> = … .lock()` binding being built for the current statement.
    let mut pending_let: Option<String> = None;
    let mut stmt_locked: Option<String> = None;
    let mut i = open;
    while i < code.len() {
        match &code[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
                guards.retain(|g| g.depth <= depth);
                stmt_locked = None;
            }
            Tok::Punct(';') => {
                pending_let = None;
                stmt_locked = None;
            }
            Tok::Ident(name) => {
                let line = code[i].line;
                match name.as_str() {
                    "let" => {
                        if let Some(n) = ident_at(code, i + 1) {
                            let n = if n == "mut" {
                                ident_at(code, i + 2).unwrap_or(n)
                            } else {
                                n
                            };
                            pending_let = Some(n.to_string());
                        }
                    }
                    "drop" if punct_at(code, i + 1, '(') => {
                        if let Some(v) = ident_at(code, i + 2) {
                            guards.retain(|g| g.var.as_deref() != Some(v));
                        }
                    }
                    "lock" | "read" | "write"
                        if i > 0
                            && punct_at(code, i - 1, '.')
                            && punct_at(code, i + 1, '(')
                            && punct_at(code, i + 2, ')') =>
                    {
                        let lockee = lockee_name(code, i);
                        for g in &guards {
                            if g.lockee != lockee {
                                orders.push(LockOrder {
                                    first: g.lockee.clone(),
                                    second: lockee.clone(),
                                    file: path.to_string(),
                                    line,
                                    suppressed: false,
                                });
                            }
                        }
                        if let Some(var) = pending_let.clone() {
                            guards.push(Guard {
                                var: Some(var),
                                lockee,
                                line,
                                depth,
                            });
                        } else {
                            stmt_locked = Some(lockee);
                        }
                    }
                    "send" | "recv" | "try_send" | "try_recv" | "send_timeout" | "recv_timeout"
                        if i > 0 && punct_at(code, i - 1, '.') && punct_at(code, i + 1, '(') =>
                    {
                        let held = guards
                            .last()
                            .map(|g| (g.lockee.clone(), g.line))
                            .or_else(|| stmt_locked.clone().map(|l| (l, line)));
                        if let Some((lockee, at)) = held {
                            out.push(Finding::new(
                                "lock-discipline",
                                path,
                                line,
                                format!(
                                    "channel `{name}` while the `{lockee}` lock guard \
                                     (taken on line {at}) is still held — drop the \
                                     guard first (scoped drop)"
                                ),
                            ));
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Combine per-file lock-order observations: a pair locked as `a then b` in
/// one place and `b then a` in another is a deadlock-shaped inconsistency.
pub fn check_lock_orders(orders: &[LockOrder]) -> Vec<Finding> {
    let mut seen: HashMap<(String, String), &LockOrder> = HashMap::new();
    let mut out = Vec::new();
    for o in orders {
        seen.entry((o.first.clone(), o.second.clone())).or_insert(o);
    }
    for o in orders {
        if o.suppressed {
            continue;
        }
        if let Some(rev) = seen.get(&(o.second.clone(), o.first.clone())) {
            if rev.suppressed {
                continue;
            }
            out.push(Finding::new(
                "lock-discipline",
                &o.file,
                o.line,
                format!(
                    "inconsistent lock order: `{}` then `{}` here, but the \
                     reverse at {}:{}",
                    o.first, o.second, rev.file, rev.line
                ),
            ));
        }
    }
    out
}
