//! # pilot-memory — in-memory runtime for iterative processing
//!
//! Implements the Pilot-Memory extension (\[68\] in the paper): iterative
//! applications (model training, K-Means) read the same dataset every
//! iteration, so re-staging it from storage each time dominates runtime. This
//! crate provides:
//!
//! - [`CacheManager`] — partition-grained caching over an expensive
//!   [`PartitionSource`], with LRU eviction under a capacity bound and
//!   hit/load statistics (the instrument for EXP PM-1);
//! - [`IterativeExecutor`] — drives `iterations × partitions` compute units
//!   through a `pilot_core::thread::ThreadPilotService`, broadcasting shared
//!   state (e.g. centroids) each round and reducing per-partition results,
//!   the BSP super-step structure of Table I's "Iterative" scenario.

pub mod cache;
pub mod iterate;

pub use cache::{CacheManager, CacheMode, CacheStats, PartitionSource, VecSource};
pub use iterate::{IterationStats, IterativeExecutor, IterativeOutcome};
