//! Iterative (BSP) execution on top of the pilot-abstraction: each iteration
//! fans one compute unit per partition onto the pilots, reduces the partial
//! results into new shared state, and repeats.

use crate::cache::CacheManager;
use pilot_core::describe::UnitDescription;
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskError, TaskOutput, ThreadPilotService};
use pilot_core::Parallelism;
use std::sync::Arc;
use std::time::Instant;

/// Per-iteration measurements.
#[derive(Clone, Copy, Debug)]
pub struct IterationStats {
    /// Which iteration (0-based).
    pub iteration: usize,
    /// Wall time of the superstep, seconds.
    pub wall_s: f64,
    /// Cache loads performed during this iteration.
    pub loads: u64,
    /// Cache hits during this iteration.
    pub hits: u64,
}

/// Result of an iterative run.
#[derive(Debug)]
pub struct IterativeOutcome<S> {
    /// Final state after the last iteration.
    pub state: S,
    /// Per-iteration measurements.
    pub iterations: Vec<IterationStats>,
    /// Units that failed (kernel errors); the iteration still reduces over
    /// the successful partials.
    pub failed_units: usize,
}

impl<S> IterativeOutcome<S> {
    /// Total wall time across iterations.
    pub fn total_wall_s(&self) -> f64 {
        self.iterations.iter().map(|i| i.wall_s).sum()
    }

    /// Mean wall time of iterations after the first (steady state —
    /// the first iteration pays cold-cache loads).
    pub fn steady_state_mean_s(&self) -> f64 {
        if self.iterations.len() < 2 {
            return self.iterations.first().map(|i| i.wall_s).unwrap_or(0.0);
        }
        let tail = &self.iterations[1..];
        tail.iter().map(|i| i.wall_s).sum::<f64>() / tail.len() as f64
    }
}

type StepFn<T, S, R> = Arc<dyn Fn(&[T], &S, &Parallelism) -> R + Send + Sync>;
type ReduceFn<S, R> = Arc<dyn Fn(Vec<R>, S) -> S + Send + Sync>;

/// Drives `step`/`reduce` supersteps over a cached dataset.
pub struct IterativeExecutor<T, S, R> {
    dataset: Arc<CacheManager<T>>,
    /// Per-partition computation: (partition data, broadcast state,
    /// intra-unit parallelism sized to the unit's reserved cores) → partial.
    step: StepFn<T, S, R>,
    /// Combine partials into the next state.
    reduce: ReduceFn<S, R>,
    /// Cores each per-partition unit reserves (drives the step's
    /// [`Parallelism`] handle).
    unit_cores: u32,
}

impl<T, S, R> IterativeExecutor<T, S, R>
where
    T: Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    R: Send + 'static,
{
    /// Build an executor. Units reserve one core each by default; see
    /// [`with_unit_cores`](IterativeExecutor::with_unit_cores).
    pub fn new(
        dataset: Arc<CacheManager<T>>,
        step: impl Fn(&[T], &S, &Parallelism) -> R + Send + Sync + 'static,
        reduce: impl Fn(Vec<R>, S) -> S + Send + Sync + 'static,
    ) -> Self {
        IterativeExecutor {
            dataset,
            step: Arc::new(step),
            reduce: Arc::new(reduce),
            unit_cores: 1,
        }
    }

    /// Reserve `cores` per unit: each per-partition kernel receives a
    /// [`Parallelism`] handle of exactly that width (clamped to >= 1), so
    /// intra-unit threads stay within what the scheduler accounted for.
    pub fn with_unit_cores(mut self, cores: u32) -> Self {
        self.unit_cores = cores.max(1);
        self
    }

    /// Run `iterations` supersteps on `svc`, starting from `state`.
    /// `stop` may terminate early (e.g. convergence); it sees the new state
    /// after each iteration.
    pub fn run(
        &self,
        svc: &ThreadPilotService,
        mut state: S,
        iterations: usize,
        mut stop: impl FnMut(&S, usize) -> bool,
    ) -> IterativeOutcome<S> {
        let mut stats = Vec::with_capacity(iterations);
        let mut failed_units = 0usize;
        for iteration in 0..iterations {
            let t0 = Instant::now();
            let before = self.dataset.stats();
            let n = self.dataset.num_partitions();
            let broadcast = state.clone();
            let units: Vec<_> = (0..n)
                .map(|p| {
                    let data = Arc::clone(&self.dataset);
                    let step = Arc::clone(&self.step);
                    let st = broadcast.clone();
                    svc.submit_unit(
                        UnitDescription::new(self.unit_cores).tagged("iter"),
                        kernel_fn(move |ctx| {
                            let par = Parallelism::from_ctx(ctx);
                            let part = data.get(p);
                            let partial = step(&part, &st, &par);
                            Ok(TaskOutput::of(Partial(Some(partial))))
                        }),
                    )
                })
                .collect();
            let mut partials = Vec::with_capacity(n);
            for u in units {
                // lint: allow(panic, reason = "unit ids come from submit_unit on the same service three lines up; wait_unit only returns None for unknown ids")
                let out = svc.wait_unit(u).expect("unit issued by this service");
                match out.state {
                    UnitState::Done => {
                        let partial = out
                            .output
                            .and_then(|r| r.ok())
                            .and_then(|o| o.downcast::<Partial<R>>().ok())
                            .and_then(|p| p.0);
                        if let Some(p) = partial {
                            partials.push(p);
                        } else {
                            failed_units += 1;
                        }
                    }
                    _ => failed_units += 1,
                }
            }
            state = (self.reduce)(partials, state);
            let after = self.dataset.stats();
            stats.push(IterationStats {
                iteration,
                wall_s: t0.elapsed().as_secs_f64(),
                loads: after.loads - before.loads,
                hits: after.hits - before.hits,
            });
            if stop(&state, iteration) {
                break;
            }
        }
        IterativeOutcome {
            state,
            iterations: stats,
            failed_units,
        }
    }
}

/// Wrapper so `R` needs only `Send`, not `Any` shenanigans at call sites.
struct Partial<R>(Option<R>);

/// Convenience: kernel-level error for iterative steps (re-exported pattern).
#[allow(dead_code)]
fn _assert_error_type(_: TaskError) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheMode, VecSource};
    use pilot_core::describe::PilotDescription;
    use pilot_sim::SimDuration;

    fn svc(cores: u32) -> ThreadPilotService {
        let s = ThreadPilotService::new(Box::new(pilot_core::scheduler::FirstFitScheduler));
        let p = s.submit_pilot(PilotDescription::new(cores, SimDuration::MAX));
        assert!(s.wait_pilot_active(p));
        s
    }

    #[test]
    fn iterative_sum_converges_deterministically() {
        // State = running total; step sums a partition; 3 iterations triple it.
        let source = Arc::new(VecSource::new((1..=100i64).collect(), 4));
        let cache = Arc::new(CacheManager::new(source as _, CacheMode::Cached));
        let exec = IterativeExecutor::new(
            cache,
            |part: &[i64], _s: &i64, _par: &Parallelism| part.iter().sum::<i64>(),
            |partials: Vec<i64>, s: i64| s + partials.iter().sum::<i64>(),
        );
        let s = svc(4);
        let out = exec.run(&s, 0i64, 3, |_, _| false);
        assert_eq!(out.state, 3 * 5050);
        assert_eq!(out.iterations.len(), 3);
        assert_eq!(out.failed_units, 0);
        s.shutdown();
    }

    #[test]
    fn first_iteration_loads_rest_hit() {
        let source = Arc::new(VecSource::new((0..1000u32).collect(), 8));
        let cache = Arc::new(CacheManager::new(source as _, CacheMode::Cached));
        let exec = IterativeExecutor::new(
            cache,
            |part: &[u32], _: &u32, _par: &Parallelism| part.len() as u32,
            |ps: Vec<u32>, _s: u32| ps.iter().sum(),
        );
        let s = svc(4);
        let out = exec.run(&s, 0u32, 3, |_, _| false);
        assert_eq!(out.iterations[0].loads, 8);
        assert_eq!(out.iterations[1].loads, 0);
        assert_eq!(out.iterations[1].hits, 8);
        assert_eq!(out.state, 1000);
        s.shutdown();
    }

    #[test]
    fn unit_cores_size_the_step_parallelism() {
        let source = Arc::new(VecSource::new(vec![0u8; 8], 2));
        let cache = Arc::new(CacheManager::new(source as _, CacheMode::Cached));
        let exec = IterativeExecutor::new(
            cache,
            |_: &[u8], _: &usize, par: &Parallelism| par.threads(),
            |ps: Vec<usize>, _s: usize| ps.into_iter().max().unwrap_or(0),
        )
        .with_unit_cores(2);
        let s = svc(4);
        let out = exec.run(&s, 0usize, 1, |_, _| false);
        assert_eq!(out.state, 2, "kernel must see the reserved core count");
        assert_eq!(out.failed_units, 0);
        s.shutdown();
    }

    #[test]
    fn early_stop_predicate() {
        let source = Arc::new(VecSource::new(vec![1u8; 10], 2));
        let cache = Arc::new(CacheManager::new(source as _, CacheMode::Cached));
        let exec = IterativeExecutor::new(
            cache,
            |_: &[u8], _: &usize, _par: &Parallelism| 1usize,
            |_: Vec<usize>, s: usize| s + 1,
        );
        let s = svc(2);
        let out = exec.run(&s, 0usize, 100, |state, _| *state >= 5);
        assert_eq!(out.state, 5);
        assert_eq!(out.iterations.len(), 5);
        s.shutdown();
    }

    #[test]
    fn cached_mode_beats_reload_mode() {
        let mk = |mode| {
            let source = Arc::new(VecSource::new((0..100u32).collect(), 4).with_load_cost(0.01));
            Arc::new(CacheManager::new(source as _, mode))
        };
        let run = |cache: Arc<CacheManager<u32>>| {
            let exec = IterativeExecutor::new(
                cache,
                |p: &[u32], _: &u64, _par: &Parallelism| p.iter().map(|&x| x as u64).sum::<u64>(),
                |ps: Vec<u64>, _s: u64| ps.iter().sum(),
            );
            let s = svc(4);
            let out = exec.run(&s, 0u64, 5, |_, _| false);
            s.shutdown();
            out
        };
        let cached = run(mk(CacheMode::Cached));
        let reload = run(mk(CacheMode::Reload));
        assert_eq!(cached.state, reload.state, "same answer either way");
        assert!(
            reload.steady_state_mean_s() > 1.5 * cached.steady_state_mean_s(),
            "reload {:.4}s vs cached {:.4}s",
            reload.steady_state_mean_s(),
            cached.steady_state_mean_s()
        );
    }

    #[test]
    fn total_wall_time_sums() {
        let source = Arc::new(VecSource::new(vec![0u8; 4], 2));
        let cache = Arc::new(CacheManager::new(source as _, CacheMode::Cached));
        let exec = IterativeExecutor::new(
            cache,
            |_: &[u8], _: &u8, _: &Parallelism| 0u8,
            |_: Vec<u8>, s: u8| s,
        );
        let s = svc(2);
        let out = exec.run(&s, 0u8, 2, |_, _| false);
        let sum: f64 = out.iterations.iter().map(|i| i.wall_s).sum();
        assert!((out.total_wall_s() - sum).abs() < 1e-12);
        s.shutdown();
    }
}
