//! Partition cache over an expensive source, with LRU eviction.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where partitions come from when they are not cached. Loads are expensive
/// by assumption (storage, network, decode) — that is the whole point of
/// caching them.
pub trait PartitionSource<T>: Send + Sync {
    /// Materialize partition `index`.
    fn load(&self, index: usize) -> Vec<T>;
    /// Number of partitions.
    fn num_partitions(&self) -> usize;
}

/// A source backed by pre-partitioned in-memory data, with an optional
/// synthetic per-load cost (models deserialization/storage latency in
/// experiments).
pub struct VecSource<T> {
    partitions: Vec<Vec<T>>,
    load_cost_s: f64,
}

impl<T: Clone + Send + Sync> VecSource<T> {
    /// Split `data` into `n` near-equal partitions.
    pub fn new(data: Vec<T>, n: usize) -> Self {
        let n = n.max(1);
        let chunk = data.len().div_ceil(n).max(1);
        let partitions = data
            .chunks(chunk)
            .map(|c| c.to_vec())
            .chain(std::iter::repeat_with(Vec::new))
            .take(n)
            .collect();
        VecSource {
            partitions,
            load_cost_s: 0.0,
        }
    }

    /// Add a synthetic cost per load (busy wall-clock spin).
    pub fn with_load_cost(mut self, seconds: f64) -> Self {
        self.load_cost_s = seconds;
        self
    }

    /// Wrap pre-built partitions as-is — for datasets whose natural unit is
    /// one value per partition (e.g. a flat matrix band), where re-chunking
    /// element-wise would destroy the layout.
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Self {
        VecSource {
            partitions,
            load_cost_s: 0.0,
        }
    }
}

impl<T: Clone + Send + Sync> PartitionSource<T> for VecSource<T> {
    fn load(&self, index: usize) -> Vec<T> {
        if self.load_cost_s > 0.0 {
            let deadline =
                std::time::Instant::now() + std::time::Duration::from_secs_f64(self.load_cost_s);
            while std::time::Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
        self.partitions[index].clone()
    }
    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }
}

/// Whether partitions persist between reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheMode {
    /// Keep partitions in memory (Pilot-Memory behaviour).
    Cached,
    /// Reload from the source on every access (the re-staging baseline).
    Reload,
}

/// Counters exposed for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served from memory.
    pub hits: u64,
    /// Accesses that had to load from the source.
    pub loads: u64,
    /// Partitions evicted under the capacity bound.
    pub evictions: u64,
}

struct CacheInner<T> {
    map: HashMap<usize, (Arc<Vec<T>>, u64)>,
    clock: u64,
    evictions: u64,
}

/// Partition-grained cache. Thread-safe; cloned handles share state.
pub struct CacheManager<T> {
    source: Arc<dyn PartitionSource<T>>,
    mode: CacheMode,
    /// Max cached partitions (`None` = unbounded).
    capacity: Option<usize>,
    inner: Mutex<CacheInner<T>>,
    hits: AtomicU64,
    loads: AtomicU64,
}

impl<T: Send + Sync> CacheManager<T> {
    /// Wrap a source.
    pub fn new(source: Arc<dyn PartitionSource<T>>, mode: CacheMode) -> Self {
        CacheManager {
            source,
            mode,
            capacity: None,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                clock: 0,
                evictions: 0,
            }),
            hits: AtomicU64::new(0),
            loads: AtomicU64::new(0),
        }
    }

    /// Bound the number of cached partitions (LRU beyond it).
    pub fn with_capacity(mut self, partitions: usize) -> Self {
        self.capacity = Some(partitions.max(1));
        self
    }

    /// Number of partitions in the underlying source.
    pub fn num_partitions(&self) -> usize {
        self.source.num_partitions()
    }

    /// Fetch a partition, from memory when possible.
    pub fn get(&self, index: usize) -> Arc<Vec<T>> {
        assert!(
            index < self.source.num_partitions(),
            "partition out of range"
        );
        if self.mode == CacheMode::Reload {
            self.loads.fetch_add(1, Ordering::Relaxed);
            return Arc::new(self.source.load(index));
        }
        {
            let mut g = self.inner.lock();
            g.clock += 1;
            let stamp = g.clock;
            if let Some((data, last)) = g.map.get_mut(&index) {
                *last = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(data);
            }
        }
        // Load outside the lock: concurrent misses may duplicate work but
        // never block each other on a slow source.
        self.loads.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(self.source.load(index));
        let mut g = self.inner.lock();
        g.clock += 1;
        let stamp = g.clock;
        g.map.insert(index, (Arc::clone(&data), stamp));
        if let Some(cap) = self.capacity {
            while g.map.len() > cap {
                let victim = g
                    .map
                    .iter()
                    .min_by_key(|(_, (_, last))| *last)
                    .map(|(&k, _)| k);
                let Some(victim) = victim else {
                    break; // len() > cap implies non-empty; defensive only
                };
                g.map.remove(&victim);
                g.evictions += 1;
            }
        }
        data
    }

    /// Pre-load every partition (warm-up).
    pub fn warm(&self) {
        for i in 0..self.num_partitions() {
            let _ = self.get(i);
        }
    }

    /// Drop all cached partitions.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            evictions: self.inner.lock().evictions,
        }
    }

    /// Partitions currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(n: usize) -> Arc<VecSource<u32>> {
        Arc::new(VecSource::new((0..100u32).collect(), n))
    }

    #[test]
    fn vec_source_partitions_evenly() {
        let s = VecSource::new((0..10u32).collect(), 3);
        assert_eq!(s.num_partitions(), 3);
        let total: usize = (0..3).map(|i| s.load(i).len()).sum();
        assert_eq!(total, 10);
        assert_eq!(s.load(0), vec![0, 1, 2, 3]);
        // More partitions than elements: trailing partitions are empty.
        let s = VecSource::new(vec![1u32], 4);
        assert_eq!(s.num_partitions(), 4);
        assert!(s.load(3).is_empty());
    }

    #[test]
    fn from_partitions_preserves_shape() {
        let s = VecSource::from_partitions(vec![vec![1u32, 2], vec![], vec![3]]);
        assert_eq!(s.num_partitions(), 3);
        assert_eq!(s.load(0), vec![1, 2]);
        assert!(s.load(1).is_empty());
        assert_eq!(s.load(2), vec![3]);
    }

    #[test]
    fn cached_mode_hits_after_first_load() {
        let c = CacheManager::new(source(4), CacheMode::Cached);
        let a = c.get(0);
        let b = c.get(0);
        assert!(Arc::ptr_eq(&a, &b), "same allocation served twice");
        let s = c.stats();
        assert_eq!(s.loads, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn reload_mode_always_loads() {
        let c = CacheManager::new(source(4), CacheMode::Reload);
        let _ = c.get(1);
        let _ = c.get(1);
        let s = c.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.hits, 0);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn lru_eviction_under_capacity() {
        let c = CacheManager::new(source(4), CacheMode::Cached).with_capacity(2);
        let _ = c.get(0);
        let _ = c.get(1);
        let _ = c.get(0); // 0 is now most recent
        let _ = c.get(2); // evicts 1 (LRU)
        assert_eq!(c.resident(), 2);
        assert_eq!(c.stats().evictions, 1);
        // 0 still resident (hit), 1 gone (load).
        let before = c.stats().loads;
        let _ = c.get(0);
        assert_eq!(c.stats().loads, before);
        let _ = c.get(1);
        assert_eq!(c.stats().loads, before + 1);
    }

    #[test]
    fn warm_and_clear() {
        let c = CacheManager::new(source(5), CacheMode::Cached);
        c.warm();
        assert_eq!(c.resident(), 5);
        assert_eq!(c.stats().loads, 5);
        c.clear();
        assert_eq!(c.resident(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_partition_panics() {
        let c = CacheManager::new(source(2), CacheMode::Cached);
        let _ = c.get(7);
    }

    #[test]
    fn concurrent_gets_are_consistent() {
        let c = Arc::new(CacheManager::new(source(8), CacheMode::Cached));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let p = c.get(i % 8);
                        assert!(!p.is_empty() || i % 8 >= 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.loads, 800);
        assert!(s.loads >= 8, "each partition loaded at least once");
    }

    #[test]
    fn load_cost_slows_reload_mode() {
        let slow = Arc::new(VecSource::new((0..10u32).collect(), 1).with_load_cost(0.02));
        let cached = CacheManager::new(Arc::clone(&slow) as _, CacheMode::Cached);
        let reload = CacheManager::new(slow as _, CacheMode::Reload);
        let time = |c: &CacheManager<u32>| {
            let t = std::time::Instant::now();
            for _ in 0..5 {
                let _ = c.get(0);
            }
            t.elapsed().as_secs_f64()
        };
        let t_cached = time(&cached);
        let t_reload = time(&reload);
        assert!(
            t_reload > 3.0 * t_cached,
            "reload {t_reload} should dwarf cached {t_cached}"
        );
    }
}
