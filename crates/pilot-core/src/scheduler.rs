//! Late-binding schedulers: decide which pilot a pending compute unit binds
//! to, given a snapshot of current pilot capacity.
//!
//! Schedulers are pure decision functions over snapshots, shared by both
//! execution backends — the ablation experiment (EXP AB-1) swaps them while
//! holding everything else fixed. A scheduler returning `None` leaves the
//! unit pending; the manager retries on every capacity change.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use crate::describe::UnitDescription;
use crate::ids::{PilotId, UnitId};
use crate::retry::streams;
use pilot_infra::types::SiteId;
use pilot_sim::SimRng;
use std::collections::{HashMap, HashSet};

/// Point-in-time view of one pilot, as the unit manager sees it.
#[derive(Clone, Debug)]
pub struct PilotSnapshot {
    /// Which pilot.
    pub pilot: PilotId,
    /// Site the pilot's resources live on.
    pub site: SiteId,
    /// Cores the pilot currently holds.
    pub total_cores: u32,
    /// Cores not reserved by running/assigned units.
    pub free_cores: u32,
    /// Units currently bound (assigned/staging/running) to this pilot.
    pub bound_units: usize,
    /// Seconds of walltime remaining before the pilot expires.
    pub remaining_walltime_s: f64,
}

impl PilotSnapshot {
    fn fits(&self, cores: u32) -> bool {
        self.free_cores >= cores
    }
}

/// A unit asking to be bound.
#[derive(Clone, Debug)]
pub struct UnitRequest<'a> {
    /// Which unit.
    pub unit: UnitId,
    /// Its description (cores, inputs, estimate, priority).
    pub desc: &'a UnitDescription,
}

/// Late-binding placement policy.
pub trait Scheduler: Send {
    /// Pick a pilot for `unit`, or `None` to keep it pending.
    ///
    /// `pilots` contains only *active* pilots; the scheduler must return one
    /// with enough free cores (the manager asserts this).
    fn select(&mut self, unit: &UnitRequest<'_>, pilots: &[PilotSnapshot]) -> Option<PilotId>;

    /// Called once at the start of every binding pass, before any `select`.
    /// Stateful policies that count *passes* (not calls — the reference
    /// per-unit pass re-offers refused units within one pass) hook this;
    /// the default is a no-op.
    fn begin_pass(&mut self) {}

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Bind to the first active pilot with room (stable order ⇒ packs early
/// pilots first). The baseline policy.
#[derive(Default, Debug, Clone)]
pub struct FirstFitScheduler;

impl Scheduler for FirstFitScheduler {
    fn select(&mut self, unit: &UnitRequest<'_>, pilots: &[PilotSnapshot]) -> Option<PilotId> {
        pilots
            .iter()
            .find(|p| p.fits(unit.desc.cores))
            .map(|p| p.pilot)
    }
    fn name(&self) -> &'static str {
        "first-fit"
    }
}

/// Rotate across pilots with room, ignoring load (spreads units evenly by
/// count, not by size).
///
/// The rotation anchor is the *identity* of the last-chosen pilot, not an
/// index into the pilot slice: slice membership changes between calls (pilots
/// join, die, get blacklisted), and a stored index would silently point at a
/// different pilot after churn, skewing the rotation.
#[derive(Default, Debug, Clone)]
pub struct RoundRobinScheduler {
    last: Option<PilotId>,
}

impl Scheduler for RoundRobinScheduler {
    fn select(&mut self, unit: &UnitRequest<'_>, pilots: &[PilotSnapshot]) -> Option<PilotId> {
        if pilots.is_empty() {
            return None;
        }
        let n = pilots.len();
        let start = match self.last {
            None => 0,
            Some(last) => match pilots.iter().position(|p| p.pilot == last) {
                Some(i) => (i + 1) % n,
                // The anchor left the set: resume at the pilot with the next
                // id above it (wrapping to the smallest) so the rotation
                // continues instead of restarting.
                None => pilots
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.pilot.0 > last.0)
                    .min_by_key(|(_, p)| p.pilot.0)
                    .or_else(|| pilots.iter().enumerate().min_by_key(|(_, p)| p.pilot.0))
                    .map(|(i, _)| i)
                    .unwrap_or(0),
            },
        };
        for i in 0..n {
            let p = &pilots[(start + i) % n];
            if p.fits(unit.desc.cores) {
                self.last = Some(p.pilot);
                return Some(p.pilot);
            }
        }
        None
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Bind to the pilot with the most free cores (least-loaded), tie-broken by
/// fewer bound units.
#[derive(Default, Debug, Clone)]
pub struct LoadBalanceScheduler;

impl Scheduler for LoadBalanceScheduler {
    fn select(&mut self, unit: &UnitRequest<'_>, pilots: &[PilotSnapshot]) -> Option<PilotId> {
        pilots
            .iter()
            .filter(|p| p.fits(unit.desc.cores))
            .max_by(|a, b| {
                (a.free_cores, std::cmp::Reverse(a.bound_units))
                    .cmp(&(b.free_cores, std::cmp::Reverse(b.bound_units)))
            })
            .map(|p| p.pilot)
    }
    fn name(&self) -> &'static str {
        "load-balance"
    }
}

/// Prefer the pilot whose site already holds the most input bytes; transfer
/// cost dominates short tasks, so locality beats load for data-intensive
/// workloads (EXP PD-1).
///
/// Implements *delay scheduling*: when some pilot's site holds (part of) the
/// unit's inputs but every such pilot is currently full, the unit stays
/// pending rather than being staged to a remote site — the local slot it is
/// waiting for frees up within one task duration. Units whose data is at no
/// pilot's site fall back to the least-loaded feasible pilot.
///
/// The wait is *bounded*: a unit refused `max_wait_passes` consecutive
/// binding passes stops insisting on locality and falls back to the
/// least-loaded feasible pilot. Without the bound, a unit whose only
/// data-local pilot is permanently full (or stuck pending) starves forever —
/// exactly the regime pilot churn and fault injection produce.
#[derive(Debug, Clone)]
pub struct DataAwareScheduler {
    /// Refused passes a unit waits for a local slot before going remote.
    pub max_wait_passes: u32,
    /// Refused-pass count per still-waiting unit (cleared on bind).
    deferrals: HashMap<UnitId, u32>,
    /// Units already charged a deferral in the current pass: the reference
    /// per-unit pass re-offers refused units within one pass, and those
    /// re-offers must not burn extra wait budget.
    deferred_this_pass: HashSet<UnitId>,
}

impl Default for DataAwareScheduler {
    fn default() -> Self {
        DataAwareScheduler {
            max_wait_passes: 16,
            deferrals: HashMap::new(),
            deferred_this_pass: HashSet::new(),
        }
    }
}

impl DataAwareScheduler {
    /// Delay scheduling bounded at `max_wait_passes` refused passes.
    pub fn with_max_wait(max_wait_passes: u32) -> Self {
        DataAwareScheduler {
            max_wait_passes,
            ..Default::default()
        }
    }
}

impl Scheduler for DataAwareScheduler {
    fn select(&mut self, unit: &UnitRequest<'_>, pilots: &[PilotSnapshot]) -> Option<PilotId> {
        let total = unit.desc.input_bytes();
        if total > 0 {
            let local_bytes = |p: &PilotSnapshot| total - unit.desc.remote_bytes(p.site);
            // Refusals already charged this pass don't count against the
            // budget a second time within the same pass.
            let charged = u32::from(self.deferred_this_pass.contains(&unit.unit));
            let waited = self
                .deferrals
                .get(&unit.unit)
                .copied()
                .unwrap_or(0)
                .saturating_sub(charged);
            // Does *any* active pilot (even a full one) sit at the data —
            // and is this unit still within its wait budget?
            if waited < self.max_wait_passes && pilots.iter().any(|p| local_bytes(p) > 0) {
                // Then bind only to a local pilot with room — or wait.
                let choice = pilots
                    .iter()
                    .filter(|p| p.fits(unit.desc.cores) && local_bytes(p) > 0)
                    .max_by_key(|p| (local_bytes(p), p.free_cores as u64))
                    .map(|p| p.pilot);
                if choice.is_some() {
                    self.deferrals.remove(&unit.unit);
                    self.deferred_this_pass.remove(&unit.unit);
                } else if self.deferred_this_pass.insert(unit.unit) {
                    *self.deferrals.entry(unit.unit).or_insert(0) += 1;
                }
                return choice;
            }
        }
        // No data, data lives nowhere near any pilot, or the unit exhausted
        // its wait budget: balance load.
        let choice = pilots
            .iter()
            .filter(|p| p.fits(unit.desc.cores))
            .max_by_key(|p| p.free_cores)
            .map(|p| p.pilot);
        if choice.is_some() {
            self.deferrals.remove(&unit.unit);
            self.deferred_this_pass.remove(&unit.unit);
        }
        choice
    }
    fn begin_pass(&mut self) {
        self.deferred_this_pass.clear();
    }
    fn name(&self) -> &'static str {
        "data-aware"
    }
}

/// Walltime-aware binding: only bind a unit to a pilot whose remaining
/// walltime covers the unit's estimated duration (with a safety factor), so
/// work is never started that the pilot cannot finish.
///
/// Units *with* an estimate prefer the feasible pilot closest to expiry
/// (classic backfill: use up ending resources first). Units *without* an
/// estimate bind to the pilot with the **most** remaining walltime — parking
/// unknown-length work on an expiring pilot routinely gets it killed at pilot
/// walltime and requeued as wasted work.
#[derive(Debug, Clone)]
pub struct BackfillScheduler {
    /// Multiplier on the estimate when checking remaining walltime.
    pub safety_factor: f64,
}

impl Default for BackfillScheduler {
    fn default() -> Self {
        BackfillScheduler { safety_factor: 1.2 }
    }
}

impl Scheduler for BackfillScheduler {
    fn select(&mut self, unit: &UnitRequest<'_>, pilots: &[PilotSnapshot]) -> Option<PilotId> {
        let needed = unit.desc.est_duration_s.map(|d| d * self.safety_factor);
        let feasible = pilots.iter().filter(|p| p.fits(unit.desc.cores));
        let by_walltime = |a: &&PilotSnapshot, b: &&PilotSnapshot| {
            a.remaining_walltime_s.total_cmp(&b.remaining_walltime_s)
        };
        match needed {
            // Covered estimate: backfill the pilot closest to expiry.
            Some(n) => feasible
                .filter(|p| p.remaining_walltime_s >= n)
                .min_by(by_walltime),
            // No estimate: maximize headroom instead of risking a
            // walltime kill.
            None => feasible.max_by(by_walltime),
        }
        .map(|p| p.pilot)
    }
    fn name(&self) -> &'static str {
        "backfill"
    }
}

/// Uniformly random feasible pilot — the control arm for scheduler ablations.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: SimRng,
}

impl RandomScheduler {
    /// Seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SimRng::new(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn select(&mut self, unit: &UnitRequest<'_>, pilots: &[PilotSnapshot]) -> Option<PilotId> {
        let feasible: Vec<&PilotSnapshot> =
            pilots.iter().filter(|p| p.fits(unit.desc.cores)).collect();
        if feasible.is_empty() {
            None
        } else {
            // Keyed off the unit so the pick survives offer reordering: a
            // draw on the root RNG would couple every placement to the
            // global draw order.
            let pick = self
                .rng
                .stream(streams::keyed(streams::SCHED_PICK, unit.unit.0, 0))
                .below_usize(feasible.len());
            Some(feasible[pick].pilot)
        }
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::DataLocation;

    fn snap(id: u64, site: u16, total: u32, free: u32, bound: usize, rem: f64) -> PilotSnapshot {
        PilotSnapshot {
            pilot: PilotId(id),
            site: SiteId(site),
            total_cores: total,
            free_cores: free,
            bound_units: bound,
            remaining_walltime_s: rem,
        }
    }

    fn req(desc: &UnitDescription) -> UnitRequest<'_> {
        UnitRequest {
            unit: UnitId(1),
            desc,
        }
    }

    #[test]
    fn first_fit_prefers_earlier_pilot() {
        let mut s = FirstFitScheduler;
        let pilots = [snap(1, 0, 8, 2, 1, 100.0), snap(2, 0, 8, 8, 0, 100.0)];
        let d = UnitDescription::new(2);
        assert_eq!(s.select(&req(&d), &pilots), Some(PilotId(1)));
        let d4 = UnitDescription::new(4);
        assert_eq!(s.select(&req(&d4), &pilots), Some(PilotId(2)));
        let d9 = UnitDescription::new(9);
        assert_eq!(s.select(&req(&d9), &pilots), None);
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = RoundRobinScheduler::default();
        let pilots = [
            snap(1, 0, 8, 8, 0, 100.0),
            snap(2, 0, 8, 8, 0, 100.0),
            snap(3, 0, 8, 8, 0, 100.0),
        ];
        let d = UnitDescription::new(1);
        let picks: Vec<_> = (0..6)
            .map(|_| s.select(&req(&d), &pilots).unwrap().0)
            .collect();
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn round_robin_survives_pilot_churn() {
        // Regression: the old implementation kept a slice *index*, so when
        // membership changed between calls the cursor pointed at a different
        // pilot and the rotation repeated or skipped pilots.
        let mut s = RoundRobinScheduler::default();
        let d = UnitDescription::new(1);
        let all = [
            snap(1, 0, 8, 8, 0, 100.0),
            snap(2, 0, 8, 8, 0, 100.0),
            snap(3, 0, 8, 8, 0, 100.0),
        ];
        assert_eq!(s.select(&req(&d), &all), Some(PilotId(1)));
        assert_eq!(s.select(&req(&d), &all), Some(PilotId(2)));
        // Pilot 1 dies: rotation must continue at 3, not revisit 2 (the old
        // cursor=2 pointed past the end of the shrunken slice, wrapping to 2).
        let without_1 = [all[1].clone(), all[2].clone()];
        assert_eq!(s.select(&req(&d), &without_1), Some(PilotId(3)));
        // Last-chosen pilot 3 also dies: resume after its id → wrap to 2.
        let only_2 = [all[1].clone()];
        assert_eq!(s.select(&req(&d), &only_2), Some(PilotId(2)));
        // A new pilot joins mid-rotation: next in id order after 2 is 3... 4.
        let with_4 = [all[1].clone(), all[2].clone(), snap(4, 0, 8, 8, 0, 100.0)];
        assert_eq!(s.select(&req(&d), &with_4), Some(PilotId(3)));
        assert_eq!(s.select(&req(&d), &with_4), Some(PilotId(4)));
        assert_eq!(s.select(&req(&d), &with_4), Some(PilotId(2)));
    }

    #[test]
    fn round_robin_skips_full_pilot() {
        let mut s = RoundRobinScheduler::default();
        let pilots = [snap(1, 0, 8, 0, 8, 100.0), snap(2, 0, 8, 4, 0, 100.0)];
        let d = UnitDescription::new(1);
        assert_eq!(s.select(&req(&d), &pilots), Some(PilotId(2)));
        assert_eq!(s.select(&req(&d), &pilots), Some(PilotId(2)));
    }

    #[test]
    fn load_balance_picks_most_free() {
        let mut s = LoadBalanceScheduler;
        let pilots = [
            snap(1, 0, 8, 3, 5, 100.0),
            snap(2, 0, 16, 10, 2, 100.0),
            snap(3, 0, 8, 10, 1, 100.0),
        ];
        let d = UnitDescription::new(1);
        // 2 and 3 tie on free cores; 3 has fewer bound units.
        assert_eq!(s.select(&req(&d), &pilots), Some(PilotId(3)));
    }

    #[test]
    fn data_aware_follows_bytes() {
        let mut s = DataAwareScheduler::default();
        let pilots = [snap(1, 0, 8, 4, 0, 100.0), snap(2, 1, 8, 8, 0, 100.0)];
        // 1 GB at site 0, 1 MB at site 1.
        let d = UnitDescription::new(1).with_inputs(vec![
            DataLocation::new(1_000_000_000, vec![SiteId(0)]),
            DataLocation::new(1_000_000, vec![SiteId(1)]),
        ]);
        assert_eq!(s.select(&req(&d), &pilots), Some(PilotId(1)));
        // With no inputs it degrades to most-free-cores.
        let d0 = UnitDescription::new(1);
        assert_eq!(s.select(&req(&d0), &pilots), Some(PilotId(2)));
    }

    #[test]
    fn data_aware_wait_is_bounded() {
        // Regression: delay scheduling starved forever when the only
        // data-local pilot was permanently full. After `max_wait_passes`
        // refused passes the unit must fall back to the least-loaded pilot.
        let mut s = DataAwareScheduler::with_max_wait(3);
        // Pilot 1 sits at the data but is full; pilot 2 is remote and free.
        let pilots = [snap(1, 0, 8, 0, 8, 100.0), snap(2, 1, 8, 8, 0, 100.0)];
        let d = UnitDescription::new(1)
            .with_inputs(vec![DataLocation::new(1_000_000, vec![SiteId(0)])]);
        for pass in 0..3 {
            s.begin_pass();
            assert_eq!(s.select(&req(&d), &pilots), None, "pass {pass} waits");
            // Re-offers within the same pass don't burn extra wait budget.
            assert_eq!(s.select(&req(&d), &pilots), None);
        }
        s.begin_pass();
        assert_eq!(
            s.select(&req(&d), &pilots),
            Some(PilotId(2)),
            "budget exhausted: go remote rather than starve"
        );
        // A successful bind clears the unit's wait state: a fresh unit with
        // the same id waits again from zero.
        s.begin_pass();
        assert_eq!(s.select(&req(&d), &pilots), None);
    }

    #[test]
    fn backfill_respects_remaining_walltime() {
        let mut s = BackfillScheduler::default();
        let pilots = [snap(1, 0, 8, 8, 0, 30.0), snap(2, 0, 8, 8, 0, 500.0)];
        // 60 s estimate × 1.2 = 72 s needed: only pilot 2 qualifies.
        let d = UnitDescription::new(1).with_estimate(60.0);
        assert_eq!(s.select(&req(&d), &pilots), Some(PilotId(2)));
        // 10 s estimate: both qualify; prefer the expiring one.
        let d_short = UnitDescription::new(1).with_estimate(10.0);
        assert_eq!(s.select(&req(&d_short), &pilots), Some(PilotId(1)));
        // No estimate: prefer the pilot with the most headroom, not the one
        // about to kill the unit at walltime.
        let d_unknown = UnitDescription::new(1);
        assert_eq!(s.select(&req(&d_unknown), &pilots), Some(PilotId(2)));
        // Nothing has enough walltime.
        let d_long = UnitDescription::new(1).with_estimate(1000.0);
        assert_eq!(s.select(&req(&d_long), &pilots), None);
    }

    #[test]
    fn random_is_feasible_and_deterministic_per_seed() {
        let pilots = [
            snap(1, 0, 8, 0, 8, 100.0), // full
            snap(2, 0, 8, 8, 0, 100.0),
            snap(3, 0, 8, 8, 0, 100.0),
        ];
        let d = UnitDescription::new(4);
        let picks = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..20u64)
                .map(|u| {
                    let r = UnitRequest {
                        unit: UnitId(u),
                        desc: &d,
                    };
                    s.select(&r, &pilots).unwrap().0
                })
                .collect::<Vec<_>>()
        };
        let a = picks(7);
        assert_eq!(a, picks(7));
        assert!(a.iter().all(|&p| p == 2 || p == 3), "never the full pilot");
        assert!(
            a.contains(&2) && a.contains(&3),
            "spread across units: {a:?}"
        );
        // The pick is keyed off the unit, not the call order: re-offering the
        // same unit later lands on the same pilot.
        let mut s = RandomScheduler::new(7);
        let first = s.select(&req(&d), &pilots);
        for _ in 0..5 {
            s.select(
                &UnitRequest {
                    unit: UnitId(99),
                    desc: &d,
                },
                &pilots,
            );
        }
        assert_eq!(s.select(&req(&d), &pilots), first);
    }

    #[test]
    fn empty_pilot_list_keeps_unit_pending() {
        let d = UnitDescription::new(1);
        assert_eq!(FirstFitScheduler.select(&req(&d), &[]), None);
        assert_eq!(RoundRobinScheduler::default().select(&req(&d), &[]), None);
        assert_eq!(LoadBalanceScheduler.select(&req(&d), &[]), None);
        assert_eq!(DataAwareScheduler::default().select(&req(&d), &[]), None);
        assert_eq!(BackfillScheduler::default().select(&req(&d), &[]), None);
        assert_eq!(RandomScheduler::new(1).select(&req(&d), &[]), None);
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(FirstFitScheduler.name(), "first-fit");
        assert_eq!(RoundRobinScheduler::default().name(), "round-robin");
        assert_eq!(LoadBalanceScheduler.name(), "load-balance");
        assert_eq!(DataAwareScheduler::default().name(), "data-aware");
        assert_eq!(BackfillScheduler::default().name(), "backfill");
        assert_eq!(RandomScheduler::new(0).name(), "random");
    }
}
