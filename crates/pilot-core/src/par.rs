//! Intra-unit data parallelism: a scoped worker pool for compute kernels.
//!
//! A compute unit reserves `cores` on its pilot, but until now every kernel
//! ran single-threaded on one agent worker. [`Parallelism`] closes that gap:
//! a kernel builds a handle from its [`TaskCtx`] and fans loops over exactly
//! the cores it reserved, keeping the pilot's capacity accounting honest.
//!
//! ## Determinism contract
//!
//! Parallel output is **bit-identical** to sequential output, for any thread
//! count. Two mechanisms guarantee this:
//!
//! 1. **Fixed chunk boundaries** — [`par_chunks`](Parallelism::par_chunks)
//!    splits the input at multiples of the caller-supplied block size,
//!    independent of how many threads execute. Thread count only changes
//!    *who* computes a block, never *which* blocks exist.
//! 2. **Ordered left-fold reduction** —
//!    [`par_map_reduce`](Parallelism::par_map_reduce) combines block results
//!    in block order on the calling thread, so floating-point association is
//!    the same however blocks were scheduled.
//!
//! A [`Parallelism::sequential`] handle runs the identical blocked algorithm
//! on the calling thread; equivalence is property-tested in `pilot-apps`.
//!
//! ## Pool lifecycle and failure semantics
//!
//! Worker threads are spawned once per handle and reused across calls (a
//! kernel typically makes one handle and many `par_*` calls, e.g. one per
//! K-Means iteration). A panicking block fails the *call*: the panic payload
//! is captured, every other in-flight block finishes, and the payload is
//! re-raised on the caller — the pool itself survives and the next call
//! proceeds normally. Lock discipline follows the workspace R4 rule: no
//! guard is ever held across a channel `send`/`recv` (workers block on a
//! bare `recv`; the completion latch notifies *after* dropping its guard).

use crate::thread::TaskCtx;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;

/// A type-erased work item sent to the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion latch for one `par_*` call: counts outstanding jobs and holds
/// the first captured panic payload.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(jobs: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: jobs,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Mark one job finished, recording `panic` if it is the first failure.
    fn finish(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut g = self.state.lock();
        g.remaining -= 1;
        if let Some(p) = panic {
            g.panic.get_or_insert(p);
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Block until every job finished; re-raise the first captured panic.
    fn wait(&self) {
        let mut g = self.state.lock();
        while g.remaining > 0 {
            self.cv.wait(&mut g);
        }
        let panic = g.panic.take();
        drop(g);
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    }
}

/// The reused worker threads behind a multi-threaded [`Parallelism`].
struct WorkerPool {
    tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(threads: usize) -> Self {
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("par-w{i}"))
                    .spawn(move || {
                        // Jobs arrive pre-wrapped in catch_unwind, so a
                        // panicking block can never kill a worker.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    // lint: allow(panic, reason = "thread spawn fails only on OS resource exhaustion; a parallelism handle without its workers cannot honor the unit's reserved cores")
                    .expect("spawn par worker")
            })
            .collect();
        WorkerPool { tx, workers }
    }

    /// Send `jobs` (which borrow from the caller's stack) to the pool.
    ///
    /// # Safety contract (internal)
    ///
    /// The caller MUST block on the jobs' completion latch before any
    /// borrowed data goes out of scope. `par_chunks` does exactly that, with
    /// nothing fallible between the send and the wait.
    fn submit_scoped<'scope>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        for job in jobs {
            // SAFETY: only the lifetime is transmuted. The job is consumed
            // by a worker before `par_chunks` returns, because the caller
            // waits on the latch that every job (even a panicking one)
            // decrements; the borrowed environment therefore outlives every
            // use. Box<dyn FnOnce> has the same layout for both lifetimes.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
            // Send fails only after the workers exited, which happens only
            // in Drop — unreachable while a caller still holds the handle.
            let _ = self.tx.send(job);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends each worker's recv loop; every call
        // drained its own jobs before returning, so join cannot block on
        // application work.
        let (closed, _) = unbounded::<Job>();
        self.tx = closed;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Handle for intra-unit data parallelism, sized to a unit's reserved cores.
///
/// See the [module docs](self) for the determinism contract. Cheap to move;
/// owns its worker threads (none when `threads() == 1`).
pub struct Parallelism {
    threads: usize,
    pool: Option<WorkerPool>,
}

impl Parallelism {
    /// A handle that runs everything on the calling thread. The blocked code
    /// path is identical to the parallel one, so results match bit-for-bit.
    pub fn sequential() -> Self {
        Parallelism {
            threads: 1,
            pool: None,
        }
    }

    /// A handle with `threads` workers (clamped to at least 1). With one
    /// thread no pool is spawned and calls run inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Parallelism {
            threads,
            pool: (threads > 1).then(|| WorkerPool::new(threads)),
        }
    }

    /// Size the handle to the cores this unit reserved on its pilot — the
    /// bridge between the scheduler's capacity accounting and the kernel's
    /// actual parallelism.
    pub fn from_ctx(ctx: &TaskCtx) -> Self {
        Parallelism::new(ctx.cores as usize)
    }

    /// Worker count (1 means inline execution).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map fixed-size blocks of `data` to results, in parallel, returning
    /// them **in block order**. Block `i` covers
    /// `data[i*block .. min((i+1)*block, len)]` — boundaries depend only on
    /// `block` and `data.len()`, never on the thread count.
    pub fn par_chunks<T, R, F>(&self, data: &[T], block: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let block = block.max(1);
        let n_blocks = data.len().div_ceil(block);
        let workers = match &self.pool {
            Some(pool) if n_blocks > 1 => pool,
            _ => {
                // Sequential path: same blocks, same order, same math.
                return data
                    .chunks(block)
                    .enumerate()
                    .map(|(i, c)| f(i, c))
                    .collect();
            }
        };

        let slots: Vec<Mutex<Option<R>>> = (0..n_blocks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let n_jobs = self.threads.min(n_blocks);
        let latch = Latch::new(n_jobs);

        let worker_body = |_job: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_blocks {
                break;
            }
            let start = i * block;
            let end = (start + block).min(data.len());
            let r = f(i, &data[start..end]);
            *slots[i].lock() = Some(r);
        };

        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n_jobs)
            .map(|j| {
                let body = &worker_body;
                let latch = &latch;
                Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| body(j)));
                    latch.finish(result.err());
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();

        // From here to `latch.wait()` nothing can unwind: the borrowed
        // stack frame stays alive until every job has run (see
        // `submit_scoped`'s safety contract).
        workers.submit_scoped(jobs);
        latch.wait();

        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    // lint: allow(panic, reason = "every block index below n_blocks is claimed exactly once via the shared atomic counter and the latch waits for all claiming jobs; an empty slot is unreachable unless a job panicked, which wait() already re-raised")
                    .expect("block computed")
            })
            .collect()
    }

    /// Map fixed-size blocks and combine the results with a **left fold in
    /// block order** on the calling thread. Returns `None` for empty input.
    /// Deterministic for any thread count: only block-local work runs in
    /// parallel, the reduction order is fixed.
    pub fn par_map_reduce<T, R, M, C>(
        &self,
        data: &[T],
        block: usize,
        map: M,
        mut combine: C,
    ) -> Option<R>
    where
        T: Sync,
        R: Send,
        M: Fn(usize, &[T]) -> R + Sync,
        C: FnMut(R, R) -> R,
    {
        let mut results = self.par_chunks(data, block, map).into_iter();
        let first = results.next()?;
        Some(results.fold(first, &mut combine))
    }
}

impl std::fmt::Debug for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Parallelism(threads: {})", self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PilotId, UnitId};

    #[test]
    fn sequential_and_parallel_chunks_agree_bitwise() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let sum_block = |_: usize, c: &[f64]| c.iter().sum::<f64>();
        let seq = Parallelism::sequential().par_chunks(&data, 256, sum_block);
        for threads in [2, 3, 4, 8] {
            let par = Parallelism::new(threads).par_chunks(&data, 256, sum_block);
            assert_eq!(seq, par, "threads={threads} must be bit-identical");
        }
    }

    #[test]
    fn results_arrive_in_block_order() {
        let data: Vec<u32> = (0..1000).collect();
        let par = Parallelism::new(4);
        let ids = par.par_chunks(&data, 64, |i, c| (i, c[0]));
        for (pos, (i, first)) in ids.iter().enumerate() {
            assert_eq!(pos, *i);
            assert_eq!(*first, (pos * 64) as u32);
        }
    }

    #[test]
    fn map_reduce_left_folds_in_order() {
        let data: Vec<u64> = (0..100).collect();
        let par = Parallelism::new(3);
        // Non-commutative combine: concatenation order is observable.
        let folded = par.par_map_reduce(
            &data,
            16,
            |i, _| vec![i],
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(folded, Some((0..7).collect::<Vec<usize>>()));
        let empty: &[u64] = &[];
        assert_eq!(
            par.par_map_reduce(empty, 16, |i, _| i, |a, _| a),
            None,
            "empty input reduces to None"
        );
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let par = Parallelism::new(4);
        let data: Vec<u64> = (0..4096).collect();
        for _ in 0..20 {
            let total = par.par_map_reduce(&data, 128, |_, c| c.iter().sum::<u64>(), |a, b| a + b);
            assert_eq!(total, Some(4096 * 4095 / 2));
        }
    }

    #[test]
    fn panicking_block_fails_the_call_without_wedging_the_pool() {
        let par = Parallelism::new(4);
        let data: Vec<u32> = (0..1024).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par.par_chunks(&data, 64, |i, c| {
                if i == 7 {
                    panic!("block 7 exploded");
                }
                c.len()
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("block 7"), "got: {msg}");
        // Pool survives: the next call on the same handle works.
        let ok = par.par_chunks(&data, 64, |_, c| c.len());
        assert_eq!(ok.iter().sum::<usize>(), 1024);
    }

    #[test]
    fn from_ctx_uses_reserved_cores() {
        let ctx = TaskCtx {
            unit: UnitId(1),
            pilot: PilotId(1),
            cores: 4,
        };
        assert_eq!(Parallelism::from_ctx(&ctx).threads(), 4);
        let one = TaskCtx { cores: 1, ..ctx };
        assert_eq!(Parallelism::from_ctx(&one).threads(), 1);
    }

    #[test]
    fn zero_and_one_thread_handles_run_inline() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        let par = Parallelism::new(1);
        let out = par.par_chunks(&[1u8, 2, 3], 2, |_, c| c.len());
        assert_eq!(out, vec![2, 1]);
    }

    #[test]
    fn more_threads_than_blocks_is_fine() {
        let par = Parallelism::new(8);
        let data: Vec<u32> = (0..10).collect();
        let out = par.par_chunks(&data, 4, |_, c| c.iter().sum::<u32>());
        assert_eq!(out, vec![6, 22, 17]);
    }

    #[test]
    fn genuinely_concurrent_when_multithreaded() {
        // A barrier that only clears if both blocks run at once.
        let barrier = std::sync::Barrier::new(2);
        let par = Parallelism::new(2);
        let data: Vec<u8> = vec![0; 2];
        let out = par.par_chunks(&data, 1, |i, _| {
            barrier.wait();
            i
        });
        assert_eq!(out, vec![0, 1]);
    }
}
