//! The single sanctioned wall-clock read point.
//!
//! Application kernels and benchmark experiments time real work with a
//! [`WallClock`] instead of calling `Instant::now()` directly. That keeps the
//! workspace auditable: the `wall-clock` lint rule (R2) bans `Instant::now`,
//! `SystemTime::now`, `thread::sleep` *and* `WallClock::start` in
//! deterministic modules (`pilot-core/src/sim` and anything tagged
//! `// lint: deterministic`), so a wall-clock read can never creep into a
//! sim-comparable code path by accident — there is exactly one name to ban.

use std::time::{Duration, Instant};

/// A started stopwatch over the host's monotonic clock.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    t0: Instant,
}

impl WallClock {
    /// Start timing now. Banned by R2 in deterministic modules.
    #[must_use]
    pub fn start() -> WallClock {
        WallClock {
            // lint: allow(wall-clock, reason = "the one sanctioned wall-clock read; R2 bans WallClock::start in deterministic modules instead")
            t0: Instant::now(),
        }
    }

    /// Elapsed time since `start`.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.t0.elapsed()
    }

    /// Elapsed seconds since `start`, the unit used across metrics.
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let c = WallClock::start();
        let a = c.elapsed_s();
        let b = c.elapsed_s();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert!(c.elapsed() >= Duration::ZERO);
    }
}
