//! Virtual-time backend: the full pilot system — adaptors, late-binding
//! scheduler, data staging, adaptive policies — as one deterministic
//! discrete-event machine.
//!
//! Pilots are placeholder jobs on `pilot-saga` adaptors (HPC/HTC/cloud/YARN);
//! capacity arrives and leaves through the adaptors' uniform alphabet. Units
//! carry duration *models* instead of kernels; staging cost comes from the
//! site-to-site [`NetworkModel`]. Everything is reproducible from a seed,
//! which is what lets the experiment harness sweep hundreds of configurations
//! (EXP PJ-1/PJ-4/IO-1/DY-1) in milliseconds.

use crate::describe::{PilotDescription, UnitDescription};
use crate::ids::{IdGen, PilotId, UnitId};
use crate::metrics::{self, PilotTimes, UnitRecord, UnitTimes};
use crate::scheduler::{PilotSnapshot, Scheduler, UnitRequest};
use crate::state::{PilotState, UnitState};
use pilot_infra::component::{Component, Effects};
use pilot_infra::network::NetworkModel;
use pilot_infra::types::{JobId, JobOutcome, SiteId};
use pilot_saga::{JobDescription, ResourceAdaptor, SagaIn, SagaOut};
use pilot_sim::{Dist, Executor, Machine, Outbox, SimDuration, SimRng, SimTime, TraceLog};
use std::collections::HashMap;

/// Rule for runtime scale-out (the paper's R3 dynamism requirement, \[63\]):
/// when the pending-unit backlog exceeds a threshold, submit an extra pilot
/// on a designated (typically cloud) site.
#[derive(Clone, Debug)]
pub struct ScaleOutPolicy {
    /// How often to evaluate the rule.
    pub check_every: SimDuration,
    /// Backlog size that triggers scale-out.
    pub queue_threshold: usize,
    /// Site to scale out onto.
    pub burst_site: SiteId,
    /// Pilot to submit when triggered.
    pub pilot: PilotDescription,
    /// Maximum number of extra pilots.
    pub max_extra: u32,
}

/// Record of one pilot in a finished simulation.
#[derive(Clone, Debug)]
pub struct SimPilotRecord {
    /// Pilot id.
    pub pilot: PilotId,
    /// Site it was submitted to.
    pub site: SiteId,
    /// Label from the description.
    pub label: String,
    /// Terminal (or last) state.
    pub state: PilotState,
    /// Timestamps (virtual seconds).
    pub times: PilotTimes,
}

/// Results of a simulated run.
#[derive(Debug)]
pub struct SimReport {
    /// Per-unit records.
    pub units: Vec<UnitRecord>,
    /// Per-pilot records.
    pub pilots: Vec<SimPilotRecord>,
    /// Structured trace (state transitions).
    pub trace: TraceLog,
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
}

impl SimReport {
    /// Timing rows of all units that reached `Done`.
    pub fn done_unit_times(&self) -> Vec<UnitTimes> {
        self.units
            .iter()
            .filter(|u| u.state == UnitState::Done)
            .map(|u| u.times)
            .collect()
    }

    /// Makespan over done units (first submit → last finish), seconds.
    pub fn makespan(&self) -> f64 {
        let times = self.done_unit_times();
        metrics::makespan(times.iter())
    }

    /// Done-unit throughput, units/second.
    pub fn throughput(&self) -> f64 {
        let times = self.done_unit_times();
        metrics::throughput(times.iter())
    }

    /// Count of units in a given terminal state.
    pub fn count(&self, state: UnitState) -> usize {
        self.units.iter().filter(|u| u.state == state).count()
    }

    /// Mean pilot startup overhead (submission → first capacity), seconds.
    pub fn mean_pilot_startup(&self) -> f64 {
        let xs: Vec<f64> = self
            .pilots
            .iter()
            .filter_map(|p| p.times.startup_overhead())
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }
}

enum Ev {
    Saga { site: usize, ev: SagaIn },
    SubmitPilot(PilotId),
    SubmitUnit(UnitId),
    CancelPilot(PilotId),
    UnitStaged(UnitId, u64),
    UnitFinish(UnitId, u64),
    PolicyTick,
}

struct SimPilotRt {
    site: usize,
    desc: PilotDescription,
    state: PilotState,
    /// Cores currently delivered by the adaptor.
    capacity: u32,
    /// Cores reserved by bound units.
    used: u32,
    job: JobId,
    times: PilotTimes,
}

struct SimUnitRt {
    desc: UnitDescription,
    duration: Dist,
    state: UnitState,
    pilot: Option<PilotId>,
    times: UnitTimes,
    generation: u64,
    attempts: u32,
}

struct SystemMachine {
    adaptors: Vec<ResourceAdaptor>,
    scheduler: Box<dyn Scheduler>,
    network: NetworkModel,
    rng: SimRng,
    pilots: HashMap<PilotId, SimPilotRt>,
    units: HashMap<UnitId, SimUnitRt>,
    pending: Vec<UnitId>,
    job_owner: HashMap<(usize, JobId), PilotId>,
    next_job: u64,
    policy: Option<ScaleOutPolicy>,
    policy_extra_submitted: u32,
    trace: TraceLog,
    ids_hint: u64,
}

impl SystemMachine {
    fn now_s(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    fn feed_adaptor(&mut self, now: SimTime, site: usize, ev: SagaIn, out: &mut Outbox<Ev>) {
        let mut fx = Effects::new(now);
        self.adaptors[site].handle(now, ev, &mut fx);
        for (t, e) in fx.later {
            out.at(t, Ev::Saga { site, ev: e });
        }
        for o in fx.out {
            self.on_saga_out(now, site, o, out);
        }
    }

    fn on_saga_out(&mut self, now: SimTime, site: usize, o: SagaOut, out: &mut Outbox<Ev>) {
        match o {
            SagaOut::Queued { job } => {
                if let Some(&pid) = self.job_owner.get(&(site, job)) {
                    self.trace.mark(now, "pilot.queued", pid.0);
                }
            }
            SagaOut::CapacityUp { job, total, .. } => {
                let Some(&pid) = self.job_owner.get(&(site, job)) else {
                    return;
                };
                let p = self.pilots.get_mut(&pid).expect("owned pilot exists");
                p.capacity = total;
                if p.state == PilotState::Pending {
                    p.state = PilotState::Active;
                    p.times.active = Some(Self::now_s(now));
                    self.trace.mark(now, "pilot.active", pid.0);
                }
                self.schedule(now, out);
            }
            SagaOut::CapacityDown { job, total, .. } => {
                let Some(&pid) = self.job_owner.get(&(site, job)) else {
                    return;
                };
                let p = self.pilots.get_mut(&pid).expect("owned pilot exists");
                p.capacity = total;
                self.trace.mark(now, "pilot.capacity_down", pid.0);
                self.reclaim_overcommit(now, pid, out);
            }
            SagaOut::Done { job, outcome } => {
                let Some(&pid) = self.job_owner.get(&(site, job)) else {
                    return;
                };
                let p = self.pilots.get_mut(&pid).expect("owned pilot exists");
                if p.state.is_terminal() {
                    return;
                }
                p.state = match outcome {
                    JobOutcome::Completed | JobOutcome::WalltimeExceeded => PilotState::Done,
                    JobOutcome::Canceled => PilotState::Canceled,
                    JobOutcome::Failed | JobOutcome::Rejected => PilotState::Failed,
                };
                p.capacity = 0;
                p.times.finished = Some(Self::now_s(now));
                self.trace
                    .record(now, "pilot.done", pid.0, format!("{outcome}"));
                self.requeue_bound_units(now, pid);
                self.schedule(now, out);
            }
        }
    }

    /// After capacity loss, requeue the most recently started units until the
    /// pilot fits its remaining capacity (work on lost slots is lost).
    fn reclaim_overcommit(&mut self, now: SimTime, pid: PilotId, _out: &mut Outbox<Ev>) {
        let p = &self.pilots[&pid];
        if p.used <= p.capacity {
            return;
        }
        let mut victims: Vec<(f64, UnitId)> = self
            .units
            .iter()
            .filter(|(_, u)| u.pilot == Some(pid) && !u.state.is_terminal() && u.state != UnitState::Pending)
            .map(|(&id, u)| (u.times.started.unwrap_or(f64::MAX), id))
            .collect();
        victims.sort_by(|a, b| {
            b.0
                .partial_cmp(&a.0)
                .expect("finite times")
                .then(a.1 .0.cmp(&b.1 .0))
        });
        let mut used = p.used;
        let capacity = p.capacity;
        for (_, uid) in victims {
            if used <= capacity {
                break;
            }
            used -= self.requeue_unit(now, uid);
        }
        self.pilots.get_mut(&pid).expect("pilot exists").used = used;
    }

    /// Requeue every non-terminal unit bound to a dead pilot.
    fn requeue_bound_units(&mut self, now: SimTime, pid: PilotId) {
        let bound: Vec<UnitId> = self
            .units
            .iter()
            .filter(|(_, u)| {
                u.pilot == Some(pid) && !u.state.is_terminal() && u.state != UnitState::Pending
            })
            .map(|(&id, _)| id)
            .collect();
        for uid in bound {
            self.requeue_unit(now, uid);
        }
        self.pilots.get_mut(&pid).expect("pilot exists").used = 0;
    }

    /// Move a unit back to Pending; returns the cores it released.
    fn requeue_unit(&mut self, now: SimTime, uid: UnitId) -> u32 {
        let u = self.units.get_mut(&uid).expect("unit exists");
        u.state = UnitState::Pending;
        u.pilot = None;
        u.generation += 1;
        u.attempts += 1;
        u.times.bound = None;
        u.times.started = None;
        self.pending.push(uid);
        self.trace.mark(now, "cu.requeued", uid.0);
        u.desc.cores
    }

    fn schedule(&mut self, now: SimTime, out: &mut Outbox<Ev>) {
        self.pending
            .sort_by_key(|id| (-self.units[id].desc.priority, id.0));
        loop {
            // Full *and still-pending* pilots stay visible (with zero free
            // cores): delay-scheduling policies must be able to decide
            // "wait for that pilot" over "go remote now".
            let snapshots: Vec<PilotSnapshot> = self
                .pilots
                .iter()
                .filter(|(_, p)| {
                    (p.state == PilotState::Active && p.capacity > 0)
                        || p.state == PilotState::Pending
                })
                .map(|(&id, p)| PilotSnapshot {
                    pilot: id,
                    site: SiteId(p.site as u16),
                    total_cores: p.capacity,
                    free_cores: p.capacity.saturating_sub(p.used),
                    bound_units: 0,
                    remaining_walltime_s: p
                        .times
                        .active
                        .map(|a| a + p.desc.walltime.as_secs_f64() - Self::now_s(now))
                        .unwrap_or(0.0),
                })
                .collect();
            let mut snapshots = snapshots;
            // HashMap iteration order is not deterministic; schedulers see
            // pilots in id order so identical seeds replay identically.
            snapshots.sort_by_key(|s| s.pilot.0);
            if snapshots.is_empty() || self.pending.is_empty() {
                return;
            }
            let mut bound = None;
            for (i, &uid) in self.pending.iter().enumerate() {
                let u = &self.units[&uid];
                if let Some(pid) = self.scheduler.select(
                    &UnitRequest {
                        unit: uid,
                        desc: &u.desc,
                    },
                    &snapshots,
                ) {
                    bound = Some((i, uid, pid));
                    break;
                }
            }
            let Some((i, uid, pid)) = bound else {
                return;
            };
            self.pending.remove(i);
            self.bind(now, uid, pid, out);
        }
    }

    fn bind(&mut self, now: SimTime, uid: UnitId, pid: PilotId, out: &mut Outbox<Ev>) {
        let site;
        {
            let p = self.pilots.get_mut(&pid).expect("live pilot");
            site = p.site;
            let u = self.units.get_mut(&uid).expect("pending unit");
            assert!(
                p.capacity - p.used >= u.desc.cores,
                "scheduler over-committed pilot {pid}"
            );
            p.used += u.desc.cores;
            u.state = UnitState::Staging;
            u.pilot = Some(pid);
            u.times.bound = Some(Self::now_s(now));
        }
        self.trace.record(now, "cu.bound", uid.0, format!("{pid}"));
        // Stage-in: sequentially transfer every non-local input from its
        // first replica site (conservative; parallel staging would take the
        // max instead).
        let u = &self.units[&uid];
        let dst = SiteId(site as u16);
        let mut staging = SimDuration::ZERO;
        for input in &u.desc.inputs {
            if !input.is_local_to(dst) {
                let src = input.sites.first().copied().unwrap_or(dst);
                staging += self.network.base_transfer_time(input.size_bytes, src, dst);
            }
        }
        let gen = u.generation;
        out.after(staging, Ev::UnitStaged(uid, gen));
    }

    fn fresh_job(&mut self) -> JobId {
        let j = JobId(self.next_job);
        self.next_job += 1;
        j
    }
}

impl Machine for SystemMachine {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, out: &mut Outbox<Ev>) {
        match event {
            Ev::Saga { site, ev } => self.feed_adaptor(now, site, ev, out),
            Ev::SubmitPilot(pid) => {
                let (site, job, desc) = {
                    let p = self.pilots.get_mut(&pid).expect("registered pilot");
                    p.times.submitted = Self::now_s(now);
                    (p.site, p.job, p.desc.clone())
                };
                self.trace.mark(now, "pilot.submitted", pid.0);
                self.feed_adaptor(
                    now,
                    site,
                    SagaIn::Submit {
                        job,
                        desc: JobDescription::placeholder(desc.cores, desc.walltime),
                    },
                    out,
                );
            }
            Ev::SubmitUnit(uid) => {
                let u = self.units.get_mut(&uid).expect("registered unit");
                u.state = UnitState::Pending;
                u.times.submitted = Self::now_s(now);
                self.pending.push(uid);
                self.trace.mark(now, "cu.submitted", uid.0);
                self.schedule(now, out);
            }
            Ev::CancelPilot(pid) => {
                let Some(p) = self.pilots.get(&pid) else {
                    return;
                };
                let (site, job) = (p.site, p.job);
                self.feed_adaptor(now, site, SagaIn::Cancel(job), out);
            }
            Ev::UnitStaged(uid, gen) => {
                let Some(u) = self.units.get_mut(&uid) else {
                    return;
                };
                if u.generation != gen || u.state != UnitState::Staging {
                    return;
                }
                u.state = UnitState::Running;
                u.times.started = Some(Self::now_s(now));
                let d = self.rng.stream(uid.0).f64_range(0.0, 1.0);
                // Sample duration deterministically per (unit, attempt).
                let mut dur_rng = self.rng.stream(uid.0 ^ (u.attempts as u64) << 48);
                let _ = d;
                let dur = u.duration.sample(&mut dur_rng).max(0.0);
                self.trace.mark(now, "cu.running", uid.0);
                out.after(SimDuration::from_secs_f64(dur), Ev::UnitFinish(uid, gen));
            }
            Ev::UnitFinish(uid, gen) => {
                let Some(u) = self.units.get_mut(&uid) else {
                    return;
                };
                if u.generation != gen || u.state != UnitState::Running {
                    return;
                }
                u.state = UnitState::Done;
                u.times.finished = Some(Self::now_s(now));
                let pid = u.pilot.expect("running unit has a pilot");
                let cores = u.desc.cores;
                if let Some(p) = self.pilots.get_mut(&pid) {
                    p.used = p.used.saturating_sub(cores);
                }
                self.trace.mark(now, "cu.done", uid.0);
                self.schedule(now, out);
            }
            Ev::PolicyTick => {
                let Some(policy) = self.policy.clone() else {
                    return;
                };
                if self.pending.len() > policy.queue_threshold
                    && self.policy_extra_submitted < policy.max_extra
                {
                    self.policy_extra_submitted += 1;
                    let pid = PilotId(u64::MAX - u64::from(self.policy_extra_submitted));
                    let job = self.fresh_job();
                    let site = policy.burst_site.0 as usize;
                    self.pilots.insert(
                        pid,
                        SimPilotRt {
                            site,
                            desc: policy.pilot.clone(),
                            state: PilotState::Pending,
                            capacity: 0,
                            used: 0,
                            job,
                            times: PilotTimes {
                                submitted: Self::now_s(now),
                                ..Default::default()
                            },
                        },
                    );
                    self.job_owner.insert((site, job), pid);
                    self.trace.mark(now, "policy.scale_out", pid.0);
                    out.immediately(Ev::SubmitPilot(pid));
                }
                out.after(policy.check_every, Ev::PolicyTick);
            }
        }
        let _ = self.ids_hint;
    }
}

/// Builder/driver for simulated pilot-system runs.
pub struct SimPilotSystem {
    exec: Executor<SystemMachine>,
    ids: IdGen,
}

impl SimPilotSystem {
    /// New system with the given seed and a first-fit scheduler.
    pub fn new(seed: u64) -> Self {
        let machine = SystemMachine {
            adaptors: Vec::new(),
            scheduler: Box::new(crate::scheduler::FirstFitScheduler),
            network: NetworkModel::new(&[]),
            rng: SimRng::new(seed),
            pilots: HashMap::new(),
            units: HashMap::new(),
            pending: Vec::new(),
            job_owner: HashMap::new(),
            next_job: 1,
            policy: None,
            policy_extra_submitted: 0,
            trace: TraceLog::new(),
            ids_hint: 0,
        };
        SimPilotSystem {
            exec: Executor::new(machine),
            ids: IdGen::new(),
        }
    }

    /// Register an infrastructure; returns the site id schedulers will see.
    /// The adaptor's background processes (batch arrivals, match cycles) are
    /// primed automatically.
    pub fn add_resource(&mut self, adaptor: ResourceAdaptor) -> SiteId {
        let site = self.exec.machine().adaptors.len();
        for (t, ev) in adaptor.initial_inputs() {
            self.exec.schedule_at(t, Ev::Saga { site, ev });
        }
        let m = self.exec.machine_mut();
        m.adaptors.push(adaptor);
        // Keep the network's site table in step with adaptor indices.
        let names: Vec<String> = (0..m.adaptors.len()).map(|i| format!("site-{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let old = std::mem::replace(&mut m.network, NetworkModel::new(&name_refs));
        // Preserve nothing from the default; custom networks are set after
        // all resources are added via `set_network`.
        drop(old);
        SiteId(site as u16)
    }

    /// Replace the late-binding scheduler.
    pub fn set_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        self.exec.machine_mut().scheduler = scheduler;
    }

    /// Replace the network model (after all resources are added).
    pub fn set_network(&mut self, network: NetworkModel) {
        self.exec.machine_mut().network = network;
    }

    /// Install an adaptive scale-out policy.
    pub fn set_scale_out(&mut self, policy: ScaleOutPolicy) {
        let every = policy.check_every;
        self.exec.machine_mut().policy = Some(policy);
        self.exec.schedule_at(SimTime::ZERO + every, Ev::PolicyTick);
    }

    /// Disable tracing (large sweeps).
    pub fn disable_trace(&mut self) {
        self.exec.machine_mut().trace = TraceLog::disabled();
    }

    /// Submit a pilot at virtual time `at`.
    pub fn submit_pilot(&mut self, at: SimTime, site: SiteId, desc: PilotDescription) -> PilotId {
        let pid = self.ids.pilot();
        let m = self.exec.machine_mut();
        let job = m.fresh_job();
        assert!(
            (site.0 as usize) < m.adaptors.len(),
            "unknown site {site}"
        );
        m.pilots.insert(
            pid,
            SimPilotRt {
                site: site.0 as usize,
                desc,
                state: PilotState::Pending,
                capacity: 0,
                used: 0,
                job,
                times: PilotTimes::default(),
            },
        );
        m.job_owner.insert((site.0 as usize, job), pid);
        self.exec.schedule_at(at, Ev::SubmitPilot(pid));
        pid
    }

    /// Submit a unit at virtual time `at` with a sampled duration model.
    pub fn submit_unit(&mut self, at: SimTime, desc: UnitDescription, duration: Dist) -> UnitId {
        let uid = self.ids.unit();
        self.exec.machine_mut().units.insert(
            uid,
            SimUnitRt {
                desc,
                duration,
                state: UnitState::New,
                pilot: None,
                times: UnitTimes::default(),
                generation: 0,
                attempts: 0,
            },
        );
        self.exec.schedule_at(at, Ev::SubmitUnit(uid));
        uid
    }

    /// Submit a unit with a fixed duration in seconds.
    pub fn submit_unit_fixed(&mut self, at: SimTime, desc: UnitDescription, duration_s: f64) -> UnitId {
        self.submit_unit(at, desc, Dist::constant(duration_s))
    }

    /// Schedule a pilot cancellation.
    pub fn cancel_pilot(&mut self, at: SimTime, pilot: PilotId) {
        self.exec.schedule_at(at, Ev::CancelPilot(pilot));
    }

    /// Run until quiescence or `until`, whichever first; consume into a report.
    pub fn run(mut self, until: SimTime) -> SimReport {
        self.exec.run_until(until);
        let end_time = self.exec.now();
        let m = self.exec.into_machine();
        let mut units: Vec<UnitRecord> = m
            .units
            .iter()
            .map(|(&unit, u)| UnitRecord {
                unit,
                pilot: u.pilot,
                times: u.times,
                state: u.state,
                tag: u.desc.tag.clone(),
            })
            .collect();
        units.sort_by_key(|u| u.unit.0);
        let mut pilots: Vec<SimPilotRecord> = m
            .pilots
            .iter()
            .map(|(&pilot, p)| SimPilotRecord {
                pilot,
                site: SiteId(p.site as u16),
                label: p.desc.label.clone(),
                state: p.state,
                times: p.times,
            })
            .collect();
        pilots.sort_by_key(|p| p.pilot.0);
        SimReport {
            units,
            pilots,
            trace: m.trace,
            end_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::DataAwareScheduler;
    use crate::describe::DataLocation;
    use pilot_infra::cloud::{CloudConfig, CloudProvider};
    use pilot_infra::hpc::{BackgroundLoad, HpcCluster, HpcConfig};
    use pilot_infra::htc::{HtcConfig, HtcPool};

    fn quiet_hpc(cores: u32) -> ResourceAdaptor {
        ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet("hpc", cores)))
    }

    #[test]
    fn pilot_runs_units_in_virtual_time() {
        let mut sys = SimPilotSystem::new(1);
        let site = sys.add_resource(quiet_hpc(16));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(8, SimDuration::from_hours(1)).labeled("p"),
        );
        for _ in 0..16 {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 30.0);
        }
        let report = sys.run(SimTime::from_hours(2));
        assert_eq!(report.count(UnitState::Done), 16);
        // 16 units × 30 s on 8 cores = two waves ≈ 60 s + 1 s dispatch.
        let mk = report.makespan();
        assert!((60.0..70.0).contains(&mk), "makespan {mk}");
        assert_eq!(report.pilots.len(), 1);
        assert!(report.pilots[0].times.startup_overhead().unwrap() >= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sys = SimPilotSystem::new(seed);
            let site = sys.add_resource(quiet_hpc(32));
            sys.submit_pilot(
                SimTime::ZERO,
                site,
                PilotDescription::new(16, SimDuration::from_hours(4)),
            );
            for i in 0..40 {
                sys.submit_unit(
                    SimTime::from_secs(i),
                    UnitDescription::new(1),
                    Dist::exponential(25.0),
                );
            }
            let r = sys.run(SimTime::from_hours(8));
            (r.makespan(), r.throughput(), r.trace.len())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds, different durations");
    }

    #[test]
    fn unit_waits_until_pilot_capacity_arrives() {
        let mut sys = SimPilotSystem::new(2);
        let site = sys.add_resource(quiet_hpc(8));
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 10.0);
        sys.submit_pilot(
            SimTime::from_secs(100),
            site,
            PilotDescription::new(4, SimDuration::from_hours(1)),
        );
        let report = sys.run(SimTime::from_hours(2));
        let u = &report.units[0];
        assert_eq!(u.state, UnitState::Done);
        assert!(u.times.wait().unwrap() >= 100.0, "late binding wait");
    }

    #[test]
    fn pilot_walltime_expiry_requeues_running_units() {
        let mut sys = SimPilotSystem::new(3);
        let site = sys.add_resource(quiet_hpc(8));
        // Short pilot; long unit cannot finish inside it.
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(4, SimDuration::from_secs(50)),
        );
        // Second pilot arrives later and rescues the unit.
        sys.submit_pilot(
            SimTime::from_secs(200),
            site,
            PilotDescription::new(4, SimDuration::from_hours(1)),
        );
        let u = sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 120.0);
        let report = sys.run(SimTime::from_hours(2));
        let rec = report.units.iter().find(|r| r.unit == u).unwrap();
        assert_eq!(rec.state, UnitState::Done);
        assert!(
            report.trace.of_kind("cu.requeued").count() >= 1,
            "unit must be requeued when pilot 1 expires"
        );
        // It finished on the second pilot, well after 200 s.
        assert!(rec.times.finished.unwrap() >= 320.0);
    }

    #[test]
    fn htc_incremental_capacity_feeds_scheduler() {
        let mut sys = SimPilotSystem::new(4);
        let site = sys.add_resource(ResourceAdaptor::htc(HtcPool::new(HtcConfig::reliable(
            "osg", 8,
        ))));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(8, SimDuration::from_hours(2)),
        );
        for _ in 0..16 {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 60.0);
        }
        let report = sys.run(SimTime::from_hours(4));
        assert_eq!(report.count(UnitState::Done), 16);
        // Glide-in startup: first capacity near the 30 s match cycle.
        let startup = report.pilots[0].times.startup_overhead().unwrap();
        assert!((30.0..45.0).contains(&startup), "startup {startup}");
    }

    #[test]
    fn cloud_pilot_costs_money_and_boots_fast() {
        let mut sys = SimPilotSystem::new(5);
        let site = sys.add_resource(ResourceAdaptor::cloud(CloudProvider::new(
            CloudConfig::generic("aws", 512),
        )));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(64, SimDuration::from_hours(1)),
        );
        for _ in 0..32 {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 120.0);
        }
        let report = sys.run(SimTime::from_hours(3));
        assert_eq!(report.count(UnitState::Done), 32);
        let startup = report.pilots[0].times.startup_overhead().unwrap();
        assert!((45.0..=90.0).contains(&startup), "boot window, got {startup}");
    }

    #[test]
    fn data_aware_scheduler_places_units_at_data() {
        let mut sys = SimPilotSystem::new(6);
        let a = sys.add_resource(quiet_hpc(16));
        let b = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
            "hpc-b", 16,
        ))));
        sys.set_scheduler(Box::new(DataAwareScheduler));
        sys.submit_pilot(
            SimTime::ZERO,
            a,
            PilotDescription::new(8, SimDuration::from_hours(1)),
        );
        sys.submit_pilot(
            SimTime::ZERO,
            b,
            PilotDescription::new(8, SimDuration::from_hours(1)),
        );
        // All data lives at site b.
        for _ in 0..8 {
            sys.submit_unit_fixed(
                SimTime::from_secs(10),
                UnitDescription::new(1)
                    .with_inputs(vec![DataLocation::new(500_000_000, vec![b])]),
                20.0,
            );
        }
        let report = sys.run(SimTime::from_hours(1));
        assert_eq!(report.count(UnitState::Done), 8);
        let b_pilot = report.pilots.iter().find(|p| p.site == b).unwrap().pilot;
        assert!(
            report.units.iter().all(|u| u.pilot == Some(b_pilot)),
            "all units should land at the data"
        );
        // No staging cost at the local site.
        for u in &report.units {
            assert!(u.times.staging().unwrap() < 0.1);
        }
    }

    #[test]
    fn remote_data_pays_staging_time() {
        let mut sys = SimPilotSystem::new(7);
        let a = sys.add_resource(quiet_hpc(16));
        let b_site = SiteId(1); // no pilot there; data is remote
        sys.submit_pilot(
            SimTime::ZERO,
            a,
            PilotDescription::new(8, SimDuration::from_hours(1)),
        );
        let _ = b_site;
        sys.submit_unit_fixed(
            SimTime::ZERO,
            UnitDescription::new(1)
                .with_inputs(vec![DataLocation::new(1_000_000_000, vec![SiteId(1)])]),
            10.0,
        );
        let report = sys.run(SimTime::from_hours(1));
        let u = &report.units[0];
        assert_eq!(u.state, UnitState::Done);
        // 1 GB over the 100 MB/s WAN default ≈ 10 s staging.
        let staging = u.times.staging().unwrap();
        assert!((9.0..12.0).contains(&staging), "staging {staging}");
    }

    #[test]
    fn scale_out_policy_adds_cloud_pilot_under_backlog() {
        let mut sys = SimPilotSystem::new(8);
        let hpc = sys.add_resource(quiet_hpc(8));
        let cloud = sys.add_resource(ResourceAdaptor::cloud(CloudProvider::new(
            CloudConfig::generic("burst", 256),
        )));
        sys.submit_pilot(
            SimTime::ZERO,
            hpc,
            PilotDescription::new(4, SimDuration::from_hours(4)),
        );
        sys.set_scale_out(ScaleOutPolicy {
            check_every: SimDuration::from_secs(60),
            queue_threshold: 10,
            burst_site: cloud,
            pilot: PilotDescription::new(64, SimDuration::from_hours(2)).labeled("burst"),
            max_extra: 1,
        });
        for _ in 0..100 {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 120.0);
        }
        let report = sys.run(SimTime::from_hours(6));
        assert_eq!(report.count(UnitState::Done), 100);
        assert_eq!(report.pilots.len(), 2, "policy must add one pilot");
        assert!(report.trace.of_kind("policy.scale_out").count() == 1);
        let burst = report.pilots.iter().find(|p| p.label == "burst").unwrap();
        assert_eq!(burst.site, cloud);
        // With 64 extra cores the backlog drains far faster than 100×120/4 s.
        assert!(report.makespan() < 1500.0, "makespan {}", report.makespan());
    }

    #[test]
    fn queue_contention_delays_pilot_startup() {
        let bg = BackgroundLoad::at_utilization(
            0.85,
            64,
            Dist::constant(16.0),
            Dist::exponential(1200.0),
        );
        let busy = HpcCluster::new(HpcConfig::quiet("busy", 64).with_background(bg));
        let mut sys = SimPilotSystem::new(9);
        let site = sys.add_resource(ResourceAdaptor::hpc(busy));
        sys.submit_pilot(
            SimTime::from_secs(8000),
            site,
            PilotDescription::new(32, SimDuration::from_hours(2)),
        );
        sys.submit_unit_fixed(SimTime::from_secs(8000), UnitDescription::new(1), 10.0);
        let report = sys.run(SimTime::from_hours(24));
        let startup = report.pilots[0].times.startup_overhead();
        assert!(
            startup.map(|s| s > 10.0).unwrap_or(false),
            "busy queue should delay the pilot, got {startup:?}"
        );
    }

    #[test]
    fn multicore_units_pack_within_capacity() {
        let mut sys = SimPilotSystem::new(10);
        let site = sys.add_resource(quiet_hpc(16));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(8, SimDuration::from_hours(1)),
        );
        // Two 4-core units fit together; the third waits.
        for _ in 0..3 {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(4), 100.0);
        }
        let report = sys.run(SimTime::from_hours(1));
        assert_eq!(report.count(UnitState::Done), 3);
        let mut starts: Vec<f64> = report
            .units
            .iter()
            .map(|u| u.times.started.unwrap())
            .collect();
        starts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(starts[1] - starts[0] < 1.0, "first two run together");
        assert!(starts[2] - starts[0] >= 100.0, "third waits for a slot");
    }
}
