//! Virtual-time backend: the full pilot system — adaptors, late-binding
//! scheduler, data staging, adaptive policies — as one deterministic
//! discrete-event machine.
//!
//! Pilots are placeholder jobs on `pilot-saga` adaptors (HPC/HTC/cloud/YARN);
//! capacity arrives and leaves through the adaptors' uniform alphabet. Units
//! carry duration *models* instead of kernels; staging cost comes from the
//! site-to-site [`NetworkModel`]. Everything is reproducible from a seed,
//! which is what lets the experiment harness sweep hundreds of configurations
//! (EXP PJ-1/PJ-4/IO-1/DY-1) in milliseconds.

use crate::binding::{self, BindStats, PendingQueue};
use crate::describe::{PilotDescription, UnitDescription};
use crate::ids::{IdGen, PilotId, UnitId};
use crate::metrics::{self, PilotTimes, UnitRecord, UnitTimes};
use crate::retry::{streams, FailureTracker, FaultPlan, ReliabilityStats};
use crate::scheduler::{PilotSnapshot, Scheduler};
use crate::state::{PilotState, UnitState};
use pilot_infra::component::{Component, Effects};
use pilot_infra::network::NetworkModel;
use pilot_infra::types::{JobId, JobOutcome, SiteId};
use pilot_saga::{JobDescription, ResourceAdaptor, SagaIn, SagaOut};
use pilot_sim::{Dist, Executor, Machine, Outbox, SimDuration, SimRng, SimTime, TraceLog};
use std::collections::HashMap;

/// Rule for runtime scale-out (the paper's R3 dynamism requirement, \[63\]):
/// when the pending-unit backlog exceeds a threshold, submit an extra pilot
/// on a designated (typically cloud) site.
#[derive(Clone, Debug)]
pub struct ScaleOutPolicy {
    /// How often to evaluate the rule.
    pub check_every: SimDuration,
    /// Backlog size that triggers scale-out.
    pub queue_threshold: usize,
    /// Site to scale out onto.
    pub burst_site: SiteId,
    /// Pilot to submit when triggered.
    pub pilot: PilotDescription,
    /// Maximum number of extra pilots.
    pub max_extra: u32,
}

/// Record of one pilot in a finished simulation.
#[derive(Clone, Debug)]
pub struct SimPilotRecord {
    /// Pilot id.
    pub pilot: PilotId,
    /// Site it was submitted to.
    pub site: SiteId,
    /// Label from the description.
    pub label: String,
    /// Terminal (or last) state.
    pub state: PilotState,
    /// Timestamps (virtual seconds).
    pub times: PilotTimes,
}

/// Results of a simulated run.
#[derive(Debug)]
pub struct SimReport {
    /// Per-unit records.
    pub units: Vec<UnitRecord>,
    /// Per-pilot records.
    pub pilots: Vec<SimPilotRecord>,
    /// Structured trace (state transitions).
    pub trace: TraceLog,
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
    /// Reliability counters (attempts, requeues, wasted work, recovery).
    pub reliability: ReliabilityStats,
    /// Late-binding hot-path counters (passes, snapshot builds, binds).
    pub bind: BindStats,
}

impl SimReport {
    /// Timing rows of all units that reached `Done`.
    pub fn done_unit_times(&self) -> Vec<UnitTimes> {
        self.units
            .iter()
            .filter(|u| u.state == UnitState::Done)
            .map(|u| u.times)
            .collect()
    }

    /// Makespan over done units (first submit → last finish), seconds.
    pub fn makespan(&self) -> f64 {
        let times = self.done_unit_times();
        metrics::makespan(times.iter())
    }

    /// Done-unit throughput, units/second.
    pub fn throughput(&self) -> f64 {
        let times = self.done_unit_times();
        metrics::throughput(times.iter())
    }

    /// Count of units in a given terminal state.
    pub fn count(&self, state: UnitState) -> usize {
        self.units.iter().filter(|u| u.state == state).count()
    }

    /// Mean pilot startup overhead (submission → first capacity), seconds.
    pub fn mean_pilot_startup(&self) -> f64 {
        let xs: Vec<f64> = self
            .pilots
            .iter()
            .filter_map(|p| p.times.startup_overhead())
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }
}

/// Why an execution attempt was aborted (carried in `Ev::UnitFail`).
#[derive(Clone, Copy, Debug)]
enum FailKind {
    /// Injected kernel fault from the fault plan.
    Fault,
    /// The unit's deadline expired mid-execution.
    Deadline,
}

enum Ev {
    Saga {
        site: usize,
        ev: SagaIn,
    },
    SubmitPilot(PilotId),
    SubmitUnit(UnitId),
    CancelPilot(PilotId),
    UnitStaged(UnitId, u64),
    UnitFinish(UnitId, u64),
    /// A running attempt fails (generation-guarded like `UnitFinish`).
    UnitFail(UnitId, u64, FailKind),
    /// A stage-in attempt fails transiently.
    StagingFail(UnitId, u64),
    /// Backoff elapsed: a failed unit re-enters the late-binding queue.
    RetryRelease(UnitId, u64),
    /// Injected pilot crash from the fault plan.
    PilotCrash(PilotId),
    /// Dirty-flag wakeup: run one batched late-binding pass covering every
    /// capacity change posted at this instant.
    BindPass,
    PolicyTick,
}

struct SimPilotRt {
    site: usize,
    desc: PilotDescription,
    state: PilotState,
    /// Cores currently delivered by the adaptor.
    capacity: u32,
    /// Cores reserved by bound units.
    used: u32,
    job: JobId,
    times: PilotTimes,
}

struct SimUnitRt {
    desc: UnitDescription,
    duration: Dist,
    state: UnitState,
    pilot: Option<PilotId>,
    times: UnitTimes,
    generation: u64,
    attempts: u32,
    /// When the last failed attempt happened; consumed at the next bind to
    /// measure time-to-recovery.
    failed_at: Option<f64>,
}

struct SystemMachine {
    adaptors: Vec<ResourceAdaptor>,
    scheduler: Box<dyn Scheduler>,
    network: NetworkModel,
    rng: SimRng,
    pilots: HashMap<PilotId, SimPilotRt>,
    units: HashMap<UnitId, SimUnitRt>,
    pending: PendingQueue,
    /// A `BindPass` event is already queued for the current instant.
    sched_dirty: bool,
    job_owner: HashMap<(usize, JobId), PilotId>,
    next_job: u64,
    policy: Option<ScaleOutPolicy>,
    policy_extra_submitted: u32,
    trace: TraceLog,
    ids_hint: u64,
    faults: FaultPlan,
    tracker: FailureTracker,
    rel: ReliabilityStats,
    stats: BindStats,
}

impl SystemMachine {
    fn now_s(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    fn feed_adaptor(&mut self, now: SimTime, site: usize, ev: SagaIn, out: &mut Outbox<Ev>) {
        let mut fx = Effects::new(now);
        self.adaptors[site].handle(now, ev, &mut fx);
        for (t, e) in fx.later {
            out.at(t, Ev::Saga { site, ev: e });
        }
        for o in fx.out {
            self.on_saga_out(now, site, o, out);
        }
    }

    fn on_saga_out(&mut self, now: SimTime, site: usize, o: SagaOut, out: &mut Outbox<Ev>) {
        match o {
            SagaOut::Queued { job } => {
                if let Some(&pid) = self.job_owner.get(&(site, job)) {
                    self.trace.mark(now, "pilot.queued", pid.0);
                }
            }
            SagaOut::CapacityUp { job, total, .. } => {
                let Some(&pid) = self.job_owner.get(&(site, job)) else {
                    return;
                };
                let Some(p) = self.pilots.get_mut(&pid) else {
                    debug_assert!(false, "job_owner points at missing pilot {pid}");
                    return;
                };
                p.capacity = total;
                if p.state == PilotState::Pending {
                    PilotState::advance(&mut p.state, PilotState::Active);
                    p.times.active = Some(Self::now_s(now));
                    self.trace.mark(now, "pilot.active", pid.0);
                    // Arm the injected crash clock for this pilot: one
                    // exponential draw from a stream keyed by pilot id, so
                    // replays with the same seed crash at the same instants.
                    if let Some(mtbf) = self.faults.pilot_crash_mtbf_s {
                        let mut r = self
                            .rng
                            .stream(streams::keyed(streams::PILOT_CRASH, pid.0, 0));
                        let ttf = r.exponential(mtbf);
                        out.after(SimDuration::from_secs_f64(ttf), Ev::PilotCrash(pid));
                    }
                }
                self.schedule(now, out);
            }
            SagaOut::CapacityDown { job, total, .. } => {
                let Some(&pid) = self.job_owner.get(&(site, job)) else {
                    return;
                };
                let Some(p) = self.pilots.get_mut(&pid) else {
                    debug_assert!(false, "job_owner points at missing pilot {pid}");
                    return;
                };
                p.capacity = total;
                self.trace.mark(now, "pilot.capacity_down", pid.0);
                self.reclaim_overcommit(now, pid, out);
            }
            SagaOut::Done { job, outcome } => {
                let Some(&pid) = self.job_owner.get(&(site, job)) else {
                    return;
                };
                let Some(p) = self.pilots.get_mut(&pid) else {
                    debug_assert!(false, "job_owner points at missing pilot {pid}");
                    return;
                };
                if p.state.is_terminal() {
                    return;
                }
                let target = match outcome {
                    JobOutcome::Completed | JobOutcome::WalltimeExceeded => PilotState::Done,
                    JobOutcome::Canceled => PilotState::Canceled,
                    JobOutcome::Failed | JobOutcome::Rejected => PilotState::Failed,
                };
                if PilotState::try_advance(&mut p.state, target).is_err() {
                    // A pilot whose job ends before it ever activated did no
                    // work: it ends `Canceled` (`Pending -> Done` is not an
                    // edge in the P* machine).
                    PilotState::advance(&mut p.state, PilotState::Canceled);
                }
                p.capacity = 0;
                p.times.finished = Some(Self::now_s(now));
                self.trace
                    .record(now, "pilot.done", pid.0, format!("{outcome}"));
                self.requeue_bound_units(now, pid);
                self.schedule(now, out);
            }
        }
    }

    /// After capacity loss, requeue the most recently started units until the
    /// pilot fits its remaining capacity (work on lost slots is lost).
    fn reclaim_overcommit(&mut self, now: SimTime, pid: PilotId, _out: &mut Outbox<Ev>) {
        let p = &self.pilots[&pid];
        if p.used <= p.capacity {
            return;
        }
        let mut victims: Vec<(f64, UnitId)> = self
            .units
            .iter()
            .filter(|(_, u)| {
                u.pilot == Some(pid) && !u.state.is_terminal() && u.state != UnitState::Pending
            })
            .map(|(&id, u)| (u.times.started.unwrap_or(f64::MAX), id))
            .collect();
        victims.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1 .0.cmp(&b.1 .0)));
        let mut used = p.used;
        let capacity = p.capacity;
        for (_, uid) in victims {
            if used <= capacity {
                break;
            }
            used -= self.requeue_unit(now, uid);
        }
        if let Some(p) = self.pilots.get_mut(&pid) {
            p.used = used;
        }
    }

    /// Requeue every non-terminal unit bound to a dead pilot.
    fn requeue_bound_units(&mut self, now: SimTime, pid: PilotId) {
        let mut bound: Vec<UnitId> = self
            .units
            .iter()
            .filter(|(_, u)| {
                u.pilot == Some(pid) && !u.state.is_terminal() && u.state != UnitState::Pending
            })
            .map(|(&id, _)| id)
            .collect();
        // HashMap iteration order is nondeterministic; process in id order so
        // replays accumulate float metrics identically.
        bound.sort_by_key(|u| u.0);
        for uid in bound {
            self.requeue_unit(now, uid);
        }
        if let Some(p) = self.pilots.get_mut(&pid) {
            p.used = 0;
        }
    }

    /// Move a unit back to Pending; returns the cores it released.
    ///
    /// This is the *planned* rebinding path (walltime expiry, capacity
    /// reclaim): the resource went away, the unit did not fail, so the retry
    /// budget is not charged.
    fn requeue_unit(&mut self, now: SimTime, uid: UnitId) -> u32 {
        let Some(u) = self.units.get_mut(&uid) else {
            debug_assert!(false, "requeue of unknown unit {uid}");
            return 0;
        };
        if u.state == UnitState::Running {
            // The in-flight attempt dies with its resource; the machine has
            // no `Running -> Pending` edge, so the planned rebind routes
            // through `Failed`. The retry budget is deliberately not charged.
            UnitState::advance(&mut u.state, UnitState::Failed);
        }
        UnitState::advance(&mut u.state, UnitState::Pending);
        u.pilot = None;
        u.generation += 1;
        u.times.bound = None;
        u.times.started = None;
        let priority = u.desc.priority;
        self.pending.push(uid, priority);
        self.rel.rebinds += 1;
        self.trace.mark(now, "cu.requeued", uid.0);
        u.desc.cores
    }

    /// One execution/staging attempt failed. Charges the retry budget and
    /// either re-enters the late-binding queue (after backoff) or fails the
    /// unit terminally once the budget is exhausted.
    fn fail_attempt(&mut self, now: SimTime, uid: UnitId, reason: &str, out: &mut Outbox<Ev>) {
        let now_s = Self::now_s(now);
        let (pid, cores, retry, attempts) = {
            let Some(u) = self.units.get_mut(&uid) else {
                debug_assert!(false, "failed attempt for unknown unit {uid}");
                return;
            };
            if let Some(s) = u.times.started {
                self.rel.wasted_work_s += now_s - s;
            }
            u.generation += 1;
            u.attempts += 1;
            UnitState::advance(&mut u.state, UnitState::Failed);
            (u.pilot, u.desc.cores, u.desc.retry, u.attempts)
        };
        self.trace
            .record(now, "cu.failed", uid.0, reason.to_string());
        if let Some(pid) = pid {
            if let Some(p) = self.pilots.get_mut(&pid) {
                p.used = p.used.saturating_sub(cores);
            }
            if self.tracker.record_failure(pid) {
                self.rel.blacklisted_pilots += 1;
                self.trace.mark(now, "pilot.blacklisted", pid.0);
            }
        }
        let Some(u) = self.units.get_mut(&uid) else {
            return;
        };
        u.pilot = None;
        u.times.bound = None;
        u.times.started = None;
        if retry.allows_retry(attempts) {
            self.rel.requeues += 1;
            u.failed_at = Some(now_s);
            let mut jitter =
                self.rng
                    .stream(streams::keyed(streams::BACKOFF_JITTER, uid.0, attempts));
            let delay = retry.delay_s(attempts, &mut jitter);
            let gen = u.generation;
            out.after(
                SimDuration::from_secs_f64(delay),
                Ev::RetryRelease(uid, gen),
            );
        } else {
            u.times.finished = Some(now_s);
            self.rel.exhausted_units += 1;
            self.trace.mark(now, "cu.exhausted", uid.0);
        }
        // Either way cores were released; other pending units may now fit.
        self.schedule(now, out);
    }

    /// Request a late-binding pass. Posts one `BindPass` event for the
    /// current instant; every capacity change arriving before it fires is
    /// covered by the same pass (dirty-flag wakeup).
    fn schedule(&mut self, _now: SimTime, out: &mut Outbox<Ev>) {
        if !self.sched_dirty {
            self.sched_dirty = true;
            out.immediately(Ev::BindPass);
        }
    }

    /// One batched late-binding pass: build the pilot snapshots once, offer
    /// every pending unit in priority order, and apply capacity deltas to the
    /// in-memory snapshots after each bind. Binding only shrinks capacity, so
    /// a refused unit cannot become bindable later in the same pass and the
    /// placements match the old rebuild-per-bind loop (see `crate::binding`).
    fn bind_pass(&mut self, now: SimTime, out: &mut Outbox<Ev>) {
        if self.pending.is_empty() {
            return;
        }
        // Full *and still-pending* pilots stay visible (with zero free
        // cores): delay-scheduling policies must be able to decide
        // "wait for that pilot" over "go remote now".
        let mut snapshots: Vec<PilotSnapshot> = self
            .pilots
            .iter()
            .filter(|(id, p)| {
                ((p.state == PilotState::Active && p.capacity > 0)
                    || p.state == PilotState::Pending)
                    && !self.tracker.is_blacklisted(**id)
            })
            .map(|(&id, p)| PilotSnapshot {
                pilot: id,
                site: SiteId(p.site as u16),
                total_cores: p.capacity,
                free_cores: p.capacity.saturating_sub(p.used),
                bound_units: 0,
                remaining_walltime_s: p
                    .times
                    .active
                    .map(|a| a + p.desc.walltime.as_secs_f64() - Self::now_s(now))
                    .unwrap_or(0.0),
            })
            .collect();
        if snapshots.is_empty() {
            return;
        }
        // HashMap iteration order is not deterministic; schedulers see
        // pilots in id order so identical seeds replay identically.
        snapshots.sort_by_key(|s| s.pilot.0);
        // Shared with the thread backend and the fabric host daemons:
        // placements are decided by `binding::queue_pass` and committed
        // afterwards (the unit table stays borrowed shared during the scan).
        let units = &self.units;
        let outcome = binding::queue_pass(
            self.scheduler.as_mut(),
            &mut snapshots,
            &mut self.pending,
            |uid| {
                units
                    .get(&uid)
                    .filter(|u| u.state == UnitState::Pending)
                    .map(|u| &u.desc)
            },
        );
        self.stats
            .note_pass(snapshots.len(), outcome.offered, outcome.binds.len() as u64);
        for (uid, pid) in outcome.binds {
            self.bind(now, uid, pid, out);
        }
    }

    fn bind(&mut self, now: SimTime, uid: UnitId, pid: PilotId, out: &mut Outbox<Ev>) {
        let site;
        {
            // The bind pass only offers live pending units to live pilots;
            // skipping a phantom bind keeps the event loop alive (the unit
            // stays pending for the next pass).
            let Some(p) = self.pilots.get_mut(&pid) else {
                debug_assert!(false, "bind: scheduler returned dead pilot {pid}");
                return;
            };
            site = p.site;
            let Some(u) = self.units.get_mut(&uid) else {
                debug_assert!(false, "bind: pending unit {uid} vanished");
                return;
            };
            assert!(
                p.capacity - p.used >= u.desc.cores,
                "scheduler over-committed pilot {pid}"
            );
            p.used += u.desc.cores;
            // Sim units pass through `Assigned` instantaneously: binding and
            // stage-in begin at the same virtual instant.
            UnitState::advance(&mut u.state, UnitState::Assigned);
            UnitState::advance(&mut u.state, UnitState::Staging);
            u.pilot = Some(pid);
            u.times.bound = Some(Self::now_s(now));
            // A rebind after a failure completes a recovery.
            if let Some(f) = u.failed_at.take() {
                self.rel.recovery_s += Self::now_s(now) - f;
                self.rel.recoveries += 1;
            }
        }
        self.trace.record(now, "cu.bound", uid.0, format!("{pid}"));
        // Stage-in: sequentially transfer every non-local input from its
        // first replica site (conservative; parallel staging would take the
        // max instead).
        let u = &self.units[&uid];
        let dst = SiteId(site as u16);
        let mut staging = SimDuration::ZERO;
        for input in &u.desc.inputs {
            if !input.is_local_to(dst) {
                let src = input.sites.first().copied().unwrap_or(dst);
                staging += self.network.base_transfer_time(input.size_bytes, src, dst);
            }
        }
        let gen = u.generation;
        // Transient stage-in fault: the transfer runs (and pays its time)
        // but fails at the end, charging one attempt.
        let mut fault_rng =
            self.rng
                .stream(streams::keyed(streams::STAGING_FAULT, uid.0, u.attempts));
        if self.faults.staging_failure_p > 0.0 && fault_rng.bool(self.faults.staging_failure_p) {
            out.after(staging, Ev::StagingFail(uid, gen));
        } else {
            out.after(staging, Ev::UnitStaged(uid, gen));
        }
    }

    fn fresh_job(&mut self) -> JobId {
        let j = JobId(self.next_job);
        self.next_job += 1;
        j
    }
}

impl Machine for SystemMachine {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, out: &mut Outbox<Ev>) {
        match event {
            Ev::Saga { site, ev } => self.feed_adaptor(now, site, ev, out),
            Ev::SubmitPilot(pid) => {
                let (site, job, desc) = {
                    let Some(p) = self.pilots.get_mut(&pid) else {
                        debug_assert!(false, "submit event for unknown pilot {pid}");
                        return;
                    };
                    p.times.submitted = Self::now_s(now);
                    (p.site, p.job, p.desc.clone())
                };
                self.trace.mark(now, "pilot.submitted", pid.0);
                self.feed_adaptor(
                    now,
                    site,
                    SagaIn::Submit {
                        job,
                        desc: JobDescription::placeholder(desc.cores, desc.walltime),
                    },
                    out,
                );
            }
            Ev::SubmitUnit(uid) => {
                let Some(u) = self.units.get_mut(&uid) else {
                    debug_assert!(false, "submit event for unknown unit {uid}");
                    return;
                };
                UnitState::advance(&mut u.state, UnitState::Pending);
                u.times.submitted = Self::now_s(now);
                let priority = u.desc.priority;
                self.pending.push(uid, priority);
                self.trace.mark(now, "cu.submitted", uid.0);
                self.schedule(now, out);
            }
            Ev::CancelPilot(pid) => {
                let Some(p) = self.pilots.get(&pid) else {
                    return;
                };
                let (site, job) = (p.site, p.job);
                self.feed_adaptor(now, site, SagaIn::Cancel(job), out);
            }
            Ev::UnitStaged(uid, gen) => {
                let Some(u) = self.units.get_mut(&uid) else {
                    return;
                };
                if u.generation != gen || u.state != UnitState::Staging {
                    return;
                }
                UnitState::advance(&mut u.state, UnitState::Running);
                u.times.started = Some(Self::now_s(now));
                let d = self.rng.stream(uid.0).f64_range(0.0, 1.0);
                // Sample duration deterministically per (unit, attempt).
                let mut dur_rng = self.rng.stream(uid.0 ^ (u.attempts as u64) << 48);
                let _ = d;
                let dur = u.duration.sample(&mut dur_rng).max(0.0);
                self.rel.attempts += 1;
                self.trace.mark(now, "cu.running", uid.0);
                // The attempt's outcome is decided up front: the earliest of
                // injected kernel fault, deadline expiry, and normal finish.
                let mut fault_rng =
                    self.rng
                        .stream(streams::keyed(streams::UNIT_FAULT, uid.0, u.attempts));
                let fault_at = (self.faults.unit_failure_p > 0.0
                    && fault_rng.bool(self.faults.unit_failure_p))
                .then(|| dur * fault_rng.f64());
                let deadline_at = u.desc.deadline_s.filter(|d| *d < dur);
                match (fault_at, deadline_at) {
                    (Some(f), d) if d.is_none_or(|d| f <= d) => {
                        out.after(
                            SimDuration::from_secs_f64(f),
                            Ev::UnitFail(uid, gen, FailKind::Fault),
                        );
                    }
                    (_, Some(d)) => {
                        out.after(
                            SimDuration::from_secs_f64(d),
                            Ev::UnitFail(uid, gen, FailKind::Deadline),
                        );
                    }
                    _ => {
                        out.after(SimDuration::from_secs_f64(dur), Ev::UnitFinish(uid, gen));
                    }
                }
            }
            Ev::UnitFinish(uid, gen) => {
                let Some(u) = self.units.get_mut(&uid) else {
                    return;
                };
                if u.generation != gen || u.state != UnitState::Running {
                    return;
                }
                UnitState::advance(&mut u.state, UnitState::Done);
                u.times.finished = Some(Self::now_s(now));
                let Some(pid) = u.pilot else {
                    debug_assert!(false, "running unit {uid} has no pilot");
                    return;
                };
                let cores = u.desc.cores;
                if let Some(p) = self.pilots.get_mut(&pid) {
                    p.used = p.used.saturating_sub(cores);
                }
                self.tracker.record_success(pid);
                self.trace.mark(now, "cu.done", uid.0);
                self.schedule(now, out);
            }
            Ev::UnitFail(uid, gen, kind) => {
                let Some(u) = self.units.get(&uid) else {
                    return;
                };
                if u.generation != gen || u.state != UnitState::Running {
                    return;
                }
                let reason = match kind {
                    FailKind::Fault => {
                        self.rel.injected_unit_faults += 1;
                        "injected fault"
                    }
                    FailKind::Deadline => {
                        self.rel.deadline_expirations += 1;
                        "deadline exceeded"
                    }
                };
                self.fail_attempt(now, uid, reason, out);
            }
            Ev::StagingFail(uid, gen) => {
                let Some(u) = self.units.get(&uid) else {
                    return;
                };
                if u.generation != gen || u.state != UnitState::Staging {
                    return;
                }
                self.rel.injected_staging_faults += 1;
                self.fail_attempt(now, uid, "staging fault", out);
            }
            Ev::RetryRelease(uid, gen) => {
                let Some(u) = self.units.get_mut(&uid) else {
                    return;
                };
                if u.generation != gen || u.state != UnitState::Failed {
                    return;
                }
                // The retry edge: Failed → Pending, back into late binding.
                UnitState::advance(&mut u.state, UnitState::Pending);
                let priority = u.desc.priority;
                self.pending.push(uid, priority);
                self.trace.mark(now, "cu.retry", uid.0);
                self.schedule(now, out);
            }
            Ev::PilotCrash(pid) => {
                let Some(p) = self.pilots.get_mut(&pid) else {
                    return;
                };
                if p.state != PilotState::Active {
                    return;
                }
                PilotState::advance(&mut p.state, PilotState::Failed);
                p.capacity = 0;
                p.used = 0;
                p.times.finished = Some(Self::now_s(now));
                let (site, job) = (p.site, p.job);
                self.rel.pilot_crashes += 1;
                self.trace.mark(now, "pilot.crashed", pid.0);
                // Release the placeholder job on the infrastructure.
                self.feed_adaptor(now, site, SagaIn::Cancel(job), out);
                // Units that were executing lose their attempt (retry budget
                // applies); units not yet running rebind for free. Sorted by
                // id: HashMap order is nondeterministic and float metrics
                // must accumulate identically across replays.
                let mut bound: Vec<(UnitId, UnitState)> = self
                    .units
                    .iter()
                    .filter(|(_, u)| {
                        u.pilot == Some(pid)
                            && !u.state.is_terminal()
                            && u.state != UnitState::Pending
                    })
                    .map(|(&id, u)| (id, u.state))
                    .collect();
                bound.sort_by_key(|(u, _)| u.0);
                for (uid, state) in bound {
                    if state == UnitState::Running {
                        self.fail_attempt(now, uid, "pilot crash", out);
                    } else {
                        self.requeue_unit(now, uid);
                    }
                }
                self.schedule(now, out);
            }
            Ev::BindPass => {
                self.sched_dirty = false;
                self.bind_pass(now, out);
            }
            Ev::PolicyTick => {
                let Some(policy) = self.policy.clone() else {
                    return;
                };
                if self.pending.len() > policy.queue_threshold
                    && self.policy_extra_submitted < policy.max_extra
                {
                    self.policy_extra_submitted += 1;
                    let pid = PilotId(u64::MAX - u64::from(self.policy_extra_submitted));
                    let job = self.fresh_job();
                    let site = policy.burst_site.0 as usize;
                    self.pilots.insert(
                        pid,
                        SimPilotRt {
                            site,
                            desc: policy.pilot.clone(),
                            state: PilotState::Pending,
                            capacity: 0,
                            used: 0,
                            job,
                            times: PilotTimes {
                                submitted: Self::now_s(now),
                                ..Default::default()
                            },
                        },
                    );
                    self.job_owner.insert((site, job), pid);
                    self.trace.mark(now, "policy.scale_out", pid.0);
                    out.immediately(Ev::SubmitPilot(pid));
                }
                out.after(policy.check_every, Ev::PolicyTick);
            }
        }
        let _ = self.ids_hint;
    }
}

/// Builder/driver for simulated pilot-system runs.
pub struct SimPilotSystem {
    exec: Executor<SystemMachine>,
    ids: IdGen,
}

impl SimPilotSystem {
    /// New system with the given seed and a first-fit scheduler.
    pub fn new(seed: u64) -> Self {
        let machine = SystemMachine {
            adaptors: Vec::new(),
            scheduler: Box::new(crate::scheduler::FirstFitScheduler),
            network: NetworkModel::new(&[]),
            rng: SimRng::new(seed),
            pilots: HashMap::new(),
            units: HashMap::new(),
            pending: PendingQueue::default(),
            sched_dirty: false,
            job_owner: HashMap::new(),
            next_job: 1,
            policy: None,
            policy_extra_submitted: 0,
            trace: TraceLog::new(),
            ids_hint: 0,
            faults: FaultPlan::none(),
            tracker: FailureTracker::new(None),
            rel: ReliabilityStats::default(),
            stats: BindStats::default(),
        };
        SimPilotSystem {
            exec: Executor::new(machine),
            ids: IdGen::new(),
        }
    }

    /// Register an infrastructure; returns the site id schedulers will see.
    /// The adaptor's background processes (batch arrivals, match cycles) are
    /// primed automatically.
    pub fn add_resource(&mut self, adaptor: ResourceAdaptor) -> SiteId {
        let site = self.exec.machine().adaptors.len();
        for (t, ev) in adaptor.initial_inputs() {
            self.exec.schedule_at(t, Ev::Saga { site, ev });
        }
        let m = self.exec.machine_mut();
        m.adaptors.push(adaptor);
        // Keep the network's site table in step with adaptor indices.
        let names: Vec<String> = (0..m.adaptors.len()).map(|i| format!("site-{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let old = std::mem::replace(&mut m.network, NetworkModel::new(&name_refs));
        // Preserve nothing from the default; custom networks are set after
        // all resources are added via `set_network`.
        drop(old);
        SiteId(site as u16)
    }

    /// Replace the late-binding scheduler.
    pub fn set_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        self.exec.machine_mut().scheduler = scheduler;
    }

    /// Replace the network model (after all resources are added).
    pub fn set_network(&mut self, network: NetworkModel) {
        self.exec.machine_mut().network = network;
    }

    /// Install an adaptive scale-out policy.
    pub fn set_scale_out(&mut self, policy: ScaleOutPolicy) {
        let every = policy.check_every;
        self.exec.machine_mut().policy = Some(policy);
        self.exec.schedule_at(SimTime::ZERO + every, Ev::PolicyTick);
    }

    /// Disable tracing (large sweeps).
    pub fn disable_trace(&mut self) {
        self.exec.machine_mut().trace = TraceLog::disabled();
    }

    /// Install a deterministic fault-injection plan. All fault draws come
    /// from RNG streams derived from the run seed, so replays are
    /// byte-identical.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let m = self.exec.machine_mut();
        m.faults = plan;
        m.tracker = FailureTracker::new(plan.blacklist_after);
    }

    /// Submit a pilot at virtual time `at`.
    pub fn submit_pilot(&mut self, at: SimTime, site: SiteId, desc: PilotDescription) -> PilotId {
        let pid = self.ids.pilot();
        let m = self.exec.machine_mut();
        let job = m.fresh_job();
        assert!((site.0 as usize) < m.adaptors.len(), "unknown site {site}");
        m.pilots.insert(
            pid,
            SimPilotRt {
                site: site.0 as usize,
                desc,
                state: PilotState::Pending,
                capacity: 0,
                used: 0,
                job,
                times: PilotTimes::default(),
            },
        );
        m.job_owner.insert((site.0 as usize, job), pid);
        self.exec.schedule_at(at, Ev::SubmitPilot(pid));
        pid
    }

    /// Submit a unit at virtual time `at` with a sampled duration model.
    pub fn submit_unit(&mut self, at: SimTime, desc: UnitDescription, duration: Dist) -> UnitId {
        let uid = self.ids.unit();
        self.exec.machine_mut().units.insert(
            uid,
            SimUnitRt {
                desc,
                duration,
                state: UnitState::New,
                pilot: None,
                times: UnitTimes::default(),
                generation: 0,
                attempts: 0,
                failed_at: None,
            },
        );
        self.exec.schedule_at(at, Ev::SubmitUnit(uid));
        uid
    }

    /// Submit a unit with a fixed duration in seconds.
    pub fn submit_unit_fixed(
        &mut self,
        at: SimTime,
        desc: UnitDescription,
        duration_s: f64,
    ) -> UnitId {
        self.submit_unit(at, desc, Dist::constant(duration_s))
    }

    /// Schedule a pilot cancellation.
    pub fn cancel_pilot(&mut self, at: SimTime, pilot: PilotId) {
        self.exec.schedule_at(at, Ev::CancelPilot(pilot));
    }

    /// Run until quiescence or `until`, whichever first; consume into a report.
    pub fn run(mut self, until: SimTime) -> SimReport {
        self.exec.run_until(until);
        let end_time = self.exec.now();
        let m = self.exec.into_machine();
        let mut units: Vec<UnitRecord> = m
            .units
            .iter()
            .map(|(&unit, u)| UnitRecord {
                unit,
                pilot: u.pilot,
                times: u.times,
                state: u.state,
                tag: u.desc.tag.clone(),
            })
            .collect();
        units.sort_by_key(|u| u.unit.0);
        let mut pilots: Vec<SimPilotRecord> = m
            .pilots
            .iter()
            .map(|(&pilot, p)| SimPilotRecord {
                pilot,
                site: SiteId(p.site as u16),
                label: p.desc.label.clone(),
                state: p.state,
                times: p.times,
            })
            .collect();
        pilots.sort_by_key(|p| p.pilot.0);
        SimReport {
            units,
            pilots,
            trace: m.trace,
            end_time,
            reliability: m.rel,
            bind: m.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::DataLocation;
    use crate::scheduler::DataAwareScheduler;
    use pilot_infra::cloud::{CloudConfig, CloudProvider};
    use pilot_infra::hpc::{BackgroundLoad, HpcCluster, HpcConfig};
    use pilot_infra::htc::{HtcConfig, HtcPool};

    fn quiet_hpc(cores: u32) -> ResourceAdaptor {
        ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet("hpc", cores)))
    }

    #[test]
    fn pilot_runs_units_in_virtual_time() {
        let mut sys = SimPilotSystem::new(1);
        let site = sys.add_resource(quiet_hpc(16));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(8, SimDuration::from_hours(1)).labeled("p"),
        );
        for _ in 0..16 {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 30.0);
        }
        let report = sys.run(SimTime::from_hours(2));
        assert_eq!(report.count(UnitState::Done), 16);
        // 16 units × 30 s on 8 cores = two waves ≈ 60 s + 1 s dispatch.
        let mk = report.makespan();
        assert!((60.0..70.0).contains(&mk), "makespan {mk}");
        assert_eq!(report.pilots.len(), 1);
        assert!(report.pilots[0].times.startup_overhead().unwrap() >= 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sys = SimPilotSystem::new(seed);
            let site = sys.add_resource(quiet_hpc(32));
            sys.submit_pilot(
                SimTime::ZERO,
                site,
                PilotDescription::new(16, SimDuration::from_hours(4)),
            );
            for i in 0..40 {
                sys.submit_unit(
                    SimTime::from_secs(i),
                    UnitDescription::new(1),
                    Dist::exponential(25.0),
                );
            }
            let r = sys.run(SimTime::from_hours(8));
            (r.makespan(), r.throughput(), r.trace.len())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds, different durations");
    }

    #[test]
    fn unit_waits_until_pilot_capacity_arrives() {
        let mut sys = SimPilotSystem::new(2);
        let site = sys.add_resource(quiet_hpc(8));
        sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 10.0);
        sys.submit_pilot(
            SimTime::from_secs(100),
            site,
            PilotDescription::new(4, SimDuration::from_hours(1)),
        );
        let report = sys.run(SimTime::from_hours(2));
        let u = &report.units[0];
        assert_eq!(u.state, UnitState::Done);
        assert!(u.times.wait().unwrap() >= 100.0, "late binding wait");
    }

    #[test]
    fn pilot_walltime_expiry_requeues_running_units() {
        let mut sys = SimPilotSystem::new(3);
        let site = sys.add_resource(quiet_hpc(8));
        // Short pilot; long unit cannot finish inside it.
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(4, SimDuration::from_secs(50)),
        );
        // Second pilot arrives later and rescues the unit.
        sys.submit_pilot(
            SimTime::from_secs(200),
            site,
            PilotDescription::new(4, SimDuration::from_hours(1)),
        );
        let u = sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 120.0);
        let report = sys.run(SimTime::from_hours(2));
        let rec = report.units.iter().find(|r| r.unit == u).unwrap();
        assert_eq!(rec.state, UnitState::Done);
        assert!(
            report.trace.of_kind("cu.requeued").count() >= 1,
            "unit must be requeued when pilot 1 expires"
        );
        // It finished on the second pilot, well after 200 s.
        assert!(rec.times.finished.unwrap() >= 320.0);
    }

    #[test]
    fn htc_incremental_capacity_feeds_scheduler() {
        let mut sys = SimPilotSystem::new(4);
        let site = sys.add_resource(ResourceAdaptor::htc(HtcPool::new(HtcConfig::reliable(
            "osg", 8,
        ))));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(8, SimDuration::from_hours(2)),
        );
        for _ in 0..16 {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 60.0);
        }
        let report = sys.run(SimTime::from_hours(4));
        assert_eq!(report.count(UnitState::Done), 16);
        // Glide-in startup: first capacity near the 30 s match cycle.
        let startup = report.pilots[0].times.startup_overhead().unwrap();
        assert!((30.0..45.0).contains(&startup), "startup {startup}");
    }

    #[test]
    fn cloud_pilot_costs_money_and_boots_fast() {
        let mut sys = SimPilotSystem::new(5);
        let site = sys.add_resource(ResourceAdaptor::cloud(CloudProvider::new(
            CloudConfig::generic("aws", 512),
        )));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(64, SimDuration::from_hours(1)),
        );
        for _ in 0..32 {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 120.0);
        }
        let report = sys.run(SimTime::from_hours(3));
        assert_eq!(report.count(UnitState::Done), 32);
        let startup = report.pilots[0].times.startup_overhead().unwrap();
        assert!(
            (45.0..=90.0).contains(&startup),
            "boot window, got {startup}"
        );
    }

    #[test]
    fn data_aware_scheduler_places_units_at_data() {
        let mut sys = SimPilotSystem::new(6);
        let a = sys.add_resource(quiet_hpc(16));
        let b = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
            "hpc-b", 16,
        ))));
        sys.set_scheduler(Box::new(DataAwareScheduler::default()));
        sys.submit_pilot(
            SimTime::ZERO,
            a,
            PilotDescription::new(8, SimDuration::from_hours(1)),
        );
        sys.submit_pilot(
            SimTime::ZERO,
            b,
            PilotDescription::new(8, SimDuration::from_hours(1)),
        );
        // All data lives at site b.
        for _ in 0..8 {
            sys.submit_unit_fixed(
                SimTime::from_secs(10),
                UnitDescription::new(1).with_inputs(vec![DataLocation::new(500_000_000, vec![b])]),
                20.0,
            );
        }
        let report = sys.run(SimTime::from_hours(1));
        assert_eq!(report.count(UnitState::Done), 8);
        let b_pilot = report.pilots.iter().find(|p| p.site == b).unwrap().pilot;
        assert!(
            report.units.iter().all(|u| u.pilot == Some(b_pilot)),
            "all units should land at the data"
        );
        // No staging cost at the local site.
        for u in &report.units {
            assert!(u.times.staging().unwrap() < 0.1);
        }
    }

    #[test]
    fn remote_data_pays_staging_time() {
        let mut sys = SimPilotSystem::new(7);
        let a = sys.add_resource(quiet_hpc(16));
        let b_site = SiteId(1); // no pilot there; data is remote
        sys.submit_pilot(
            SimTime::ZERO,
            a,
            PilotDescription::new(8, SimDuration::from_hours(1)),
        );
        let _ = b_site;
        sys.submit_unit_fixed(
            SimTime::ZERO,
            UnitDescription::new(1)
                .with_inputs(vec![DataLocation::new(1_000_000_000, vec![SiteId(1)])]),
            10.0,
        );
        let report = sys.run(SimTime::from_hours(1));
        let u = &report.units[0];
        assert_eq!(u.state, UnitState::Done);
        // 1 GB over the 100 MB/s WAN default ≈ 10 s staging.
        let staging = u.times.staging().unwrap();
        assert!((9.0..12.0).contains(&staging), "staging {staging}");
    }

    #[test]
    fn scale_out_policy_adds_cloud_pilot_under_backlog() {
        let mut sys = SimPilotSystem::new(8);
        let hpc = sys.add_resource(quiet_hpc(8));
        let cloud = sys.add_resource(ResourceAdaptor::cloud(CloudProvider::new(
            CloudConfig::generic("burst", 256),
        )));
        sys.submit_pilot(
            SimTime::ZERO,
            hpc,
            PilotDescription::new(4, SimDuration::from_hours(4)),
        );
        sys.set_scale_out(ScaleOutPolicy {
            check_every: SimDuration::from_secs(60),
            queue_threshold: 10,
            burst_site: cloud,
            pilot: PilotDescription::new(64, SimDuration::from_hours(2)).labeled("burst"),
            max_extra: 1,
        });
        for _ in 0..100 {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 120.0);
        }
        let report = sys.run(SimTime::from_hours(6));
        assert_eq!(report.count(UnitState::Done), 100);
        assert_eq!(report.pilots.len(), 2, "policy must add one pilot");
        assert!(report.trace.of_kind("policy.scale_out").count() == 1);
        let burst = report.pilots.iter().find(|p| p.label == "burst").unwrap();
        assert_eq!(burst.site, cloud);
        // With 64 extra cores the backlog drains far faster than 100×120/4 s.
        assert!(report.makespan() < 1500.0, "makespan {}", report.makespan());
    }

    #[test]
    fn queue_contention_delays_pilot_startup() {
        let bg = BackgroundLoad::at_utilization(
            0.85,
            64,
            Dist::constant(16.0),
            Dist::exponential(1200.0),
        );
        let busy = HpcCluster::new(HpcConfig::quiet("busy", 64).with_background(bg));
        let mut sys = SimPilotSystem::new(9);
        let site = sys.add_resource(ResourceAdaptor::hpc(busy));
        sys.submit_pilot(
            SimTime::from_secs(8000),
            site,
            PilotDescription::new(32, SimDuration::from_hours(2)),
        );
        sys.submit_unit_fixed(SimTime::from_secs(8000), UnitDescription::new(1), 10.0);
        let report = sys.run(SimTime::from_hours(24));
        let startup = report.pilots[0].times.startup_overhead();
        assert!(
            startup.map(|s| s > 10.0).unwrap_or(false),
            "busy queue should delay the pilot, got {startup:?}"
        );
    }

    #[test]
    fn injected_unit_faults_retry_to_completion() {
        let mut sys = SimPilotSystem::new(11);
        let site = sys.add_resource(quiet_hpc(16));
        sys.set_fault_plan(FaultPlan::none().with_unit_failures(0.4));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(8, SimDuration::from_hours(4)),
        );
        for _ in 0..24 {
            sys.submit_unit_fixed(
                SimTime::ZERO,
                UnitDescription::new(1).with_retry(crate::retry::RetryPolicy::fixed(10, 1.0)),
                20.0,
            );
        }
        let report = sys.run(SimTime::from_hours(8));
        assert_eq!(
            report.count(UnitState::Done),
            24,
            "retries recover all units"
        );
        let rel = &report.reliability;
        assert!(rel.injected_unit_faults > 0, "p=0.4 must inject faults");
        assert_eq!(
            rel.requeues, rel.injected_unit_faults,
            "every fault retried"
        );
        assert!(rel.wasted_work_s > 0.0, "partial attempts waste work");
        assert!(
            rel.recoveries > 0 && rel.mean_recovery_s() >= 1.0,
            "backoff bounds recovery"
        );
    }

    #[test]
    fn fail_fast_units_fail_terminally_under_faults() {
        let mut sys = SimPilotSystem::new(12);
        let site = sys.add_resource(quiet_hpc(16));
        sys.set_fault_plan(FaultPlan::none().with_unit_failures(0.5));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(8, SimDuration::from_hours(4)),
        );
        for _ in 0..24 {
            // Default policy: one attempt, no retry.
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(1), 20.0);
        }
        let report = sys.run(SimTime::from_hours(8));
        let failed = report.count(UnitState::Failed);
        assert!(failed > 0, "fail-fast must surface failures");
        assert_eq!(report.count(UnitState::Done) + failed, 24);
        assert_eq!(report.reliability.exhausted_units, failed as u64);
        assert_eq!(report.reliability.requeues, 0);
    }

    #[test]
    fn pilot_crash_recovers_by_late_rebinding() {
        let mut sys = SimPilotSystem::new(13);
        let site = sys.add_resource(quiet_hpc(32));
        // Crash roughly once a minute; a stream of replacement pilots keeps
        // capacity coming.
        sys.set_fault_plan(FaultPlan::none().with_pilot_crashes(60.0));
        for i in 0..6 {
            sys.submit_pilot(
                SimTime::from_secs(i * 120),
                site,
                PilotDescription::new(8, SimDuration::from_hours(2)),
            );
        }
        for _ in 0..16 {
            sys.submit_unit_fixed(
                SimTime::ZERO,
                UnitDescription::new(1).with_retry(crate::retry::RetryPolicy::fixed(20, 0.5)),
                30.0,
            );
        }
        let report = sys.run(SimTime::from_hours(4));
        assert!(
            report.reliability.pilot_crashes > 0,
            "MTBF 60 s must crash pilots"
        );
        assert_eq!(
            report.count(UnitState::Done),
            16,
            "rebinding rescues all units"
        );
    }

    #[test]
    fn deadline_cuts_off_slow_units() {
        let mut sys = SimPilotSystem::new(14);
        let site = sys.add_resource(quiet_hpc(8));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(4, SimDuration::from_hours(1)),
        );
        // 100 s unit with a 10 s deadline and no retry: fails at t≈start+10.
        let u = sys.submit_unit_fixed(
            SimTime::ZERO,
            UnitDescription::new(1).with_deadline(10.0),
            100.0,
        );
        let report = sys.run(SimTime::from_hours(1));
        let rec = report.units.iter().find(|r| r.unit == u).unwrap();
        assert_eq!(rec.state, UnitState::Failed);
        assert_eq!(report.reliability.deadline_expirations, 1);
        assert!((report.reliability.wasted_work_s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_failures_blacklist_the_pilot() {
        let mut sys = SimPilotSystem::new(15);
        let site = sys.add_resource(quiet_hpc(16));
        sys.set_fault_plan(FaultPlan::none().with_unit_failures(1.0).with_blacklist(3));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(8, SimDuration::from_hours(1)),
        );
        for _ in 0..8 {
            sys.submit_unit_fixed(
                SimTime::ZERO,
                UnitDescription::new(1).with_retry(crate::retry::RetryPolicy::fixed(4, 0.1)),
                5.0,
            );
        }
        let report = sys.run(SimTime::from_hours(1));
        assert_eq!(report.reliability.blacklisted_pilots, 1);
        assert!(
            report.trace.of_kind("pilot.blacklisted").count() == 1,
            "blacklisting is traced"
        );
        // Every unit fails with p=1 and the only pilot is blacklisted, so no
        // unit can complete.
        assert_eq!(report.count(UnitState::Done), 0);
    }

    #[test]
    fn fault_injection_replays_byte_identically() {
        let run = || {
            let mut sys = SimPilotSystem::new(77);
            let site = sys.add_resource(quiet_hpc(32));
            sys.set_fault_plan(
                FaultPlan::none()
                    .with_unit_failures(0.3)
                    .with_pilot_crashes(300.0)
                    .with_staging_failures(0.1),
            );
            for i in 0..4 {
                sys.submit_pilot(
                    SimTime::from_secs(i * 60),
                    site,
                    PilotDescription::new(8, SimDuration::from_hours(2)),
                );
            }
            for i in 0..32 {
                sys.submit_unit(
                    SimTime::from_secs(i),
                    UnitDescription::new(1).with_retry(
                        crate::retry::RetryPolicy::exponential(6, 0.5, 2.0, 30.0).with_jitter(0.3),
                    ),
                    Dist::exponential(40.0),
                );
            }
            sys.run(SimTime::from_hours(6))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.reliability, b.reliability, "identical fault schedule");
        assert_eq!(a.trace.len(), b.trace.len());
        for (ua, ub) in a.units.iter().zip(b.units.iter()) {
            assert_eq!(ua.unit, ub.unit);
            assert_eq!(ua.state, ub.state);
            assert_eq!(ua.times, ub.times, "unit {} times differ", ua.unit);
        }
    }

    #[test]
    fn backfill_estimateless_units_avoid_expiring_pilots() {
        // Regression: estimate-less units used to be backfilled onto the
        // pilot *closest to expiry*, where the pilot's walltime routinely
        // killed them mid-run and requeued the work. They must prefer the
        // pilot with the most remaining walltime instead.
        let mut sys = SimPilotSystem::new(21);
        let site = sys.add_resource(quiet_hpc(16));
        sys.set_scheduler(Box::new(crate::scheduler::BackfillScheduler::default()));
        // One pilot about to expire, one with hours of headroom.
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(4, SimDuration::from_secs(60)),
        );
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(4, SimDuration::from_hours(4)),
        );
        // 100 s units without runtime estimates: landing on the expiring
        // pilot guarantees a walltime kill at t=60.
        for _ in 0..4 {
            sys.submit_unit_fixed(SimTime::from_secs(5), UnitDescription::new(1), 100.0);
        }
        let report = sys.run(SimTime::from_hours(8));
        assert_eq!(report.count(UnitState::Done), 4);
        assert_eq!(
            report.reliability.rebinds, 0,
            "no estimate-less unit may be killed at pilot walltime"
        );
        assert_eq!(
            report.bind.snapshot_builds, report.bind.passes,
            "batched pass builds one snapshot per pass"
        );
    }

    #[test]
    fn data_aware_starved_unit_falls_back_and_completes() {
        // Regression: delay scheduling starved a unit forever when its only
        // data-local pilot stayed permanently full. With the bounded wait it
        // must go remote after `max_wait_passes` refused passes.
        let mut sys = SimPilotSystem::new(23);
        let a = sys.add_resource(quiet_hpc(16));
        let b = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
            "hpc-b", 16,
        ))));
        sys.set_scheduler(Box::new(DataAwareScheduler::with_max_wait(3)));
        // The only pilot at the data site has one core…
        sys.submit_pilot(
            SimTime::ZERO,
            b,
            PilotDescription::new(1, SimDuration::from_hours(4)),
        );
        let remote = sys.submit_pilot(
            SimTime::ZERO,
            a,
            PilotDescription::new(4, SimDuration::from_hours(4)),
        );
        // …and a blocker occupies it for the whole run.
        sys.submit_unit_fixed(
            SimTime::from_secs(5),
            UnitDescription::new(1).with_inputs(vec![DataLocation::new(500_000_000, vec![b])]),
            100_000.0,
        );
        // The victim's data also lives at b, behind the blocker.
        let victim = sys.submit_unit_fixed(
            SimTime::from_secs(6),
            UnitDescription::new(1).with_inputs(vec![DataLocation::new(500_000_000, vec![b])]),
            10.0,
        );
        // Background churn on site a drives the binding passes that charge
        // the victim's wait budget.
        for _ in 0..8 {
            sys.submit_unit_fixed(SimTime::from_secs(7), UnitDescription::new(1), 3.0);
        }
        let report = sys.run(SimTime::from_secs(600));
        let rec = report.units.iter().find(|r| r.unit == victim).unwrap();
        assert_eq!(rec.state, UnitState::Done, "bounded wait must not starve");
        assert_eq!(
            rec.pilot,
            Some(remote),
            "after the wait budget the victim goes remote"
        );
        assert_eq!(report.count(UnitState::Done), 9, "victim + background");
    }

    #[test]
    fn multicore_units_pack_within_capacity() {
        let mut sys = SimPilotSystem::new(10);
        let site = sys.add_resource(quiet_hpc(16));
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(8, SimDuration::from_hours(1)),
        );
        // Two 4-core units fit together; the third waits.
        for _ in 0..3 {
            sys.submit_unit_fixed(SimTime::ZERO, UnitDescription::new(4), 100.0);
        }
        let report = sys.run(SimTime::from_hours(1));
        assert_eq!(report.count(UnitState::Done), 3);
        let mut starts: Vec<f64> = report
            .units
            .iter()
            .map(|u| u.times.started.unwrap())
            .collect();
        starts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(starts[1] - starts[0] < 1.0, "first two run together");
        assert!(starts[2] - starts[0] >= 100.0, "third waits for a slot");
    }
}
