//! Lifecycle state machines for pilots and compute units.
//!
//! These mirror the P\* model's state diagrams. Both backends drive the same
//! machines, and every store into an authoritative `state` field goes through
//! [`PilotState::advance`] / [`UnitState::advance`] (or the fallible
//! `try_advance`) so that illegal transitions are caught at the write site.
//! The `state-mutation` rule in `pilot-lint` rejects raw `.state = …` stores
//! anywhere else; registry mirrors that merely *copy* an already-validated
//! machine use [`PilotState::publish`] / [`UnitState::publish`].

// lint: deterministic — this module must stay replayable: no wall-clock reads

use std::error::Error;
use std::fmt;

/// An attempted state change the transition table forbids.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IllegalTransition<S> {
    pub from: S,
    pub to: S,
}

impl<S: fmt::Display> fmt::Display for IllegalTransition<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal state transition {} -> {}", self.from, self.to)
    }
}

impl<S: fmt::Display + fmt::Debug> Error for IllegalTransition<S> {}

/// Pilot lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PilotState {
    /// Described, not yet submitted.
    New,
    /// Submitted to the access layer, waiting for resources.
    Pending,
    /// Holding at least one core; agent accepts units.
    Active,
    /// Finished normally (walltime reached or explicitly drained).
    Done,
    /// Canceled by the application.
    Canceled,
    /// Lost to infrastructure failure or rejection.
    Failed,
}

/// Compute-unit lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnitState {
    /// Described, not yet accepted.
    New,
    /// Accepted by the unit manager, waiting to be bound (late binding).
    Pending,
    /// Bound to a pilot with reserved cores; not yet running.
    Assigned,
    /// Input data staging in progress.
    Staging,
    /// Kernel executing.
    Running,
    /// Completed successfully.
    Done,
    /// Kernel or infrastructure failure.
    Failed,
    /// Canceled by the application (or orphaned by a dying pilot without
    /// retry).
    Canceled,
}

impl PilotState {
    /// Whether this state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            PilotState::Done | PilotState::Canceled | PilotState::Failed
        )
    }

    /// Legal transition predicate.
    pub fn can_transition_to(self, next: PilotState) -> bool {
        use PilotState::*;
        matches!(
            (self, next),
            (New, Pending)
                | (New, Canceled)
                | (Pending, Active)
                | (Pending, Canceled)
                | (Pending, Failed)
                | (Active, Done)
                | (Active, Canceled)
                | (Active, Failed)
        )
    }

    /// Drive `slot` to `next`, asserting the edge is legal in debug builds.
    /// This is the write path for *authoritative* pilot machines.
    pub fn advance(slot: &mut PilotState, next: PilotState) {
        debug_assert!(
            slot.can_transition_to(next),
            "illegal pilot transition {slot} -> {next}"
        );
        *slot = next;
    }

    /// Fallible transition for edges decided by external input at runtime.
    pub fn try_advance(
        slot: &mut PilotState,
        next: PilotState,
    ) -> Result<(), IllegalTransition<PilotState>> {
        if slot.can_transition_to(next) {
            *slot = next;
            Ok(())
        } else {
            Err(IllegalTransition {
                from: *slot,
                to: next,
            })
        }
    }

    /// Copy an already-validated state into a mirror slot (registry snapshot,
    /// public view). Deliberately unchecked: the authoritative machine has
    /// validated the edge; a mirror may observe states out of order.
    pub fn publish(slot: &mut PilotState, value: PilotState) {
        *slot = value;
    }
}

impl UnitState {
    /// Whether this state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            UnitState::Done | UnitState::Failed | UnitState::Canceled
        )
    }

    /// Legal transition predicate. `Assigned -> Pending` is legal: a unit is
    /// un-bound when its pilot dies before execution starts (retry path).
    /// `Failed -> Pending` is the retry re-binding edge: a failed attempt
    /// re-enters the late-binding queue when its `RetryPolicy` grants another
    /// attempt, so `Failed` is terminal only once the budget is exhausted.
    pub fn can_transition_to(self, next: UnitState) -> bool {
        use UnitState::*;
        matches!(
            (self, next),
            (New, Pending)
                | (New, Canceled)
                | (Pending, Assigned)
                | (Pending, Canceled)
                | (Pending, Failed)
                | (Assigned, Staging)
                | (Assigned, Running)
                | (Assigned, Pending)
                | (Assigned, Canceled)
                | (Assigned, Failed)
                | (Staging, Running)
                | (Staging, Failed)
                | (Staging, Canceled)
                | (Staging, Pending)
                | (Running, Done)
                | (Running, Failed)
                | (Running, Canceled)
                | (Failed, Pending)
        )
    }

    /// Drive `slot` to `next`, asserting the edge is legal in debug builds.
    /// This is the write path for *authoritative* unit machines.
    pub fn advance(slot: &mut UnitState, next: UnitState) {
        debug_assert!(
            slot.can_transition_to(next),
            "illegal unit transition {slot} -> {next}"
        );
        *slot = next;
    }

    /// Fallible transition for edges decided by external input at runtime.
    pub fn try_advance(
        slot: &mut UnitState,
        next: UnitState,
    ) -> Result<(), IllegalTransition<UnitState>> {
        if slot.can_transition_to(next) {
            *slot = next;
            Ok(())
        } else {
            Err(IllegalTransition {
                from: *slot,
                to: next,
            })
        }
    }

    /// Copy an already-validated state into a mirror slot (registry snapshot,
    /// public view). Deliberately unchecked: the authoritative machine has
    /// validated the edge; a mirror may observe states out of order.
    pub fn publish(slot: &mut UnitState, value: UnitState) {
        *slot = value;
    }
}

impl fmt::Display for PilotState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PilotState::New => "new",
            PilotState::Pending => "pending",
            PilotState::Active => "active",
            PilotState::Done => "done",
            PilotState::Canceled => "canceled",
            PilotState::Failed => "failed",
        };
        f.write_str(s)
    }
}

impl fmt::Display for UnitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnitState::New => "new",
            UnitState::Pending => "pending",
            UnitState::Assigned => "assigned",
            UnitState::Staging => "staging",
            UnitState::Running => "running",
            UnitState::Done => "done",
            UnitState::Failed => "failed",
            UnitState::Canceled => "canceled",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PILOT_STATES: [PilotState; 6] = [
        PilotState::New,
        PilotState::Pending,
        PilotState::Active,
        PilotState::Done,
        PilotState::Canceled,
        PilotState::Failed,
    ];

    const UNIT_STATES: [UnitState; 8] = [
        UnitState::New,
        UnitState::Pending,
        UnitState::Assigned,
        UnitState::Staging,
        UnitState::Running,
        UnitState::Done,
        UnitState::Failed,
        UnitState::Canceled,
    ];

    #[test]
    fn terminal_states_have_no_outgoing_transitions() {
        for s in PILOT_STATES {
            if s.is_terminal() {
                for t in PILOT_STATES {
                    assert!(!s.can_transition_to(t), "{s} -> {t} should be illegal");
                }
            }
        }
        // Unit exception: `Failed -> Pending` is the retry re-binding edge.
        // Everything else out of a terminal unit state stays illegal.
        for s in UNIT_STATES {
            if s.is_terminal() {
                for t in UNIT_STATES {
                    if s == UnitState::Failed && t == UnitState::Pending {
                        continue;
                    }
                    assert!(!s.can_transition_to(t), "{s} -> {t} should be illegal");
                }
            }
        }
    }

    #[test]
    fn failed_units_can_reenter_the_queue_for_retry() {
        assert!(UnitState::Failed.can_transition_to(UnitState::Pending));
        assert!(!UnitState::Done.can_transition_to(UnitState::Pending));
        assert!(!UnitState::Canceled.can_transition_to(UnitState::Pending));
        assert!(!UnitState::Failed.can_transition_to(UnitState::Assigned));
    }

    #[test]
    fn happy_paths_are_legal() {
        use PilotState as P;
        let path = [P::New, P::Pending, P::Active, P::Done];
        for w in path.windows(2) {
            assert!(w[0].can_transition_to(w[1]));
        }
        use UnitState as U;
        let path = [
            U::New,
            U::Pending,
            U::Assigned,
            U::Staging,
            U::Running,
            U::Done,
        ];
        for w in path.windows(2) {
            assert!(w[0].can_transition_to(w[1]));
        }
    }

    #[test]
    fn retry_path_unbinds_assigned_unit() {
        assert!(UnitState::Assigned.can_transition_to(UnitState::Pending));
        assert!(UnitState::Staging.can_transition_to(UnitState::Pending));
        assert!(!UnitState::Running.can_transition_to(UnitState::Pending));
    }

    #[test]
    fn advance_and_try_advance_drive_the_machine() {
        let mut p = PilotState::New;
        PilotState::advance(&mut p, PilotState::Pending);
        PilotState::advance(&mut p, PilotState::Active);
        assert_eq!(p, PilotState::Active);
        assert_eq!(
            PilotState::try_advance(&mut p, PilotState::Pending),
            Err(IllegalTransition {
                from: PilotState::Active,
                to: PilotState::Pending
            })
        );
        assert_eq!(p, PilotState::Active, "failed try_advance must not write");

        let mut u = UnitState::Pending;
        UnitState::advance(&mut u, UnitState::Assigned);
        assert!(UnitState::try_advance(&mut u, UnitState::Running).is_ok());
        assert!(UnitState::try_advance(&mut u, UnitState::Staging).is_err());
        assert_eq!(u, UnitState::Running);
    }

    #[test]
    #[should_panic(expected = "illegal unit transition")]
    #[cfg(debug_assertions)]
    fn advance_asserts_illegal_edges() {
        let mut u = UnitState::Done;
        UnitState::advance(&mut u, UnitState::Running);
    }

    #[test]
    fn publish_is_unchecked_for_mirrors() {
        let mut mirror = UnitState::New;
        UnitState::publish(&mut mirror, UnitState::Done);
        assert_eq!(mirror, UnitState::Done);
        let mut pm = PilotState::New;
        PilotState::publish(&mut pm, PilotState::Failed);
        assert_eq!(pm, PilotState::Failed);
    }

    #[test]
    fn illegal_transition_displays_both_ends() {
        let e = IllegalTransition {
            from: UnitState::Done,
            to: UnitState::Running,
        };
        assert_eq!(e.to_string(), "illegal state transition done -> running");
    }

    #[test]
    fn no_skipping_pending() {
        assert!(!PilotState::New.can_transition_to(PilotState::Active));
        assert!(!UnitState::New.can_transition_to(UnitState::Running));
    }

    #[test]
    fn every_nonterminal_state_reaches_a_terminal_state() {
        // Graph reachability: from each state, some terminal state must be
        // reachable — no livelock states in the machine.
        fn reaches_terminal<S: Copy + PartialEq>(
            start: S,
            all: &[S],
            can: impl Fn(S, S) -> bool,
            terminal: impl Fn(S) -> bool,
        ) -> bool {
            let mut frontier = vec![start];
            let mut seen = vec![start];
            while let Some(s) = frontier.pop() {
                if terminal(s) {
                    return true;
                }
                for &t in all {
                    if can(s, t) && !seen.contains(&t) {
                        seen.push(t);
                        frontier.push(t);
                    }
                }
            }
            false
        }
        for s in PILOT_STATES {
            assert!(
                reaches_terminal(
                    s,
                    &PILOT_STATES,
                    |a, b| a.can_transition_to(b),
                    |x: PilotState| x.is_terminal()
                ) || s.is_terminal()
            );
        }
        for s in UNIT_STATES {
            assert!(
                reaches_terminal(
                    s,
                    &UNIT_STATES,
                    |a, b| a.can_transition_to(b),
                    |x: UnitState| x.is_terminal()
                ) || s.is_terminal()
            );
        }
    }
}
