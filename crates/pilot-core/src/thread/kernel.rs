//! Work kernels: the real computation a compute unit performs.

use crate::ids::{PilotId, UnitId};
use std::any::Any;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution context handed to a kernel.
#[derive(Clone, Copy, Debug)]
pub struct TaskCtx {
    /// The unit being executed.
    pub unit: UnitId,
    /// The pilot executing it.
    pub pilot: PilotId,
    /// Cores reserved for this unit.
    pub cores: u32,
}

/// Kernel failure: a message, carried into the unit's `Failed` record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskError(pub String);

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task error: {}", self.0)
    }
}

impl std::error::Error for TaskError {}

/// Opaque kernel output, downcast by the application.
pub struct TaskOutput(Option<Box<dyn Any + Send>>);

impl TaskOutput {
    /// No output.
    pub fn none() -> Self {
        TaskOutput(None)
    }

    /// Wrap a value.
    pub fn of<T: Any + Send>(value: T) -> Self {
        TaskOutput(Some(Box::new(value)))
    }

    /// Whether an output value is present.
    pub fn is_some(&self) -> bool {
        self.0.is_some()
    }

    /// Take the value as `T`. On a type mismatch (or absent value) the
    /// output comes back unconsumed as `Err(self)`, so probing for one type
    /// never destroys a value of another.
    pub fn downcast<T: Any>(self) -> Result<T, Self> {
        match self.0 {
            Some(b) => match b.downcast::<T>() {
                Ok(v) => Ok(*v),
                Err(b) => Err(TaskOutput(Some(b))),
            },
            None => Err(TaskOutput(None)),
        }
    }

    /// Borrow the value as `T` without consuming the output; `None` if
    /// absent or of a different type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.as_ref().and_then(|b| b.downcast_ref::<T>())
    }
}

impl std::fmt::Debug for TaskOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskOutput(present: {})", self.0.is_some())
    }
}

/// A unit's computation. Implementations must be `Send + Sync` (workers share
/// them) and should treat panics as failures — the agent catches them.
pub trait WorkKernel: Send + Sync {
    /// Execute the work.
    fn run(&self, ctx: &TaskCtx) -> Result<TaskOutput, TaskError>;
}

/// Adapt a closure into a kernel.
pub fn kernel_fn<F>(f: F) -> Arc<dyn WorkKernel>
where
    F: Fn(&TaskCtx) -> Result<TaskOutput, TaskError> + Send + Sync + 'static,
{
    struct FnKernel<F>(F);
    impl<F> WorkKernel for FnKernel<F>
    where
        F: Fn(&TaskCtx) -> Result<TaskOutput, TaskError> + Send + Sync,
    {
        fn run(&self, ctx: &TaskCtx) -> Result<TaskOutput, TaskError> {
            (self.0)(ctx)
        }
    }
    Arc::new(FnKernel(f))
}

/// A calibrated CPU-burning kernel: spins for the requested wall time.
///
/// The Mini-App throughput experiments (EXP PJ-2) need tasks whose duration
/// is controlled but which genuinely occupy a core — sleeping would let the
/// OS run other work and misrepresent slot contention.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticKernel {
    /// How long to spin, seconds.
    pub spin_s: f64,
}

impl SyntheticKernel {
    /// Spin for `spin_s` seconds of wall time.
    pub fn new(spin_s: f64) -> Self {
        SyntheticKernel { spin_s }
    }
}

impl WorkKernel for SyntheticKernel {
    fn run(&self, _ctx: &TaskCtx) -> Result<TaskOutput, TaskError> {
        let deadline = Instant::now() + Duration::from_secs_f64(self.spin_s.max(0.0));
        // Do a little real arithmetic so the loop cannot be optimized away.
        let mut acc = 0u64;
        while Instant::now() < deadline {
            for i in 0..64u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::spin_loop();
        }
        Ok(TaskOutput::of(acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> TaskCtx {
        TaskCtx {
            unit: UnitId(1),
            pilot: PilotId(1),
            cores: 1,
        }
    }

    #[test]
    fn output_downcast_round_trip() {
        let out = TaskOutput::of(vec![1u32, 2, 3]);
        assert!(out.is_some());
        assert_eq!(out.downcast::<Vec<u32>>().ok(), Some(vec![1, 2, 3]));
        assert!(TaskOutput::none().downcast::<u64>().is_err());
        assert!(!TaskOutput::none().is_some());
    }

    #[test]
    fn downcast_miss_returns_the_value_unconsumed() {
        let out = TaskOutput::of(7u64);
        // Probe for the wrong type: the value survives the miss.
        let out = match out.downcast::<String>() {
            Ok(_) => panic!("u64 is not a String"),
            Err(original) => original,
        };
        assert!(out.is_some(), "miss must not destroy the value");
        assert_eq!(out.downcast::<u64>().ok(), Some(7));
    }

    #[test]
    fn downcast_ref_probes_without_consuming() {
        let out = TaskOutput::of(vec![1.0f64, 2.0]);
        assert!(out.downcast_ref::<String>().is_none());
        assert_eq!(out.downcast_ref::<Vec<f64>>(), Some(&vec![1.0, 2.0]));
        // Still consumable afterwards.
        assert_eq!(out.downcast::<Vec<f64>>().ok(), Some(vec![1.0, 2.0]));
        assert_eq!(TaskOutput::none().downcast_ref::<u8>(), None);
    }

    #[test]
    fn kernel_fn_adapts_closures() {
        let k = kernel_fn(|ctx| Ok(TaskOutput::of(ctx.cores * 2)));
        let out = k.run(&ctx()).unwrap();
        assert_eq!(out.downcast::<u32>().ok(), Some(2));
        let failing = kernel_fn(|_| Err(TaskError("boom".into())));
        assert_eq!(failing.run(&ctx()).unwrap_err().0, "boom");
    }

    #[test]
    fn synthetic_kernel_spins_approximately_right() {
        let k = SyntheticKernel::new(0.05);
        let t = Instant::now();
        k.run(&ctx()).unwrap();
        let elapsed = t.elapsed().as_secs_f64();
        assert!(elapsed >= 0.05, "spun only {elapsed}s");
        assert!(elapsed < 0.5, "spun way too long: {elapsed}s");
    }

    #[test]
    fn synthetic_kernel_zero_duration_is_instant() {
        let k = SyntheticKernel::new(0.0);
        let t = Instant::now();
        k.run(&ctx()).unwrap();
        assert!(t.elapsed().as_secs_f64() < 0.05);
    }

    #[test]
    fn task_error_display() {
        let e = TaskError("x".into());
        assert_eq!(e.to_string(), "task error: x");
    }
}
