//! The pilot agent: a worker-thread pool executing assigned units.
//!
//! One agent per active pilot. Workers pull assignments from a shared
//! channel (crossbeam MPMC), stamp start/finish times against the service's
//! epoch, catch kernel panics, and report results back to the manager loop.

use super::kernel::{TaskCtx, TaskError, TaskOutput, WorkKernel};
use crate::ids::{PilotId, UnitId};
use crossbeam::channel::{unbounded, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit handed to the agent for execution.
pub(super) struct Assignment {
    pub unit: UnitId,
    /// Attempt generation at bind time. Echoed in every report so the
    /// manager can drop reports from attempts it already abandoned
    /// (deadline expiry, pilot crash, retry).
    pub gen: u64,
    pub cores: u32,
    pub kernel: Arc<dyn WorkKernel>,
    /// Set by the manager if the unit was canceled after binding; the worker
    /// skips execution when it observes the flag.
    pub cancel_flag: Arc<AtomicBool>,
}

/// What a worker reports back to the manager loop.
pub(super) enum AgentReport {
    Started {
        unit: UnitId,
        gen: u64,
        t: f64,
    },
    Finished {
        unit: UnitId,
        gen: u64,
        t: f64,
        result: Result<TaskOutput, TaskError>,
    },
    Skipped {
        unit: UnitId,
        gen: u64,
        t: f64,
    },
}

enum Cmd {
    Run(Assignment),
    Stop,
}

/// Worker pool bound to one pilot.
pub(super) struct Agent {
    tx: Sender<Cmd>,
    workers: Vec<JoinHandle<()>>,
    cores: u32,
}

impl Agent {
    /// Spawn `cores` workers reporting to `report_tx` with timestamps
    /// relative to `epoch`.
    pub fn new(pilot: PilotId, cores: u32, epoch: Instant, report_tx: Sender<AgentReport>) -> Self {
        let (tx, rx) = unbounded::<Cmd>();
        let workers = (0..cores.max(1))
            .map(|i| {
                let rx = rx.clone();
                let report = report_tx.clone();
                std::thread::Builder::new()
                    .name(format!("{pilot}-w{i}"))
                    .spawn(move || {
                        while let Ok(cmd) = rx.recv() {
                            match cmd {
                                Cmd::Stop => break,
                                Cmd::Run(a) => {
                                    let now = || epoch.elapsed().as_secs_f64();
                                    if a.cancel_flag.load(Ordering::Acquire) {
                                        let _ = report.send(AgentReport::Skipped {
                                            unit: a.unit,
                                            gen: a.gen,
                                            t: now(),
                                        });
                                        continue;
                                    }
                                    let _ = report.send(AgentReport::Started {
                                        unit: a.unit,
                                        gen: a.gen,
                                        t: now(),
                                    });
                                    let ctx = TaskCtx {
                                        unit: a.unit,
                                        pilot,
                                        cores: a.cores,
                                    };
                                    let result =
                                        match catch_unwind(AssertUnwindSafe(|| a.kernel.run(&ctx)))
                                        {
                                            Ok(r) => r,
                                            Err(panic) => {
                                                let msg = panic
                                                    .downcast_ref::<&str>()
                                                    .map(|s| s.to_string())
                                                    .or_else(|| {
                                                        panic.downcast_ref::<String>().cloned()
                                                    })
                                                    .unwrap_or_else(|| {
                                                        "kernel panicked".to_string()
                                                    });
                                                Err(TaskError(format!("panic: {msg}")))
                                            }
                                        };
                                    let _ = report.send(AgentReport::Finished {
                                        unit: a.unit,
                                        gen: a.gen,
                                        t: now(),
                                        result,
                                    });
                                }
                            }
                        }
                    })
                    // lint: allow(panic, reason = "thread spawn fails only on OS resource exhaustion; a pilot without its workers cannot honor its core count")
                    .expect("spawn agent worker")
            })
            .collect();
        Agent { tx, workers, cores }
    }

    /// Queue a unit for execution.
    pub fn submit(&self, a: Assignment) {
        // Send can only fail if all workers exited (after stop); assignments
        // at that point were already drained back by the manager.
        let _ = self.tx.send(Cmd::Run(a));
    }

    /// Stop workers after they drain already-queued assignments.
    pub fn stop(&self) {
        for _ in 0..self.cores.max(1) {
            let _ = self.tx.send(Cmd::Stop);
        }
    }

    /// Join all workers (after `stop`). The manager tears down with
    /// [`detach`](Self::detach) instead; joining is for tests that need the
    /// workers provably drained.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn join(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Drop the worker handles without joining. The manager uses this
    /// instead of `join` so a kernel that ignores its deadline (or a worker
    /// stranded by a crashed pilot) cannot wedge teardown; idle workers
    /// still exit on their queued `Stop` commands.
    pub fn detach(self) {
        drop(self.workers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::kernel::kernel_fn;
    use crossbeam::channel::unbounded;

    fn mk_agent(cores: u32) -> (Agent, crossbeam::channel::Receiver<AgentReport>) {
        let (tx, rx) = unbounded();
        let agent = Agent::new(PilotId(1), cores, Instant::now(), tx);
        (agent, rx)
    }

    fn assignment(unit: u64, kernel: Arc<dyn WorkKernel>) -> Assignment {
        Assignment {
            unit: UnitId(unit),
            gen: 0,
            cores: 1,
            kernel,
            cancel_flag: Arc::new(AtomicBool::new(false)),
        }
    }

    #[test]
    fn executes_and_reports_in_order_per_unit() {
        let (agent, rx) = mk_agent(1);
        agent.submit(assignment(1, kernel_fn(|_| Ok(TaskOutput::of(42u32)))));
        let started = rx.recv().unwrap();
        assert!(matches!(
            started,
            AgentReport::Started {
                unit: UnitId(1),
                ..
            }
        ));
        let finished = rx.recv().unwrap();
        match finished {
            AgentReport::Finished { unit, result, .. } => {
                assert_eq!(unit, UnitId(1));
                assert_eq!(result.unwrap().downcast::<u32>().ok(), Some(42));
            }
            _ => panic!("expected Finished"),
        }
        agent.stop();
        agent.join();
    }

    #[test]
    fn panicking_kernel_reports_failure_and_worker_survives() {
        let (agent, rx) = mk_agent(1);
        agent.submit(assignment(1, kernel_fn(|_| panic!("kaboom"))));
        agent.submit(assignment(2, kernel_fn(|_| Ok(TaskOutput::none()))));
        let mut failed = false;
        let mut second_ok = false;
        for _ in 0..4 {
            match rx.recv().unwrap() {
                AgentReport::Finished { unit, result, .. } => {
                    if unit == UnitId(1) {
                        let err = result.unwrap_err();
                        assert!(err.0.contains("kaboom"), "{err}");
                        failed = true;
                    } else {
                        assert!(result.is_ok());
                        second_ok = true;
                    }
                }
                AgentReport::Started { .. } => {}
                AgentReport::Skipped { .. } => panic!("nothing canceled"),
            }
        }
        assert!(failed && second_ok);
        agent.stop();
        agent.join();
    }

    #[test]
    fn cancel_flag_skips_execution() {
        let (agent, rx) = mk_agent(1);
        let flag = Arc::new(AtomicBool::new(true));
        agent.submit(Assignment {
            unit: UnitId(9),
            gen: 0,
            cores: 1,
            kernel: kernel_fn(|_| Ok(TaskOutput::of(1u8))),
            cancel_flag: flag,
        });
        match rx.recv().unwrap() {
            AgentReport::Skipped { unit, .. } => assert_eq!(unit, UnitId(9)),
            _ => panic!("expected Skipped"),
        }
        agent.stop();
        agent.join();
    }

    #[test]
    fn stop_drains_queued_work_first() {
        let (agent, rx) = mk_agent(1);
        for i in 0..5 {
            agent.submit(assignment(i, kernel_fn(|_| Ok(TaskOutput::none()))));
        }
        agent.stop();
        let finished = rx
            .iter()
            .filter(|r| matches!(r, AgentReport::Finished { .. }))
            .count();
        assert_eq!(finished, 5, "FIFO channel drains Run before Stop");
        agent.join();
    }

    #[test]
    fn multicore_agent_runs_units_concurrently() {
        let (agent, rx) = mk_agent(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        for i in 0..4 {
            let b = Arc::clone(&barrier);
            agent.submit(assignment(
                i,
                kernel_fn(move |_| {
                    // Deadlocks unless all four run at once.
                    b.wait();
                    Ok(TaskOutput::none())
                }),
            ));
        }
        let mut finished = 0;
        while finished < 4 {
            if let AgentReport::Finished { result, .. } = rx.recv().unwrap() {
                assert!(result.is_ok());
                finished += 1;
            }
        }
        agent.stop();
        agent.join();
    }
}
