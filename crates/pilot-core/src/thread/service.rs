//! The threaded Pilot-API service: pilot manager + unit manager + late-binding
//! scheduler as one event-loop thread, with blocking handles for applications.

use super::agent::{Agent, AgentReport, Assignment};
use super::kernel::{TaskError, TaskOutput, WorkKernel};
use crate::describe::{PilotDescription, UnitDescription};
use crate::ids::{IdGen, PilotId, UnitId};
use crate::metrics::{PilotTimes, UnitRecord, UnitTimes};
use crate::scheduler::{PilotSnapshot, Scheduler, UnitRequest};
use crate::state::{PilotState, UnitState};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use pilot_infra::types::SiteId;
use pilot_sim::SimDuration;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Result of waiting on a unit.
#[derive(Debug)]
pub struct UnitOutcome {
    /// Terminal state reached.
    pub state: UnitState,
    /// Timestamps.
    pub times: UnitTimes,
    /// Kernel result, if it ran. Taken on first wait.
    pub output: Option<Result<TaskOutput, TaskError>>,
}

/// Snapshot of a finished (or shut-down) service run.
#[derive(Debug)]
pub struct ServiceReport {
    /// Per-unit records.
    pub units: Vec<UnitRecord>,
    /// Per-pilot: id, label, site, terminal state, timestamps.
    pub pilots: Vec<(PilotId, String, SiteId, PilotState, PilotTimes)>,
}

impl ServiceReport {
    /// Timing records of all units that reached `Done`.
    pub fn done_unit_times(&self) -> Vec<UnitTimes> {
        self.units
            .iter()
            .filter(|u| u.state == UnitState::Done)
            .map(|u| u.times)
            .collect()
    }
}

enum Msg {
    SubmitPilot {
        id: PilotId,
        desc: PilotDescription,
        site: SiteId,
    },
    PilotUp(PilotId),
    PilotExpired(PilotId),
    SubmitUnit {
        id: UnitId,
        desc: UnitDescription,
        kernel: Arc<dyn WorkKernel>,
    },
    CancelPilot(PilotId),
    CancelUnit(UnitId),
    Shutdown,
}

#[derive(Clone, Debug)]
struct PilotPublic {
    state: PilotState,
    times: PilotTimes,
    site: SiteId,
    label: String,
}

struct UnitPublic {
    state: UnitState,
    times: UnitTimes,
    pilot: Option<PilotId>,
    tag: String,
    output: Option<Result<TaskOutput, TaskError>>,
}

#[derive(Default)]
struct RegInner {
    pilots: HashMap<PilotId, PilotPublic>,
    units: HashMap<UnitId, UnitPublic>,
    open_units: usize,
}

struct Registry {
    inner: Mutex<RegInner>,
    cv: Condvar,
}

impl Registry {
    fn update<R>(&self, f: impl FnOnce(&mut RegInner) -> R) -> R {
        let mut g = self.inner.lock();
        let r = f(&mut g);
        drop(g);
        self.cv.notify_all();
        r
    }
}

struct PilotRt {
    site: SiteId,
    cores: u32,
    free_cores: u32,
    state: PilotState,
    accepting: bool,
    drain_to: PilotState,
    agent: Option<Agent>,
    bound: usize,
    deadline: Option<Instant>,
    walltime: SimDuration,
    startup_delay_s: f64,
}

struct UnitRt {
    desc: UnitDescription,
    kernel: Arc<dyn WorkKernel>,
    state: UnitState,
    pilot: Option<PilotId>,
    cancel_flag: Arc<AtomicBool>,
}

/// Real-execution Pilot-API service. See the [module docs](super).
pub struct ThreadPilotService {
    tx: Sender<Msg>,
    registry: Arc<Registry>,
    manager: Option<JoinHandle<()>>,
    ids: IdGen,
}

impl ThreadPilotService {
    /// Start a service with the given late-binding scheduler.
    pub fn new(scheduler: Box<dyn Scheduler>) -> Self {
        let (tx, rx) = unbounded::<Msg>();
        let (report_tx, report_rx) = unbounded::<AgentReport>();
        let registry = Arc::new(Registry {
            inner: Mutex::new(RegInner::default()),
            cv: Condvar::new(),
        });
        let mgr_registry = Arc::clone(&registry);
        let self_tx = tx.clone();
        let manager = std::thread::Builder::new()
            .name("pilot-manager".into())
            .spawn(move || {
                Mgr {
                    scheduler,
                    pilots: HashMap::new(),
                    units: HashMap::new(),
                    pending: Vec::new(),
                    registry: mgr_registry,
                    epoch: Instant::now(),
                    self_tx,
                    report_tx,
                    shutting_down: false,
                }
                .run(rx, report_rx)
            })
            .expect("spawn pilot manager");
        ThreadPilotService {
            tx,
            registry,
            manager: Some(manager),
            ids: IdGen::new(),
        }
    }

    /// Submit a pilot on the default site (0).
    pub fn submit_pilot(&self, desc: PilotDescription) -> PilotId {
        self.submit_pilot_at(desc, SiteId(0))
    }

    /// Submit a pilot "on" a named site (sites are labels for data-locality
    /// scheduling in the threaded backend — all execution is local).
    pub fn submit_pilot_at(&self, desc: PilotDescription, site: SiteId) -> PilotId {
        let id = self.ids.pilot();
        let _ = self.tx.send(Msg::SubmitPilot { id, desc, site });
        id
    }

    /// Submit a compute unit with a kernel.
    pub fn submit_unit(&self, desc: UnitDescription, kernel: Arc<dyn WorkKernel>) -> UnitId {
        let id = self.ids.unit();
        // Count the unit as open *here*, on the caller thread, so a
        // wait_all_units() racing ahead of the manager loop cannot observe
        // zero open units before this submission is processed.
        self.registry.update(|r| r.open_units += 1);
        let _ = self.tx.send(Msg::SubmitUnit { id, desc, kernel });
        id
    }

    /// Request a graceful pilot teardown (drains assigned units).
    pub fn cancel_pilot(&self, id: PilotId) {
        let _ = self.tx.send(Msg::CancelPilot(id));
    }

    /// Cancel a unit. Pending units cancel immediately; assigned ones are
    /// skipped by the agent; running ones complete (cooperative semantics).
    pub fn cancel_unit(&self, id: UnitId) {
        let _ = self.tx.send(Msg::CancelUnit(id));
    }

    /// Current state of a pilot.
    pub fn pilot_state(&self, id: PilotId) -> Option<PilotState> {
        self.registry.inner.lock().pilots.get(&id).map(|p| p.state)
    }

    /// Current state of a unit.
    pub fn unit_state(&self, id: UnitId) -> Option<UnitState> {
        self.registry.inner.lock().units.get(&id).map(|u| u.state)
    }

    /// Block until the pilot leaves `Pending`; true iff it became `Active`.
    pub fn wait_pilot_active(&self, id: PilotId) -> bool {
        let mut g = self.registry.inner.lock();
        loop {
            match g.pilots.get(&id).map(|p| p.state) {
                Some(PilotState::Active) => return true,
                Some(s) if s.is_terminal() => return false,
                _ => self.registry.cv.wait(&mut g),
            }
        }
    }

    /// Block until the unit is terminal; returns its outcome (output is
    /// *taken* — a second wait returns `output: None`).
    pub fn wait_unit(&self, id: UnitId) -> UnitOutcome {
        let mut g = self.registry.inner.lock();
        loop {
            if let Some(u) = g.units.get_mut(&id) {
                if u.state.is_terminal() {
                    return UnitOutcome {
                        state: u.state,
                        times: u.times,
                        output: u.output.take(),
                    };
                }
            }
            self.registry.cv.wait(&mut g);
        }
    }

    /// Block until every submitted unit is terminal.
    pub fn wait_all_units(&self) {
        let mut g = self.registry.inner.lock();
        while g.open_units > 0 {
            self.registry.cv.wait(&mut g);
        }
    }

    /// Like [`wait_all_units`](Self::wait_all_units) with a timeout;
    /// true iff everything finished.
    pub fn wait_all_units_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.registry.inner.lock();
        while g.open_units > 0 {
            if self.registry.cv.wait_until(&mut g, deadline).timed_out() {
                return g.open_units == 0;
            }
        }
        true
    }

    /// Drain and stop: cancels pending units, drains assigned ones, tears
    /// down agents, and returns the run report.
    pub fn shutdown(mut self) -> ServiceReport {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.manager.take() {
            let _ = h.join();
        }
        let mut g = self.registry.inner.lock();
        let units = g
            .units
            .iter_mut()
            .map(|(&unit, u)| UnitRecord {
                unit,
                pilot: u.pilot,
                times: u.times,
                state: u.state,
                tag: u.tag.clone(),
            })
            .collect();
        let pilots = g
            .pilots
            .iter()
            .map(|(&id, p)| (id, p.label.clone(), p.site, p.state, p.times))
            .collect();
        ServiceReport { units, pilots }
    }
}

impl Drop for ThreadPilotService {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.manager.take() {
            let _ = h.join();
        }
    }
}

struct Mgr {
    scheduler: Box<dyn Scheduler>,
    pilots: HashMap<PilotId, PilotRt>,
    units: HashMap<UnitId, UnitRt>,
    pending: Vec<UnitId>,
    registry: Arc<Registry>,
    epoch: Instant,
    self_tx: Sender<Msg>,
    report_tx: Sender<AgentReport>,
    shutting_down: bool,
}

impl Mgr {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn run(mut self, rx: Receiver<Msg>, report_rx: Receiver<AgentReport>) {
        loop {
            crossbeam::channel::select! {
                recv(rx) -> msg => match msg {
                    Ok(m) => self.on_msg(m),
                    Err(_) => self.shutting_down = true,
                },
                recv(report_rx) -> rep => if let Ok(r) = rep {
                    self.on_report(r);
                },
            }
            if self.shutting_down && self.all_quiet() {
                break;
            }
        }
        // Tear down agents.
        for (_, p) in self.pilots.iter_mut() {
            if let Some(agent) = p.agent.take() {
                agent.stop();
                agent.join();
            }
        }
    }

    fn all_quiet(&self) -> bool {
        self.pilots.values().all(|p| p.bound == 0)
    }

    fn on_msg(&mut self, msg: Msg) {
        match msg {
            Msg::SubmitPilot { id, desc, site } => self.submit_pilot(id, desc, site),
            Msg::PilotUp(id) => self.pilot_up(id),
            Msg::PilotExpired(id) => self.teardown_pilot(id, PilotState::Done),
            Msg::SubmitUnit { id, desc, kernel } => self.submit_unit(id, desc, kernel),
            Msg::CancelPilot(id) => self.teardown_pilot(id, PilotState::Canceled),
            Msg::CancelUnit(id) => self.cancel_unit(id),
            Msg::Shutdown => self.begin_shutdown(),
        }
    }

    fn submit_pilot(&mut self, id: PilotId, desc: PilotDescription, site: SiteId) {
        let now = self.now();
        let rt = PilotRt {
            site,
            cores: desc.cores.max(1),
            free_cores: desc.cores.max(1),
            state: PilotState::Pending,
            accepting: true,
            drain_to: PilotState::Done,
            agent: None,
            bound: 0,
            deadline: None,
            walltime: desc.walltime,
            startup_delay_s: desc.startup_delay_s,
        };
        self.registry.update(|r| {
            r.pilots.insert(
                id,
                PilotPublic {
                    state: PilotState::Pending,
                    times: PilotTimes {
                        submitted: now,
                        ..Default::default()
                    },
                    site,
                    label: desc.label.clone(),
                },
            );
        });
        let delay = rt.startup_delay_s;
        self.pilots.insert(id, rt);
        if delay > 0.0 {
            let tx = self.self_tx.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_secs_f64(delay));
                let _ = tx.send(Msg::PilotUp(id));
            });
        } else {
            self.pilot_up(id);
        }
    }

    fn pilot_up(&mut self, id: PilotId) {
        let now = self.now();
        let Some(p) = self.pilots.get_mut(&id) else {
            return;
        };
        if p.state != PilotState::Pending {
            return; // canceled before startup
        }
        p.state = PilotState::Active;
        p.agent = Some(Agent::new(id, p.cores, self.epoch, self.report_tx.clone()));
        // Arm the walltime only for finite requests.
        if p.walltime != SimDuration::MAX {
            let wt = p.walltime.as_secs_f64();
            p.deadline = Some(Instant::now() + Duration::from_secs_f64(wt));
            let tx = self.self_tx.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_secs_f64(wt));
                let _ = tx.send(Msg::PilotExpired(id));
            });
        }
        self.registry.update(|r| {
            if let Some(pp) = r.pilots.get_mut(&id) {
                pp.state = PilotState::Active;
                pp.times.active = Some(now);
            }
        });
        self.schedule();
    }

    fn submit_unit(&mut self, id: UnitId, desc: UnitDescription, kernel: Arc<dyn WorkKernel>) {
        let now = self.now();
        if self.shutting_down {
            // Refuse late submissions but keep the open-unit count balanced.
            let tag = desc.tag.clone();
            self.registry.update(|r| {
                r.units.insert(
                    id,
                    UnitPublic {
                        state: UnitState::Canceled,
                        times: UnitTimes {
                            submitted: now,
                            finished: Some(now),
                            ..Default::default()
                        },
                        pilot: None,
                        tag,
                        output: None,
                    },
                );
                r.open_units -= 1;
            });
            return;
        }
        let tag = desc.tag.clone();
        self.units.insert(
            id,
            UnitRt {
                desc,
                kernel,
                state: UnitState::Pending,
                pilot: None,
                cancel_flag: Arc::new(AtomicBool::new(false)),
            },
        );
        self.pending.push(id);
        self.registry.update(|r| {
            r.units.insert(
                id,
                UnitPublic {
                    state: UnitState::Pending,
                    times: UnitTimes {
                        submitted: now,
                        ..Default::default()
                    },
                    pilot: None,
                    tag,
                    output: None,
                },
            );
        });
        self.schedule();
    }

    /// Late binding: repeatedly bind the highest-priority pending unit that
    /// fits somewhere, until nothing more binds.
    fn schedule(&mut self) {
        // Priority order: higher priority first, then FIFO by id.
        self.pending
            .sort_by_key(|id| (-self.units[id].desc.priority, id.0));
        loop {
            // Pending pilots are visible with zero free cores so that
            // delay-scheduling policies (data-aware) can wait for capacity
            // that is already on its way instead of binding remotely.
            let snapshots: Vec<PilotSnapshot> = self
                .pilots
                .iter()
                .filter(|(_, p)| {
                    (p.state == PilotState::Active && p.accepting)
                        || p.state == PilotState::Pending
                })
                .map(|(&id, p)| PilotSnapshot {
                    pilot: id,
                    site: p.site,
                    total_cores: p.cores,
                    free_cores: if p.state == PilotState::Pending {
                        0
                    } else {
                        p.free_cores
                    },
                    bound_units: p.bound,
                    remaining_walltime_s: p
                        .deadline
                        .map(|d| d.saturating_duration_since(Instant::now()).as_secs_f64())
                        .unwrap_or(f64::INFINITY),
                })
                .collect();
            if snapshots.is_empty() {
                return;
            }
            let mut bound_any = false;
            for i in 0..self.pending.len() {
                let uid = self.pending[i];
                let unit = &self.units[&uid];
                let choice = self.scheduler.select(
                    &UnitRequest {
                        unit: uid,
                        desc: &unit.desc,
                    },
                    &snapshots,
                );
                if let Some(pid) = choice {
                    self.bind(uid, pid);
                    self.pending.remove(i);
                    bound_any = true;
                    break; // snapshots are stale; rebuild
                }
            }
            if !bound_any {
                return;
            }
        }
    }

    fn bind(&mut self, uid: UnitId, pid: PilotId) {
        let now = self.now();
        let unit = self.units.get_mut(&uid).expect("pending unit exists");
        let p = self.pilots.get_mut(&pid).expect("scheduler returned live pilot");
        assert!(
            p.free_cores >= unit.desc.cores,
            "scheduler over-committed pilot {pid}"
        );
        p.free_cores -= unit.desc.cores;
        p.bound += 1;
        unit.state = UnitState::Assigned;
        unit.pilot = Some(pid);
        let assignment = Assignment {
            unit: uid,
            cores: unit.desc.cores,
            kernel: Arc::clone(&unit.kernel),
            cancel_flag: Arc::clone(&unit.cancel_flag),
        };
        p.agent.as_ref().expect("active pilot has agent").submit(assignment);
        self.registry.update(|r| {
            if let Some(u) = r.units.get_mut(&uid) {
                u.state = UnitState::Assigned;
                u.pilot = Some(pid);
                u.times.bound = Some(now);
            }
        });
    }

    fn on_report(&mut self, rep: AgentReport) {
        match rep {
            AgentReport::Started { unit, t } => {
                if let Some(u) = self.units.get_mut(&unit) {
                    u.state = UnitState::Running;
                }
                self.registry.update(|r| {
                    if let Some(u) = r.units.get_mut(&unit) {
                        u.state = UnitState::Running;
                        u.times.started = Some(t);
                    }
                });
            }
            AgentReport::Finished { unit, t, result } => {
                let state = if result.is_ok() {
                    UnitState::Done
                } else {
                    UnitState::Failed
                };
                self.finish_unit(unit, t, state, Some(result));
            }
            AgentReport::Skipped { unit, t } => {
                self.finish_unit(unit, t, UnitState::Canceled, None);
            }
        }
    }

    fn finish_unit(
        &mut self,
        uid: UnitId,
        t: f64,
        state: UnitState,
        output: Option<Result<TaskOutput, TaskError>>,
    ) {
        let Some(u) = self.units.get_mut(&uid) else {
            return;
        };
        u.state = state;
        let pilot = u.pilot;
        let cores = u.desc.cores;
        if let Some(pid) = pilot {
            if let Some(p) = self.pilots.get_mut(&pid) {
                p.free_cores += cores;
                p.bound -= 1;
            }
        }
        self.registry.update(|r| {
            if let Some(up) = r.units.get_mut(&uid) {
                up.state = state;
                up.times.finished = Some(t);
                up.output = output;
            }
            r.open_units -= 1;
        });
        // A draining pilot with nothing left finalizes now.
        if let Some(pid) = pilot {
            self.maybe_finalize_pilot(pid);
        }
        self.schedule();
    }

    fn teardown_pilot(&mut self, pid: PilotId, to: PilotState) {
        let Some(p) = self.pilots.get_mut(&pid) else {
            return;
        };
        match p.state {
            PilotState::Pending => {
                p.state = to;
                let now = self.now();
                self.registry.update(|r| {
                    if let Some(pp) = r.pilots.get_mut(&pid) {
                        pp.state = to;
                        pp.times.finished = Some(now);
                    }
                });
            }
            PilotState::Active => {
                p.accepting = false;
                p.drain_to = to;
                self.maybe_finalize_pilot(pid);
            }
            _ => {}
        }
    }

    fn maybe_finalize_pilot(&mut self, pid: PilotId) {
        let Some(p) = self.pilots.get_mut(&pid) else {
            return;
        };
        if p.state == PilotState::Active && !p.accepting && p.bound == 0 {
            let to = p.drain_to;
            p.state = to;
            if let Some(agent) = p.agent.take() {
                agent.stop();
                // Joining here is safe: the agent has no queued work left.
                agent.join();
            }
            let now = self.now();
            self.registry.update(|r| {
                if let Some(pp) = r.pilots.get_mut(&pid) {
                    pp.state = to;
                    pp.times.finished = Some(now);
                }
            });
        }
    }

    fn cancel_unit(&mut self, uid: UnitId) {
        let Some(u) = self.units.get_mut(&uid) else {
            return;
        };
        match u.state {
            UnitState::Pending => {
                u.state = UnitState::Canceled;
                self.pending.retain(|&p| p != uid);
                let now = self.now();
                self.registry.update(|r| {
                    if let Some(up) = r.units.get_mut(&uid) {
                        up.state = UnitState::Canceled;
                        up.times.finished = Some(now);
                    }
                    r.open_units -= 1;
                });
            }
            UnitState::Assigned => {
                // The agent will observe the flag and skip.
                u.cancel_flag.store(true, Ordering::Release);
            }
            _ => {} // running or terminal: cooperative semantics, no-op
        }
    }

    fn begin_shutdown(&mut self) {
        self.shutting_down = true;
        // Cancel everything still pending.
        let pending = std::mem::take(&mut self.pending);
        let now = self.now();
        for uid in pending {
            if let Some(u) = self.units.get_mut(&uid) {
                u.state = UnitState::Canceled;
            }
            self.registry.update(|r| {
                if let Some(up) = r.units.get_mut(&uid) {
                    up.state = UnitState::Canceled;
                    up.times.finished = Some(now);
                }
                r.open_units -= 1;
            });
        }
        // Drain all pilots.
        let pids: Vec<PilotId> = self.pilots.keys().copied().collect();
        for pid in pids {
            self.teardown_pilot(pid, PilotState::Done);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FirstFitScheduler, LoadBalanceScheduler};
    use crate::thread::kernel::{kernel_fn, SyntheticKernel, TaskOutput};

    fn svc() -> ThreadPilotService {
        ThreadPilotService::new(Box::new(FirstFitScheduler))
    }

    fn forever() -> SimDuration {
        SimDuration::MAX
    }

    #[test]
    fn submit_run_wait_roundtrip() {
        let s = svc();
        let p = s.submit_pilot(PilotDescription::new(2, forever()));
        assert!(s.wait_pilot_active(p));
        let u = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|ctx| Ok(TaskOutput::of(ctx.cores + 41))),
        );
        let out = s.wait_unit(u);
        assert_eq!(out.state, UnitState::Done);
        assert_eq!(out.output.unwrap().unwrap().downcast::<u32>(), Some(42));
        assert!(out.times.turnaround().unwrap() >= 0.0);
        let report = s.shutdown();
        assert_eq!(report.units.len(), 1);
        assert_eq!(report.pilots.len(), 1);
        assert_eq!(report.done_unit_times().len(), 1);
    }

    #[test]
    fn late_binding_unit_waits_for_pilot() {
        let s = svc();
        // Unit submitted first; no pilot yet.
        let u = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(s.unit_state(u), Some(UnitState::Pending));
        // Pilot arrives; unit binds and completes.
        let _p = s.submit_pilot(PilotDescription::new(1, forever()));
        let out = s.wait_unit(u);
        assert_eq!(out.state, UnitState::Done);
        assert!(
            out.times.wait().unwrap() >= 0.025,
            "wait should include the pilot-less gap"
        );
    }

    #[test]
    fn startup_delay_shows_in_pilot_times() {
        let s = svc();
        let p = s.submit_pilot(PilotDescription::new(1, forever()).with_startup_delay(0.08));
        assert!(s.wait_pilot_active(p));
        let report = s.shutdown();
        let (_, _, _, _, times) = &report.pilots[0];
        assert!(times.startup_overhead().unwrap() >= 0.08);
    }

    #[test]
    fn failing_kernel_marks_unit_failed() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(1, forever()));
        let u = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Err(TaskError("deliberate".into()))),
        );
        let out = s.wait_unit(u);
        assert_eq!(out.state, UnitState::Failed);
        assert_eq!(out.output.unwrap().unwrap_err().0, "deliberate");
    }

    #[test]
    fn panicking_kernel_marks_unit_failed_and_pilot_survives() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(1, forever()));
        let bad = s.submit_unit(UnitDescription::new(1), kernel_fn(|_| panic!("chaos")));
        let out = s.wait_unit(bad);
        assert_eq!(out.state, UnitState::Failed);
        // Pilot still works.
        let good = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::of(1u8))),
        );
        assert_eq!(s.wait_unit(good).state, UnitState::Done);
    }

    #[test]
    fn capacity_is_respected() {
        // 2-core pilot, four 1-core units that each hold a token: at most 2
        // may overlap.
        use std::sync::atomic::AtomicU32;
        let s = svc();
        s.submit_pilot(PilotDescription::new(2, forever()));
        let live = Arc::new(AtomicU32::new(0));
        let peak = Arc::new(AtomicU32::new(0));
        let mk = |live: Arc<AtomicU32>, peak: Arc<AtomicU32>| {
            kernel_fn(move |_| {
                let n = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(n, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(40));
                live.fetch_sub(1, Ordering::SeqCst);
                Ok(TaskOutput::none())
            })
        };
        let units: Vec<UnitId> = (0..4)
            .map(|_| {
                s.submit_unit(
                    UnitDescription::new(1),
                    mk(Arc::clone(&live), Arc::clone(&peak)),
                )
            })
            .collect();
        for u in units {
            assert_eq!(s.wait_unit(u).state, UnitState::Done);
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "over-committed");
        assert_eq!(peak.load(Ordering::SeqCst), 2, "should use both cores");
    }

    #[test]
    fn multicore_unit_reserves_cores() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(2, forever()));
        // A 2-core unit blocks a 1-core unit from overlapping.
        let t0 = Instant::now();
        let wide = s.submit_unit(
            UnitDescription::new(2),
            Arc::new(SyntheticKernel::new(0.05)),
        );
        let narrow = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        s.wait_unit(wide);
        let out = s.wait_unit(narrow);
        assert!(
            out.times.started.unwrap() >= 0.05 - 0.005,
            "narrow unit must wait for the wide one, started at {:?} (t0 {:?})",
            out.times.started,
            t0.elapsed()
        );
    }

    #[test]
    fn cancel_pending_unit() {
        let s = svc();
        // No pilot: unit stays pending.
        let u = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        std::thread::sleep(Duration::from_millis(20));
        s.cancel_unit(u);
        let out = s.wait_unit(u);
        assert_eq!(out.state, UnitState::Canceled);
        assert!(out.output.is_none());
    }

    #[test]
    fn pilot_walltime_expiry_drains() {
        let s = svc();
        let p = s.submit_pilot(PilotDescription::new(1, SimDuration::from_millis(80)));
        assert!(s.wait_pilot_active(p));
        let u = s.submit_unit(
            UnitDescription::new(1),
            Arc::new(SyntheticKernel::new(0.02)),
        );
        assert_eq!(s.wait_unit(u).state, UnitState::Done);
        // After expiry the pilot is Done and accepts nothing.
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(s.pilot_state(p), Some(PilotState::Done));
        let orphan = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(s.unit_state(orphan), Some(UnitState::Pending));
        s.cancel_unit(orphan);
    }

    #[test]
    fn cancel_pilot_before_startup() {
        let s = svc();
        let p = s.submit_pilot(PilotDescription::new(1, forever()).with_startup_delay(5.0));
        s.cancel_pilot(p);
        assert!(!s.wait_pilot_active(p));
        assert_eq!(s.pilot_state(p), Some(PilotState::Canceled));
    }

    #[test]
    fn load_balance_spreads_units_across_pilots() {
        let s = ThreadPilotService::new(Box::new(LoadBalanceScheduler));
        let p1 = s.submit_pilot(PilotDescription::new(2, forever()));
        let p2 = s.submit_pilot(PilotDescription::new(2, forever()));
        s.wait_pilot_active(p1);
        s.wait_pilot_active(p2);
        let units: Vec<UnitId> = (0..4)
            .map(|_| {
                s.submit_unit(
                    UnitDescription::new(1),
                    Arc::new(SyntheticKernel::new(0.05)),
                )
            })
            .collect();
        for u in &units {
            s.wait_unit(*u);
        }
        let report = s.shutdown();
        let on_p1 = report.units.iter().filter(|u| u.pilot == Some(p1)).count();
        let on_p2 = report.units.iter().filter(|u| u.pilot == Some(p2)).count();
        assert_eq!(on_p1, 2);
        assert_eq!(on_p2, 2);
    }

    #[test]
    fn priority_orders_pending_queue() {
        let s = svc();
        // 1-core pilot ⇒ strictly serial execution; submit while busy.
        s.submit_pilot(PilotDescription::new(1, forever()));
        let blocker = s.submit_unit(
            UnitDescription::new(1),
            Arc::new(SyntheticKernel::new(0.08)),
        );
        std::thread::sleep(Duration::from_millis(20)); // let it start
        let low = s.submit_unit(
            UnitDescription::new(1).with_priority(1).tagged("low"),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        let high = s.submit_unit(
            UnitDescription::new(1).with_priority(10).tagged("high"),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        s.wait_unit(blocker);
        let high_out = s.wait_unit(high);
        let low_out = s.wait_unit(low);
        assert!(
            high_out.times.started.unwrap() <= low_out.times.started.unwrap(),
            "high priority must run first"
        );
        s.shutdown();
    }

    #[test]
    fn wait_all_units_and_timeout() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(4, forever()));
        for _ in 0..8 {
            s.submit_unit(
                UnitDescription::new(1),
                Arc::new(SyntheticKernel::new(0.01)),
            );
        }
        assert!(s.wait_all_units_timeout(Duration::from_secs(10)));
        s.wait_all_units(); // immediate
    }

    #[test]
    fn shutdown_cancels_pending_units() {
        let s = svc();
        // No pilots: everything stays pending and must be canceled on shutdown.
        for _ in 0..3 {
            s.submit_unit(
                UnitDescription::new(1),
                kernel_fn(|_| Ok(TaskOutput::none())),
            );
        }
        let report = s.shutdown();
        assert_eq!(report.units.len(), 3);
        assert!(report
            .units
            .iter()
            .all(|u| u.state == UnitState::Canceled));
    }

    #[test]
    fn overhead_breakdown_from_report() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(4, forever()));
        for _ in 0..10 {
            s.submit_unit(
                UnitDescription::new(1),
                Arc::new(SyntheticKernel::new(0.005)),
            );
        }
        s.wait_all_units();
        let report = s.shutdown();
        let times = report.done_unit_times();
        let b = crate::metrics::overhead_breakdown(times.iter());
        assert_eq!(b.execution.n, 10);
        assert!(b.execution.mean >= 0.005);
        assert!(b.overhead.mean < 0.5, "middleware overhead should be small");
    }
}
