//! The threaded Pilot-API service: pilot manager + unit manager + late-binding
//! scheduler as one event-loop thread, with blocking handles for applications.

use super::agent::{Agent, AgentReport, Assignment};
use super::kernel::{TaskError, TaskOutput, WorkKernel};
use crate::binding::{self, BindStats, PendingQueue};
use crate::describe::{PilotDescription, UnitDescription};
use crate::events::{EventSink, ProjEvent};
use crate::ids::{IdGen, PilotId, UnitId};
use crate::metrics::{PilotTimes, UnitRecord, UnitTimes};
use crate::retry::{streams, FailureTracker, FaultPlan, ReliabilityStats};
use crate::scheduler::{PilotSnapshot, Scheduler};
use crate::state::{PilotState, UnitState};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use pilot_infra::types::SiteId;
use pilot_sim::{SimDuration, SimRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Result of waiting on a unit.
#[derive(Debug)]
pub struct UnitOutcome {
    /// Terminal state reached.
    pub state: UnitState,
    /// Timestamps.
    pub times: UnitTimes,
    /// Kernel result, if it ran. Taken on first wait.
    pub output: Option<Result<TaskOutput, TaskError>>,
}

/// Snapshot of a finished (or shut-down) service run.
#[derive(Debug)]
pub struct ServiceReport {
    /// Per-unit records.
    pub units: Vec<UnitRecord>,
    /// Per-pilot: id, label, site, terminal state, timestamps.
    pub pilots: Vec<(PilotId, String, SiteId, PilotState, PilotTimes)>,
    /// Reliability counters (attempts, requeues, wasted work, recovery).
    pub reliability: ReliabilityStats,
    /// Late-binding hot-path counters (passes, snapshot builds, binds).
    pub bind: BindStats,
}

impl ServiceReport {
    /// Timing records of all units that reached `Done`.
    pub fn done_unit_times(&self) -> Vec<UnitTimes> {
        self.units
            .iter()
            .filter(|u| u.state == UnitState::Done)
            .map(|u| u.times)
            .collect()
    }
}

/// A consistent point-in-time view of the whole registry, cloned under one
/// lock hold. This is the strongest read the lock path can offer — and the
/// QP-1 baseline the projection read plane is measured against: every call
/// still serializes against the manager's write path.
#[derive(Clone, Debug)]
pub struct StatusSnapshot {
    /// Every pilot: id, state, site.
    pub pilots: Vec<(PilotId, PilotState, SiteId)>,
    /// Every unit: id, state, bound pilot (if any).
    pub units: Vec<(UnitId, UnitState, Option<PilotId>)>,
    /// Units not yet terminal.
    pub open_units: usize,
}

enum Msg {
    SubmitPilot {
        id: PilotId,
        desc: PilotDescription,
        site: SiteId,
    },
    PilotUp(PilotId),
    PilotExpired(PilotId),
    SubmitUnit {
        id: UnitId,
        desc: UnitDescription,
        kernel: Arc<dyn WorkKernel>,
    },
    CancelPilot(PilotId),
    CancelUnit(UnitId),
    /// Deadline timer fired for the given attempt generation.
    UnitDeadline(UnitId, u64),
    /// Backoff elapsed: a failed unit re-enters the late-binding queue.
    RetryRelease(UnitId, u64),
    /// Injected pilot crash from the fault plan.
    PilotCrash(PilotId),
    Shutdown,
}

#[derive(Clone, Debug)]
struct PilotPublic {
    state: PilotState,
    times: PilotTimes,
    site: SiteId,
    label: String,
}

struct UnitPublic {
    state: UnitState,
    times: UnitTimes,
    pilot: Option<PilotId>,
    tag: String,
    output: Option<Result<TaskOutput, TaskError>>,
}

#[derive(Default)]
struct RegInner {
    pilots: HashMap<PilotId, PilotPublic>,
    units: HashMap<UnitId, UnitPublic>,
    open_units: usize,
    /// Written by the manager loop when it exits; read by `shutdown`.
    rel: ReliabilityStats,
    /// Written by the manager loop when it exits; read by `shutdown`.
    bind: BindStats,
}

struct Registry {
    inner: Mutex<RegInner>,
    cv: Condvar,
}

impl Registry {
    fn update<R>(&self, f: impl FnOnce(&mut RegInner) -> R) -> R {
        let mut g = self.inner.lock();
        let r = f(&mut g);
        drop(g);
        self.cv.notify_all();
        r
    }
}

struct PilotRt {
    site: SiteId,
    cores: u32,
    free_cores: u32,
    state: PilotState,
    accepting: bool,
    drain_to: PilotState,
    agent: Option<Agent>,
    bound: usize,
    deadline: Option<Instant>,
    walltime: SimDuration,
    startup_delay_s: f64,
}

struct UnitRt {
    desc: UnitDescription,
    kernel: Arc<dyn WorkKernel>,
    state: UnitState,
    pilot: Option<PilotId>,
    cancel_flag: Arc<AtomicBool>,
    /// Bumped whenever the manager abandons the current attempt (retry,
    /// deadline, pilot crash); agent reports with stale generations are
    /// dropped.
    generation: u64,
    /// Failed execution attempts so far (charged against `desc.retry`).
    attempts: u32,
    /// When the last failed attempt happened; consumed at the next bind to
    /// measure time-to-recovery.
    failed_at: Option<f64>,
    /// When the current attempt started running (for wasted-work accounting).
    started_at: Option<f64>,
    /// Fault plan verdict for the current attempt, drawn at bind time: a
    /// doomed attempt runs to completion but its result is replaced with an
    /// injected fault (a kernel cannot be aborted mid-run on real threads).
    doomed: bool,
    /// A backoff timer is armed; the unit is `Failed` but not terminal.
    retry_pending: bool,
    /// When the unit was submitted (read-plane wait-time metric).
    submitted_at: f64,
}

/// Real-execution Pilot-API service. See the [module docs](super).
pub struct ThreadPilotService {
    tx: Sender<Msg>,
    registry: Arc<Registry>,
    manager: Option<JoinHandle<()>>,
    ids: IdGen,
    epoch: Instant,
}

impl ThreadPilotService {
    /// Start a service with the given late-binding scheduler.
    pub fn new(scheduler: Box<dyn Scheduler>) -> Self {
        Self::with_faults(scheduler, FaultPlan::none(), 0)
    }

    /// Start a service that exports read-plane events ([`ProjEvent`]) to
    /// `sink`. The manager emits one `emit_batch` call per drained message
    /// batch, so the write path pays a single batched hand-off regardless of
    /// how many transitions the batch contained.
    pub fn with_sink(scheduler: Box<dyn Scheduler>, sink: Arc<dyn EventSink>) -> Self {
        Self::build(scheduler, FaultPlan::none(), 0, Some(sink))
    }

    /// Start a service with a deterministic fault-injection plan. All fault
    /// draws come from RNG streams derived from `seed`, so the injected
    /// schedule replays identically (execution timings remain wall-clock).
    pub fn with_faults(scheduler: Box<dyn Scheduler>, faults: FaultPlan, seed: u64) -> Self {
        Self::build(scheduler, faults, seed, None)
    }

    /// Fault plan + event sink (see [`with_sink`](Self::with_sink)).
    pub fn with_faults_and_sink(
        scheduler: Box<dyn Scheduler>,
        faults: FaultPlan,
        seed: u64,
        sink: Arc<dyn EventSink>,
    ) -> Self {
        Self::build(scheduler, faults, seed, Some(sink))
    }

    fn build(
        scheduler: Box<dyn Scheduler>,
        faults: FaultPlan,
        seed: u64,
        sink: Option<Arc<dyn EventSink>>,
    ) -> Self {
        let (tx, rx) = unbounded::<Msg>();
        let (report_tx, report_rx) = unbounded::<AgentReport>();
        let registry = Arc::new(Registry {
            inner: Mutex::new(RegInner::default()),
            cv: Condvar::new(),
        });
        let epoch = Instant::now();
        let mgr_registry = Arc::clone(&registry);
        let self_tx = tx.clone();
        let manager = std::thread::Builder::new()
            .name("pilot-manager".into())
            .spawn(move || {
                Mgr {
                    scheduler,
                    pilots: HashMap::new(),
                    units: HashMap::new(),
                    pending: PendingQueue::default(),
                    registry: mgr_registry,
                    epoch,
                    self_tx,
                    report_tx,
                    shutting_down: false,
                    sched_dirty: false,
                    faults,
                    rng: SimRng::new(seed),
                    tracker: FailureTracker::new(faults.blacklist_after),
                    rel: ReliabilityStats::default(),
                    stats: BindStats::default(),
                    sink,
                    ev: Vec::new(),
                }
                .run(rx, report_rx)
            })
            // lint: allow(panic, reason = "thread spawn fails only on OS resource exhaustion at service construction; no caller can proceed without a manager")
            .expect("spawn pilot manager");
        ThreadPilotService {
            tx,
            registry,
            manager: Some(manager),
            ids: IdGen::new(),
            epoch,
        }
    }

    /// Submit a pilot on the default site (0).
    pub fn submit_pilot(&self, desc: PilotDescription) -> PilotId {
        self.submit_pilot_at(desc, SiteId(0))
    }

    /// Submit a pilot "on" a named site (sites are labels for data-locality
    /// scheduling in the threaded backend — all execution is local).
    pub fn submit_pilot_at(&self, desc: PilotDescription, site: SiteId) -> PilotId {
        let id = self.ids.pilot();
        // Register a placeholder synchronously so waits on this id observe
        // "known, pending" rather than "unknown" before the manager catches
        // up (wait_pilot_active returns false for genuinely unknown ids).
        let now = self.epoch.elapsed().as_secs_f64();
        let label = desc.label.clone();
        self.registry.update(|r| {
            r.pilots.entry(id).or_insert(PilotPublic {
                state: PilotState::New,
                times: PilotTimes {
                    submitted: now,
                    ..Default::default()
                },
                site,
                label,
            });
        });
        let _ = self.tx.send(Msg::SubmitPilot { id, desc, site });
        id
    }

    /// Submit a compute unit with a kernel.
    pub fn submit_unit(&self, desc: UnitDescription, kernel: Arc<dyn WorkKernel>) -> UnitId {
        let id = self.ids.unit();
        // Count the unit as open *here*, on the caller thread, so a
        // wait_all_units() racing ahead of the manager loop cannot observe
        // zero open units before this submission is processed. The
        // placeholder entry likewise makes wait_unit block on the unit
        // instead of reporting it unknown.
        let now = self.epoch.elapsed().as_secs_f64();
        let tag = desc.tag.clone();
        self.registry.update(|r| {
            r.open_units += 1;
            r.units.entry(id).or_insert(UnitPublic {
                state: UnitState::New,
                times: UnitTimes {
                    submitted: now,
                    ..Default::default()
                },
                pilot: None,
                tag,
                output: None,
            });
        });
        let _ = self.tx.send(Msg::SubmitUnit { id, desc, kernel });
        id
    }

    /// Request a graceful pilot teardown (drains assigned units).
    pub fn cancel_pilot(&self, id: PilotId) {
        let _ = self.tx.send(Msg::CancelPilot(id));
    }

    /// Cancel a unit. Pending units cancel immediately; assigned ones are
    /// skipped by the agent; running ones complete (cooperative semantics).
    pub fn cancel_unit(&self, id: UnitId) {
        let _ = self.tx.send(Msg::CancelUnit(id));
    }

    /// Current state of a pilot.
    pub fn pilot_state(&self, id: PilotId) -> Option<PilotState> {
        self.registry.inner.lock().pilots.get(&id).map(|p| p.state)
    }

    /// Current state of a unit.
    pub fn unit_state(&self, id: UnitId) -> Option<UnitState> {
        self.registry.inner.lock().units.get(&id).map(|u| u.state)
    }

    /// A consistent snapshot of every pilot and unit, taken under a single
    /// lock acquisition — unlike calling [`pilot_state`](Self::pilot_state) /
    /// [`unit_state`](Self::unit_state) in a loop, no transition can land
    /// between two entries of the result. Still a lock-path read: it blocks
    /// the manager for the duration of the clone (QP-1's baseline column).
    pub fn status_snapshot(&self) -> StatusSnapshot {
        let g = self.registry.inner.lock();
        let mut pilots: Vec<(PilotId, PilotState, SiteId)> = g
            .pilots
            .iter()
            .map(|(&id, p)| (id, p.state, p.site))
            .collect();
        let mut units: Vec<(UnitId, UnitState, Option<PilotId>)> = g
            .units
            .iter()
            .map(|(&id, u)| (id, u.state, u.pilot))
            .collect();
        let open_units = g.open_units;
        drop(g);
        pilots.sort_unstable_by_key(|(id, _, _)| id.0);
        units.sort_unstable_by_key(|(id, _, _)| id.0);
        StatusSnapshot {
            pilots,
            units,
            open_units,
        }
    }

    /// Block until the pilot leaves `Pending`; true iff it became `Active`.
    /// Returns `false` immediately for ids this service never issued —
    /// waiting on an unknown pilot no longer blocks forever.
    pub fn wait_pilot_active(&self, id: PilotId) -> bool {
        let mut g = self.registry.inner.lock();
        loop {
            match g.pilots.get(&id).map(|p| p.state) {
                Some(PilotState::Active) => return true,
                Some(s) if s.is_terminal() => return false,
                None => return false,
                _ => self.registry.cv.wait(&mut g),
            }
        }
    }

    /// Block until the unit is terminal; returns its outcome (output is
    /// *taken* — a second wait returns `output: None`). Returns `None`
    /// immediately for ids this service never issued — waiting on an
    /// unknown unit no longer blocks forever.
    pub fn wait_unit(&self, id: UnitId) -> Option<UnitOutcome> {
        let mut g = self.registry.inner.lock();
        loop {
            match g.units.get_mut(&id) {
                None => return None,
                // `Failed` without a finish time is a retry in backoff, not
                // a terminal outcome — keep waiting.
                Some(u) if u.state.is_terminal() && u.times.finished.is_some() => {
                    return Some(UnitOutcome {
                        state: u.state,
                        times: u.times,
                        output: u.output.take(),
                    });
                }
                _ => self.registry.cv.wait(&mut g),
            }
        }
    }

    /// Block until every submitted unit is terminal.
    pub fn wait_all_units(&self) {
        let mut g = self.registry.inner.lock();
        while g.open_units > 0 {
            self.registry.cv.wait(&mut g);
        }
    }

    /// Like [`wait_all_units`](Self::wait_all_units) with a timeout;
    /// true iff everything finished.
    pub fn wait_all_units_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.registry.inner.lock();
        while g.open_units > 0 {
            if self.registry.cv.wait_until(&mut g, deadline).timed_out() {
                return g.open_units == 0;
            }
        }
        true
    }

    /// Drain and stop: cancels pending units, drains assigned ones, tears
    /// down agents, and returns the run report.
    pub fn shutdown(mut self) -> ServiceReport {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.manager.take() {
            let _ = h.join();
        }
        let mut g = self.registry.inner.lock();
        let units = g
            .units
            .iter_mut()
            .map(|(&unit, u)| UnitRecord {
                unit,
                pilot: u.pilot,
                times: u.times,
                state: u.state,
                tag: u.tag.clone(),
            })
            .collect();
        let pilots = g
            .pilots
            .iter()
            .map(|(&id, p)| (id, p.label.clone(), p.site, p.state, p.times))
            .collect();
        ServiceReport {
            units,
            pilots,
            reliability: g.rel.clone(),
            bind: g.bind,
        }
    }
}

impl Drop for ThreadPilotService {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.manager.take() {
            let _ = h.join();
        }
    }
}

struct Mgr {
    scheduler: Box<dyn Scheduler>,
    pilots: HashMap<PilotId, PilotRt>,
    units: HashMap<UnitId, UnitRt>,
    pending: PendingQueue,
    registry: Arc<Registry>,
    epoch: Instant,
    self_tx: Sender<Msg>,
    report_tx: Sender<AgentReport>,
    shutting_down: bool,
    /// Set by any capacity or queue change; the run loop executes one
    /// batched binding pass per message batch instead of one per event.
    sched_dirty: bool,
    faults: FaultPlan,
    rng: SimRng,
    tracker: FailureTracker,
    rel: ReliabilityStats,
    stats: BindStats,
    /// Read-plane export: transitions buffered per message batch, handed to
    /// the sink with one `emit_batch` call (`None` disables emission).
    sink: Option<Arc<dyn EventSink>>,
    ev: Vec<ProjEvent>,
}

impl Mgr {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Buffer a read-plane event; a no-op when no sink is attached.
    fn emit(&mut self, ev: ProjEvent) {
        if self.sink.is_some() {
            self.ev.push(ev);
        }
    }

    /// Buffer a pilot capacity event from the pilot's current runtime state.
    fn emit_capacity(&mut self, pid: PilotId, t_s: f64) {
        if self.sink.is_none() {
            return;
        }
        if let Some(p) = self.pilots.get(&pid) {
            self.ev.push(ProjEvent::PilotCapacity {
                pilot: pid,
                free_cores: p.free_cores,
                total_cores: p.cores,
                t_s,
            });
        }
    }

    /// Hand the buffered batch to the sink. Called once per drained message
    /// batch and once at loop exit — the write path pays one batched append
    /// regardless of how many transitions the batch produced.
    fn flush_events(&mut self) {
        if self.ev.is_empty() {
            return;
        }
        if let Some(sink) = &self.sink {
            sink.emit_batch(&self.ev);
        }
        self.ev.clear();
    }

    fn run(mut self, rx: Receiver<Msg>, report_rx: Receiver<AgentReport>) {
        loop {
            crossbeam::channel::select! {
                recv(rx) -> msg => match msg {
                    Ok(m) => self.on_msg(m),
                    Err(_) => self.shutting_down = true,
                },
                recv(report_rx) -> rep => if let Ok(r) = rep {
                    self.on_report(r);
                },
            }
            // Drain everything already queued so one binding pass covers the
            // whole batch of capacity changes (dirty-flag wakeup) instead of
            // running once per event.
            while let Ok(m) = rx.try_recv() {
                self.on_msg(m);
            }
            while let Ok(r) = report_rx.try_recv() {
                self.on_report(r);
            }
            if self.sched_dirty {
                self.sched_dirty = false;
                self.bind_pass();
            }
            self.flush_events();
            if self.shutting_down && self.all_quiet() {
                break;
            }
        }
        // Tear down agents. Detach instead of join: a kernel that ignored
        // its deadline may still occupy a worker, and joining it would wedge
        // shutdown — the drain gate (`all_quiet`) already guaranteed no
        // accounted work remains.
        for (_, p) in self.pilots.iter_mut() {
            if let Some(agent) = p.agent.take() {
                agent.stop();
                agent.detach();
            }
        }
        // Publish the reliability and binding counters for the final report.
        self.flush_events();
        let rel = self.rel.clone();
        let bind = self.stats;
        self.registry.update(|r| {
            r.rel = rel;
            r.bind = bind;
        });
    }

    fn all_quiet(&self) -> bool {
        self.pilots.values().all(|p| p.bound == 0)
    }

    fn on_msg(&mut self, msg: Msg) {
        match msg {
            Msg::SubmitPilot { id, desc, site } => self.submit_pilot(id, desc, site),
            Msg::PilotUp(id) => self.pilot_up(id),
            Msg::PilotExpired(id) => self.teardown_pilot(id, PilotState::Done),
            Msg::SubmitUnit { id, desc, kernel } => self.submit_unit(id, desc, kernel),
            Msg::CancelPilot(id) => self.teardown_pilot(id, PilotState::Canceled),
            Msg::CancelUnit(id) => self.cancel_unit(id),
            Msg::UnitDeadline(id, gen) => self.unit_deadline(id, gen),
            Msg::RetryRelease(id, gen) => self.release_retry(id, gen),
            Msg::PilotCrash(id) => self.crash_pilot(id),
            Msg::Shutdown => self.begin_shutdown(),
        }
    }

    fn submit_pilot(&mut self, id: PilotId, desc: PilotDescription, site: SiteId) {
        let now = self.now();
        let rt = PilotRt {
            site,
            cores: desc.cores.max(1),
            free_cores: desc.cores.max(1),
            state: PilotState::Pending,
            accepting: true,
            drain_to: PilotState::Done,
            agent: None,
            bound: 0,
            deadline: None,
            walltime: desc.walltime,
            startup_delay_s: desc.startup_delay_s,
        };
        self.registry.update(|r| {
            r.pilots.insert(
                id,
                PilotPublic {
                    state: PilotState::Pending,
                    times: PilotTimes {
                        submitted: now,
                        ..Default::default()
                    },
                    site,
                    label: desc.label.clone(),
                },
            );
        });
        let delay = rt.startup_delay_s;
        self.pilots.insert(id, rt);
        self.emit(ProjEvent::Pilot {
            pilot: id,
            state: PilotState::Pending,
            t_s: now,
        });
        if delay > 0.0 {
            let tx = self.self_tx.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_secs_f64(delay));
                let _ = tx.send(Msg::PilotUp(id));
            });
        } else {
            self.pilot_up(id);
        }
    }

    fn pilot_up(&mut self, id: PilotId) {
        let now = self.now();
        let Some(p) = self.pilots.get_mut(&id) else {
            return;
        };
        if p.state != PilotState::Pending {
            return; // canceled before startup
        }
        PilotState::advance(&mut p.state, PilotState::Active);
        p.agent = Some(Agent::new(id, p.cores, self.epoch, self.report_tx.clone()));
        // Arm the walltime only for finite requests.
        if p.walltime != SimDuration::MAX {
            let wt = p.walltime.as_secs_f64();
            p.deadline = Some(Instant::now() + Duration::from_secs_f64(wt));
            let tx = self.self_tx.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_secs_f64(wt));
                let _ = tx.send(Msg::PilotExpired(id));
            });
        }
        // Arm the injected crash clock: one exponential draw from a stream
        // keyed by pilot id, so the same seed schedules the same crashes
        // (subject to wall-clock jitter in when the timer actually lands).
        if let Some(mtbf) = self.faults.pilot_crash_mtbf_s {
            let ttf = self
                .rng
                .stream(streams::keyed(streams::PILOT_CRASH, id.0, 0))
                .exponential(mtbf);
            let tx = self.self_tx.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_secs_f64(ttf));
                let _ = tx.send(Msg::PilotCrash(id));
            });
        }
        self.registry.update(|r| {
            if let Some(pp) = r.pilots.get_mut(&id) {
                PilotState::publish(&mut pp.state, PilotState::Active);
                pp.times.active = Some(now);
            }
        });
        self.emit(ProjEvent::Pilot {
            pilot: id,
            state: PilotState::Active,
            t_s: now,
        });
        self.emit_capacity(id, now);
        self.schedule();
    }

    fn submit_unit(&mut self, id: UnitId, desc: UnitDescription, kernel: Arc<dyn WorkKernel>) {
        let now = self.now();
        if self.shutting_down {
            // Refuse late submissions but keep the open-unit count balanced.
            let tag = desc.tag.clone();
            self.registry.update(|r| {
                r.units.insert(
                    id,
                    UnitPublic {
                        state: UnitState::Canceled,
                        times: UnitTimes {
                            submitted: now,
                            finished: Some(now),
                            ..Default::default()
                        },
                        pilot: None,
                        tag,
                        output: None,
                    },
                );
                r.open_units -= 1;
            });
            self.emit(ProjEvent::Unit {
                unit: id,
                state: UnitState::Canceled,
                pilot: None,
                t_s: now,
            });
            return;
        }
        let tag = desc.tag.clone();
        let priority = desc.priority;
        self.units.insert(
            id,
            UnitRt {
                desc,
                kernel,
                state: UnitState::Pending,
                pilot: None,
                cancel_flag: Arc::new(AtomicBool::new(false)),
                generation: 0,
                attempts: 0,
                failed_at: None,
                started_at: None,
                doomed: false,
                retry_pending: false,
                submitted_at: now,
            },
        );
        self.pending.push(id, priority);
        self.registry.update(|r| {
            r.units.insert(
                id,
                UnitPublic {
                    state: UnitState::Pending,
                    times: UnitTimes {
                        submitted: now,
                        ..Default::default()
                    },
                    pilot: None,
                    tag,
                    output: None,
                },
            );
        });
        self.emit(ProjEvent::Unit {
            unit: id,
            state: UnitState::Pending,
            pilot: None,
            t_s: now,
        });
        self.schedule();
    }

    /// Request a late-binding pass. Passes run batched from the event loop
    /// (one per drained message batch), not inline per capacity change.
    fn schedule(&mut self) {
        self.sched_dirty = true;
    }

    /// One batched late-binding pass: build the pilot snapshots once, offer
    /// every pending unit in priority order, and apply capacity deltas to the
    /// in-memory snapshots after each bind. Binding only shrinks capacity, so
    /// a refused unit cannot become bindable later in the same pass and the
    /// placements match the old rebuild-per-bind loop (see `crate::binding`).
    fn bind_pass(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // Pending pilots are visible with zero free cores so that
        // delay-scheduling policies (data-aware) can wait for capacity
        // that is already on its way instead of binding remotely.
        let mut snapshots: Vec<PilotSnapshot> = self
            .pilots
            .iter()
            .filter(|(id, p)| {
                ((p.state == PilotState::Active && p.accepting) || p.state == PilotState::Pending)
                    && !self.tracker.is_blacklisted(**id)
            })
            .map(|(&id, p)| PilotSnapshot {
                pilot: id,
                site: p.site,
                total_cores: p.cores,
                free_cores: if p.state == PilotState::Pending {
                    0
                } else {
                    p.free_cores
                },
                bound_units: p.bound,
                remaining_walltime_s: p
                    .deadline
                    .map(|d| d.saturating_duration_since(Instant::now()).as_secs_f64())
                    .unwrap_or(f64::INFINITY),
            })
            .collect();
        if snapshots.is_empty() {
            return;
        }
        // Deterministic candidate order (HashMap iteration above is not).
        snapshots.sort_by_key(|s| s.pilot.0);
        // The shared queue pass (also driven by the sim backend and the
        // fabric host daemons) decides placements against the snapshot
        // vector; binds are committed afterwards so the unit table stays
        // borrowed shared during the scheduler's scan.
        let units = &self.units;
        let outcome = binding::queue_pass(
            self.scheduler.as_mut(),
            &mut snapshots,
            &mut self.pending,
            |uid| {
                units
                    .get(&uid)
                    .filter(|u| u.state == UnitState::Pending)
                    .map(|u| &u.desc)
            },
        );
        self.stats
            .note_pass(snapshots.len(), outcome.offered, outcome.binds.len() as u64);
        for (uid, pid) in outcome.binds {
            self.bind(uid, pid);
        }
    }

    fn bind(&mut self, uid: UnitId, pid: PilotId) {
        let now = self.now();
        // The bind pass only offers live pending units to live pilots, so the
        // lookups below cannot miss; if they ever do, skipping the bind keeps
        // the service alive (the unit stays pending) instead of poisoning the
        // manager thread.
        let Some(unit) = self.units.get_mut(&uid) else {
            debug_assert!(false, "bind: pending unit {uid} vanished");
            return;
        };
        UnitState::advance(&mut unit.state, UnitState::Assigned);
        unit.pilot = Some(pid);
        // A bind following a failed attempt completes a recovery.
        if let Some(f) = unit.failed_at.take() {
            self.rel.recovery_s += now - f;
            self.rel.recoveries += 1;
        }
        let cores = unit.desc.cores;
        let attempts = unit.attempts;
        // Draw the fault-plan verdict for this attempt up front: a doomed
        // kernel runs (wasting its wall-clock work) but reports an injected
        // fault instead of its result.
        let mut fault_rng = self
            .rng
            .stream(streams::keyed(streams::UNIT_FAULT, uid.0, attempts));
        unit.doomed =
            self.faults.unit_failure_p > 0.0 && fault_rng.bool(self.faults.unit_failure_p);
        let assignment = Assignment {
            unit: uid,
            gen: unit.generation,
            cores,
            kernel: Arc::clone(&unit.kernel),
            cancel_flag: Arc::clone(&unit.cancel_flag),
        };
        let Some(p) = self.pilots.get_mut(&pid) else {
            debug_assert!(false, "bind: scheduler returned dead pilot {pid}");
            return;
        };
        assert!(
            p.free_cores >= cores,
            "scheduler over-committed pilot {pid}"
        );
        p.free_cores -= cores;
        p.bound += 1;
        let Some(agent) = p.agent.as_ref() else {
            debug_assert!(false, "bind: active pilot {pid} has no agent");
            return;
        };
        agent.submit(assignment);
        self.registry.update(|r| {
            if let Some(u) = r.units.get_mut(&uid) {
                UnitState::publish(&mut u.state, UnitState::Assigned);
                u.pilot = Some(pid);
                u.times.bound = Some(now);
            }
        });
        self.emit(ProjEvent::Unit {
            unit: uid,
            state: UnitState::Assigned,
            pilot: Some(pid),
            t_s: now,
        });
        self.emit_capacity(pid, now);
    }

    fn on_report(&mut self, rep: AgentReport) {
        match rep {
            AgentReport::Started { unit, gen, t } => {
                let Some(u) = self.units.get_mut(&unit) else {
                    return;
                };
                if u.generation != gen {
                    return; // attempt already abandoned
                }
                UnitState::advance(&mut u.state, UnitState::Running);
                u.started_at = Some(t);
                let pilot = u.pilot;
                self.rel.attempts += 1;
                // Arm the per-attempt execution deadline.
                if let Some(deadline_s) = u.desc.deadline_s {
                    let tx = self.self_tx.clone();
                    std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_secs_f64(deadline_s));
                        let _ = tx.send(Msg::UnitDeadline(unit, gen));
                    });
                }
                self.registry.update(|r| {
                    if let Some(u) = r.units.get_mut(&unit) {
                        UnitState::publish(&mut u.state, UnitState::Running);
                        u.times.started = Some(t);
                    }
                });
                self.emit(ProjEvent::Unit {
                    unit,
                    state: UnitState::Running,
                    pilot,
                    t_s: t,
                });
            }
            AgentReport::Finished {
                unit,
                gen,
                t,
                result,
            } => {
                let Some(u) = self.units.get_mut(&unit) else {
                    return;
                };
                if u.generation != gen {
                    return; // attempt already abandoned
                }
                let mut result = result;
                if u.doomed && result.is_ok() {
                    self.rel.injected_unit_faults += 1;
                    result = Err(TaskError("injected fault".into()));
                }
                if result.is_ok() {
                    if let Some(pid) = u.pilot {
                        self.tracker.record_success(pid);
                    }
                    self.finish_unit(unit, t, UnitState::Done, Some(result));
                } else {
                    self.fail_attempt(unit, t, Some(result));
                }
            }
            AgentReport::Skipped { unit, gen, t } => {
                let stale = self.units.get(&unit).is_none_or(|u| u.generation != gen);
                if stale {
                    return;
                }
                self.finish_unit(unit, t, UnitState::Canceled, None);
            }
        }
    }

    /// One execution attempt failed (kernel error, injected fault, deadline
    /// expiry, or pilot crash mid-run). Charges the retry budget and either
    /// arms a backoff timer for a `Failed → Pending` re-bind or fails the
    /// unit terminally once the budget is exhausted.
    fn fail_attempt(&mut self, uid: UnitId, t: f64, output: Option<Result<TaskOutput, TaskError>>) {
        let Some(u) = self.units.get_mut(&uid) else {
            return;
        };
        u.generation += 1;
        u.attempts += 1;
        UnitState::advance(&mut u.state, UnitState::Failed);
        u.doomed = false;
        if let Some(s) = u.started_at.take() {
            self.rel.wasted_work_s += t - s;
        }
        let pilot = u.pilot.take();
        let cores = u.desc.cores;
        let retry = u.desc.retry;
        let attempts = u.attempts;
        let gen = u.generation;
        if let Some(pid) = pilot {
            if let Some(p) = self.pilots.get_mut(&pid) {
                if p.state == PilotState::Active {
                    p.free_cores += cores;
                }
                p.bound = p.bound.saturating_sub(1);
            }
            if self.tracker.record_failure(pid) {
                self.rel.blacklisted_pilots += 1;
            }
            self.emit_capacity(pid, t);
        }
        self.emit(ProjEvent::Unit {
            unit: uid,
            state: UnitState::Failed,
            pilot: None,
            t_s: t,
        });
        if !self.shutting_down && retry.allows_retry(attempts) {
            self.rel.requeues += 1;
            if let Some(u) = self.units.get_mut(&uid) {
                u.failed_at = Some(t);
                u.retry_pending = true;
            }
            let mut jitter =
                self.rng
                    .stream(streams::keyed(streams::BACKOFF_JITTER, uid.0, attempts));
            let delay = retry.delay_s(attempts, &mut jitter);
            // Publicly the unit shows `Failed` during backoff, but without a
            // finish time — `wait_unit` keeps blocking until a terminal
            // attempt actually finishes.
            self.registry.update(|r| {
                if let Some(up) = r.units.get_mut(&uid) {
                    UnitState::publish(&mut up.state, UnitState::Failed);
                    up.pilot = None;
                    up.times.bound = None;
                    up.times.started = None;
                }
            });
            let tx = self.self_tx.clone();
            if delay > 0.0 {
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_secs_f64(delay));
                    let _ = tx.send(Msg::RetryRelease(uid, gen));
                });
            } else {
                let _ = tx.send(Msg::RetryRelease(uid, gen));
            }
        } else {
            self.rel.exhausted_units += 1;
            self.registry.update(|r| {
                if let Some(up) = r.units.get_mut(&uid) {
                    UnitState::publish(&mut up.state, UnitState::Failed);
                    up.times.finished = Some(t);
                    up.output = output;
                }
                r.open_units -= 1;
            });
        }
        if let Some(pid) = pilot {
            self.maybe_finalize_pilot(pid);
        }
        self.schedule();
    }

    /// Deadline timer fired: if the attempt it belongs to is still running,
    /// abandon it (the kernel keeps its worker until it returns, but its
    /// report will be dropped by the generation guard).
    fn unit_deadline(&mut self, uid: UnitId, gen: u64) {
        let Some(u) = self.units.get(&uid) else {
            return;
        };
        if u.generation != gen || u.state != UnitState::Running {
            return;
        }
        self.rel.deadline_expirations += 1;
        let t = self.now();
        self.fail_attempt(uid, t, Some(Err(TaskError("deadline exceeded".into()))));
    }

    /// Backoff elapsed: the retry edge, `Failed → Pending`, back into the
    /// late-binding queue.
    fn release_retry(&mut self, uid: UnitId, gen: u64) {
        let Some(u) = self.units.get_mut(&uid) else {
            return;
        };
        if u.generation != gen || !u.retry_pending {
            return;
        }
        u.retry_pending = false;
        UnitState::advance(&mut u.state, UnitState::Pending);
        let priority = u.desc.priority;
        self.pending.push(uid, priority);
        self.registry.update(|r| {
            if let Some(up) = r.units.get_mut(&uid) {
                UnitState::publish(&mut up.state, UnitState::Pending);
            }
        });
        self.emit(ProjEvent::Unit {
            unit: uid,
            state: UnitState::Pending,
            pilot: None,
            t_s: self.now(),
        });
        self.schedule();
    }

    /// Injected pilot crash: the pilot is lost immediately. Running units
    /// lose their attempt (retry budget applies); assigned-but-not-started
    /// units re-enter the queue for free.
    fn crash_pilot(&mut self, pid: PilotId) {
        let Some(p) = self.pilots.get_mut(&pid) else {
            return;
        };
        if p.state != PilotState::Active {
            return;
        }
        PilotState::advance(&mut p.state, PilotState::Failed);
        p.accepting = false;
        p.free_cores = 0;
        p.bound = 0;
        if let Some(agent) = p.agent.take() {
            agent.stop();
            agent.detach();
        }
        self.rel.pilot_crashes += 1;
        let now = self.now();
        self.registry.update(|r| {
            if let Some(pp) = r.pilots.get_mut(&pid) {
                PilotState::publish(&mut pp.state, PilotState::Failed);
                pp.times.finished = Some(now);
            }
        });
        self.emit(ProjEvent::Pilot {
            pilot: pid,
            state: PilotState::Failed,
            t_s: now,
        });
        self.emit_capacity(pid, now);
        let mut bound: Vec<(UnitId, UnitState)> = self
            .units
            .iter()
            .filter(|(_, u)| {
                u.pilot == Some(pid) && matches!(u.state, UnitState::Assigned | UnitState::Running)
            })
            .map(|(&id, u)| (id, u.state))
            .collect();
        bound.sort_by_key(|(u, _)| u.0);
        for (uid, state) in bound {
            if state == UnitState::Running {
                self.fail_attempt(uid, now, Some(Err(TaskError("pilot crash".into()))));
            } else {
                // Planned re-bind: no work lost, not charged against retries.
                let Some(u) = self.units.get_mut(&uid) else {
                    continue;
                };
                UnitState::advance(&mut u.state, UnitState::Pending);
                u.pilot = None;
                u.generation += 1;
                let priority = u.desc.priority;
                self.pending.push(uid, priority);
                self.rel.rebinds += 1;
                self.registry.update(|r| {
                    if let Some(up) = r.units.get_mut(&uid) {
                        UnitState::publish(&mut up.state, UnitState::Pending);
                        up.pilot = None;
                        up.times.bound = None;
                    }
                });
                self.emit(ProjEvent::Unit {
                    unit: uid,
                    state: UnitState::Pending,
                    pilot: None,
                    t_s: now,
                });
            }
        }
        self.schedule();
    }

    fn finish_unit(
        &mut self,
        uid: UnitId,
        t: f64,
        state: UnitState,
        output: Option<Result<TaskOutput, TaskError>>,
    ) {
        let Some(u) = self.units.get_mut(&uid) else {
            return;
        };
        UnitState::advance(&mut u.state, state);
        let pilot = u.pilot;
        let cores = u.desc.cores;
        let submitted_at = u.submitted_at;
        let started_at = u.started_at;
        if let Some(pid) = pilot {
            if let Some(p) = self.pilots.get_mut(&pid) {
                p.free_cores += cores;
                p.bound -= 1;
            }
        }
        self.registry.update(|r| {
            if let Some(up) = r.units.get_mut(&uid) {
                UnitState::publish(&mut up.state, state);
                up.times.finished = Some(t);
                up.output = output;
            }
            r.open_units -= 1;
        });
        self.emit(ProjEvent::Unit {
            unit: uid,
            state,
            pilot,
            t_s: t,
        });
        if let Some(pid) = pilot {
            self.emit_capacity(pid, t);
        }
        if state == UnitState::Done {
            let started = started_at.unwrap_or(t);
            self.emit(ProjEvent::UnitMetric {
                unit: uid,
                wait_s: (started - submitted_at).max(0.0),
                exec_s: (t - started).max(0.0),
                t_s: t,
            });
        }
        // A draining pilot with nothing left finalizes now.
        if let Some(pid) = pilot {
            self.maybe_finalize_pilot(pid);
        }
        self.schedule();
    }

    fn teardown_pilot(&mut self, pid: PilotId, to: PilotState) {
        let Some(p) = self.pilots.get_mut(&pid) else {
            return;
        };
        match p.state {
            PilotState::Pending => {
                // A pilot torn down before ever activating did no work, so it
                // ends `Canceled` regardless of the requested drain target
                // (`Pending -> Done` is not an edge in the P* machine).
                let end = if to == PilotState::Done {
                    PilotState::Canceled
                } else {
                    to
                };
                PilotState::advance(&mut p.state, end);
                let now = self.now();
                self.registry.update(|r| {
                    if let Some(pp) = r.pilots.get_mut(&pid) {
                        PilotState::publish(&mut pp.state, end);
                        pp.times.finished = Some(now);
                    }
                });
                self.emit(ProjEvent::Pilot {
                    pilot: pid,
                    state: end,
                    t_s: now,
                });
            }
            PilotState::Active => {
                p.accepting = false;
                p.drain_to = to;
                self.maybe_finalize_pilot(pid);
            }
            _ => {}
        }
    }

    fn maybe_finalize_pilot(&mut self, pid: PilotId) {
        let Some(p) = self.pilots.get_mut(&pid) else {
            return;
        };
        if p.state == PilotState::Active && !p.accepting && p.bound == 0 {
            let to = p.drain_to;
            PilotState::advance(&mut p.state, to);
            if let Some(agent) = p.agent.take() {
                agent.stop();
                // Detach, don't join: a deadline-abandoned kernel may still
                // hold a worker even though the pilot's accounting is clear.
                agent.detach();
            }
            let now = self.now();
            self.registry.update(|r| {
                if let Some(pp) = r.pilots.get_mut(&pid) {
                    PilotState::publish(&mut pp.state, to);
                    pp.times.finished = Some(now);
                }
            });
            self.emit(ProjEvent::Pilot {
                pilot: pid,
                state: to,
                t_s: now,
            });
        }
    }

    fn cancel_unit(&mut self, uid: UnitId) {
        let Some(u) = self.units.get_mut(&uid) else {
            return;
        };
        match u.state {
            UnitState::Pending => {
                // The queue entry becomes stale and is skipped at pop time
                // (lazy deletion).
                UnitState::advance(&mut u.state, UnitState::Canceled);
                let now = self.now();
                self.registry.update(|r| {
                    if let Some(up) = r.units.get_mut(&uid) {
                        UnitState::publish(&mut up.state, UnitState::Canceled);
                        up.times.finished = Some(now);
                    }
                    r.open_units -= 1;
                });
                self.emit(ProjEvent::Unit {
                    unit: uid,
                    state: UnitState::Canceled,
                    pilot: None,
                    t_s: now,
                });
            }
            UnitState::Assigned => {
                // The agent will observe the flag and skip.
                u.cancel_flag.store(true, Ordering::Release);
            }
            UnitState::Failed if u.retry_pending => {
                // Waiting out a backoff timer: cancel the retry. The machine
                // has no `Failed -> Canceled` edge — the granted retry means
                // the unit conceptually re-enters the queue (`-> Pending`)
                // and is canceled from there.
                u.retry_pending = false;
                u.generation += 1;
                UnitState::advance(&mut u.state, UnitState::Pending);
                UnitState::advance(&mut u.state, UnitState::Canceled);
                let now = self.now();
                self.registry.update(|r| {
                    if let Some(up) = r.units.get_mut(&uid) {
                        UnitState::publish(&mut up.state, UnitState::Canceled);
                        up.times.finished = Some(now);
                    }
                    r.open_units -= 1;
                });
                self.emit(ProjEvent::Unit {
                    unit: uid,
                    state: UnitState::Canceled,
                    pilot: None,
                    t_s: now,
                });
            }
            _ => {} // running or terminal: cooperative semantics, no-op
        }
    }

    fn begin_shutdown(&mut self) {
        self.shutting_down = true;
        // Cancel everything still pending, including units waiting out a
        // retry backoff (their timers fire into a closed generation). Stale
        // queue entries (units that already left `Pending`) must be filtered
        // out or their open-unit slot would be released twice.
        let mut pending: Vec<UnitId> = self
            .pending
            .drain()
            .into_iter()
            .filter(|uid| {
                self.units
                    .get(uid)
                    .is_some_and(|u| u.state == UnitState::Pending)
            })
            .collect();
        for (&uid, u) in self.units.iter_mut() {
            if u.retry_pending {
                u.retry_pending = false;
                u.generation += 1;
                pending.push(uid);
            }
        }
        let now = self.now();
        for uid in pending {
            if let Some(u) = self.units.get_mut(&uid) {
                if u.state == UnitState::Failed {
                    // Canceled retry grant: route through `Pending`, the
                    // machine has no direct `Failed -> Canceled` edge.
                    UnitState::advance(&mut u.state, UnitState::Pending);
                }
                UnitState::advance(&mut u.state, UnitState::Canceled);
            }
            self.registry.update(|r| {
                if let Some(up) = r.units.get_mut(&uid) {
                    UnitState::publish(&mut up.state, UnitState::Canceled);
                    up.times.finished = Some(now);
                }
                r.open_units -= 1;
            });
            self.emit(ProjEvent::Unit {
                unit: uid,
                state: UnitState::Canceled,
                pilot: None,
                t_s: now,
            });
        }
        // Drain all pilots.
        let pids: Vec<PilotId> = self.pilots.keys().copied().collect();
        for pid in pids {
            self.teardown_pilot(pid, PilotState::Done);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::RetryPolicy;
    use crate::scheduler::{FirstFitScheduler, LoadBalanceScheduler};
    use crate::thread::kernel::{kernel_fn, SyntheticKernel, TaskOutput};

    fn svc() -> ThreadPilotService {
        ThreadPilotService::new(Box::new(FirstFitScheduler))
    }

    fn forever() -> SimDuration {
        SimDuration::MAX
    }

    #[test]
    fn submit_run_wait_roundtrip() {
        let s = svc();
        let p = s.submit_pilot(PilotDescription::new(2, forever()));
        assert!(s.wait_pilot_active(p));
        let u = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|ctx| Ok(TaskOutput::of(ctx.cores + 41))),
        );
        let out = s.wait_unit(u).unwrap();
        assert_eq!(out.state, UnitState::Done);
        assert_eq!(
            out.output.unwrap().unwrap().downcast::<u32>().ok(),
            Some(42)
        );
        assert!(out.times.turnaround().unwrap() >= 0.0);
        let report = s.shutdown();
        assert_eq!(report.units.len(), 1);
        assert_eq!(report.pilots.len(), 1);
        assert_eq!(report.done_unit_times().len(), 1);
    }

    #[test]
    fn late_binding_unit_waits_for_pilot() {
        let s = svc();
        // Unit submitted first; no pilot yet.
        let u = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(s.unit_state(u), Some(UnitState::Pending));
        // Pilot arrives; unit binds and completes.
        let _p = s.submit_pilot(PilotDescription::new(1, forever()));
        let out = s.wait_unit(u).unwrap();
        assert_eq!(out.state, UnitState::Done);
        assert!(
            out.times.wait().unwrap() >= 0.025,
            "wait should include the pilot-less gap"
        );
    }

    #[test]
    fn startup_delay_shows_in_pilot_times() {
        let s = svc();
        let p = s.submit_pilot(PilotDescription::new(1, forever()).with_startup_delay(0.08));
        assert!(s.wait_pilot_active(p));
        let report = s.shutdown();
        let (_, _, _, _, times) = &report.pilots[0];
        assert!(times.startup_overhead().unwrap() >= 0.08);
    }

    #[test]
    fn failing_kernel_marks_unit_failed() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(1, forever()));
        let u = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Err(TaskError("deliberate".into()))),
        );
        let out = s.wait_unit(u).unwrap();
        assert_eq!(out.state, UnitState::Failed);
        assert_eq!(out.output.unwrap().unwrap_err().0, "deliberate");
    }

    #[test]
    fn panicking_kernel_marks_unit_failed_and_pilot_survives() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(1, forever()));
        let bad = s.submit_unit(UnitDescription::new(1), kernel_fn(|_| panic!("chaos")));
        let out = s.wait_unit(bad).unwrap();
        assert_eq!(out.state, UnitState::Failed);
        // Pilot still works.
        let good = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::of(1u8))),
        );
        assert_eq!(s.wait_unit(good).unwrap().state, UnitState::Done);
    }

    #[test]
    fn capacity_is_respected() {
        // 2-core pilot, four 1-core units that each hold a token: at most 2
        // may overlap.
        use std::sync::atomic::AtomicU32;
        let s = svc();
        s.submit_pilot(PilotDescription::new(2, forever()));
        let live = Arc::new(AtomicU32::new(0));
        let peak = Arc::new(AtomicU32::new(0));
        let mk = |live: Arc<AtomicU32>, peak: Arc<AtomicU32>| {
            kernel_fn(move |_| {
                let n = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(n, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(40));
                live.fetch_sub(1, Ordering::SeqCst);
                Ok(TaskOutput::none())
            })
        };
        let units: Vec<UnitId> = (0..4)
            .map(|_| {
                s.submit_unit(
                    UnitDescription::new(1),
                    mk(Arc::clone(&live), Arc::clone(&peak)),
                )
            })
            .collect();
        for u in units {
            assert_eq!(s.wait_unit(u).unwrap().state, UnitState::Done);
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "over-committed");
        assert_eq!(peak.load(Ordering::SeqCst), 2, "should use both cores");
    }

    #[test]
    fn multicore_unit_reserves_cores() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(2, forever()));
        // A 2-core unit blocks a 1-core unit from overlapping.
        let t0 = Instant::now();
        let wide = s.submit_unit(
            UnitDescription::new(2),
            Arc::new(SyntheticKernel::new(0.05)),
        );
        let narrow = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        s.wait_unit(wide);
        let out = s.wait_unit(narrow).unwrap();
        assert!(
            out.times.started.unwrap() >= 0.05 - 0.005,
            "narrow unit must wait for the wide one, started at {:?} (t0 {:?})",
            out.times.started,
            t0.elapsed()
        );
    }

    #[test]
    fn cancel_pending_unit() {
        let s = svc();
        // No pilot: unit stays pending.
        let u = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        std::thread::sleep(Duration::from_millis(20));
        s.cancel_unit(u);
        let out = s.wait_unit(u).unwrap();
        assert_eq!(out.state, UnitState::Canceled);
        assert!(out.output.is_none());
    }

    #[test]
    fn pilot_walltime_expiry_drains() {
        let s = svc();
        let p = s.submit_pilot(PilotDescription::new(1, SimDuration::from_millis(80)));
        assert!(s.wait_pilot_active(p));
        let u = s.submit_unit(
            UnitDescription::new(1),
            Arc::new(SyntheticKernel::new(0.02)),
        );
        assert_eq!(s.wait_unit(u).unwrap().state, UnitState::Done);
        // After expiry the pilot is Done and accepts nothing.
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(s.pilot_state(p), Some(PilotState::Done));
        let orphan = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(s.unit_state(orphan), Some(UnitState::Pending));
        s.cancel_unit(orphan);
    }

    #[test]
    fn cancel_pilot_before_startup() {
        let s = svc();
        let p = s.submit_pilot(PilotDescription::new(1, forever()).with_startup_delay(5.0));
        s.cancel_pilot(p);
        assert!(!s.wait_pilot_active(p));
        assert_eq!(s.pilot_state(p), Some(PilotState::Canceled));
    }

    #[test]
    fn load_balance_spreads_units_across_pilots() {
        let s = ThreadPilotService::new(Box::new(LoadBalanceScheduler));
        let p1 = s.submit_pilot(PilotDescription::new(2, forever()));
        let p2 = s.submit_pilot(PilotDescription::new(2, forever()));
        s.wait_pilot_active(p1);
        s.wait_pilot_active(p2);
        let units: Vec<UnitId> = (0..4)
            .map(|_| {
                s.submit_unit(
                    UnitDescription::new(1),
                    Arc::new(SyntheticKernel::new(0.05)),
                )
            })
            .collect();
        for u in &units {
            s.wait_unit(*u);
        }
        let report = s.shutdown();
        let on_p1 = report.units.iter().filter(|u| u.pilot == Some(p1)).count();
        let on_p2 = report.units.iter().filter(|u| u.pilot == Some(p2)).count();
        assert_eq!(on_p1, 2);
        assert_eq!(on_p2, 2);
    }

    #[test]
    fn priority_orders_pending_queue() {
        let s = svc();
        // 1-core pilot ⇒ strictly serial execution; submit while busy.
        s.submit_pilot(PilotDescription::new(1, forever()));
        let blocker = s.submit_unit(
            UnitDescription::new(1),
            Arc::new(SyntheticKernel::new(0.08)),
        );
        std::thread::sleep(Duration::from_millis(20)); // let it start
        let low = s.submit_unit(
            UnitDescription::new(1).with_priority(1).tagged("low"),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        let high = s.submit_unit(
            UnitDescription::new(1).with_priority(10).tagged("high"),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        s.wait_unit(blocker);
        let high_out = s.wait_unit(high).unwrap();
        let low_out = s.wait_unit(low).unwrap();
        assert!(
            high_out.times.started.unwrap() <= low_out.times.started.unwrap(),
            "high priority must run first"
        );
        s.shutdown();
    }

    #[test]
    fn wait_all_units_and_timeout() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(4, forever()));
        for _ in 0..8 {
            s.submit_unit(
                UnitDescription::new(1),
                Arc::new(SyntheticKernel::new(0.01)),
            );
        }
        assert!(s.wait_all_units_timeout(Duration::from_secs(10)));
        s.wait_all_units(); // immediate
    }

    #[test]
    fn shutdown_cancels_pending_units() {
        let s = svc();
        // No pilots: everything stays pending and must be canceled on shutdown.
        for _ in 0..3 {
            s.submit_unit(
                UnitDescription::new(1),
                kernel_fn(|_| Ok(TaskOutput::none())),
            );
        }
        let report = s.shutdown();
        assert_eq!(report.units.len(), 3);
        assert!(report.units.iter().all(|u| u.state == UnitState::Canceled));
    }

    #[test]
    fn waiting_on_unknown_ids_returns_immediately() {
        let s = svc();
        assert!(s.wait_unit(UnitId(9999)).is_none());
        assert!(!s.wait_pilot_active(PilotId(9999)));
    }

    #[test]
    fn retry_policy_recovers_transient_kernel_failure() {
        use std::sync::atomic::AtomicU32;
        let s = svc();
        s.submit_pilot(PilotDescription::new(1, forever()));
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let u = s.submit_unit(
            UnitDescription::new(1).with_retry(RetryPolicy::fixed(4, 0.01)),
            kernel_fn(move |_| {
                if t.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(TaskError("transient".into()))
                } else {
                    Ok(TaskOutput::of(7u8))
                }
            }),
        );
        let out = s.wait_unit(u).unwrap();
        assert_eq!(out.state, UnitState::Done);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        let report = s.shutdown();
        assert_eq!(report.reliability.attempts, 3);
        assert_eq!(report.reliability.requeues, 2);
        assert_eq!(report.reliability.exhausted_units, 0);
        assert!(
            report.reliability.recoveries >= 1,
            "rebinds count as recoveries"
        );
    }

    #[test]
    fn retry_backoff_is_visible_as_nonterminal_failed() {
        use std::sync::atomic::AtomicU32;
        let s = svc();
        s.submit_pilot(PilotDescription::new(1, forever()));
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let u = s.submit_unit(
            UnitDescription::new(1).with_retry(RetryPolicy::fixed(2, 0.25)),
            kernel_fn(move |_| {
                if t.fetch_add(1, Ordering::SeqCst) == 0 {
                    Err(TaskError("first attempt".into()))
                } else {
                    Ok(TaskOutput::none())
                }
            }),
        );
        // During the 250 ms backoff the unit shows Failed but wait_unit must
        // keep blocking (no finish time yet).
        let mut saw_backoff = false;
        for _ in 0..100 {
            if s.unit_state(u) == Some(UnitState::Failed) {
                saw_backoff = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_backoff, "backoff window should be observable");
        assert_eq!(s.wait_unit(u).unwrap().state, UnitState::Done);
    }

    #[test]
    fn exhausted_retry_budget_is_terminal_failed() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(1, forever()));
        let u = s.submit_unit(
            UnitDescription::new(1).with_retry(RetryPolicy::fixed(2, 0.005)),
            kernel_fn(|_| Err(TaskError("always".into()))),
        );
        let out = s.wait_unit(u).unwrap();
        assert_eq!(out.state, UnitState::Failed);
        let report = s.shutdown();
        assert_eq!(report.reliability.attempts, 2);
        assert_eq!(report.reliability.requeues, 1);
        assert_eq!(report.reliability.exhausted_units, 1);
    }

    #[test]
    fn deadline_expiry_fails_the_attempt() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(1, forever()));
        let u = s.submit_unit(
            UnitDescription::new(1).with_deadline(0.05),
            Arc::new(SyntheticKernel::new(0.5)),
        );
        let out = s.wait_unit(u).unwrap();
        assert_eq!(out.state, UnitState::Failed);
        let err = out.output.unwrap().unwrap_err();
        assert!(err.0.contains("deadline"), "{err}");
        let report = s.shutdown();
        assert_eq!(report.reliability.deadline_expirations, 1);
        assert!(report.reliability.wasted_work_s > 0.0);
    }

    #[test]
    fn pilot_crash_fails_running_units_and_frees_the_queue() {
        let s = ThreadPilotService::with_faults(
            Box::new(FirstFitScheduler),
            FaultPlan::none().with_pilot_crashes(0.02),
            3,
        );
        let p = s.submit_pilot(PilotDescription::new(1, forever()));
        assert!(s.wait_pilot_active(p));
        // Occupies the only core well past the crash clock.
        let victim = s.submit_unit(UnitDescription::new(1), Arc::new(SyntheticKernel::new(5.0)));
        let out = s.wait_unit(victim).unwrap();
        assert_eq!(out.state, UnitState::Failed);
        assert!(out.output.unwrap().unwrap_err().0.contains("pilot crash"));
        assert_eq!(s.pilot_state(p), Some(PilotState::Failed));
        // A fresh pilot keeps the service usable; an instant unit with a
        // retry budget completes even if the new pilot crashes later.
        let p2 = s.submit_pilot(PilotDescription::new(1, forever()));
        assert!(s.wait_pilot_active(p2));
        let next = s.submit_unit(
            UnitDescription::new(1).with_retry(RetryPolicy::fixed(5, 0.005)),
            kernel_fn(|_| Ok(TaskOutput::of(1u8))),
        );
        assert_eq!(s.wait_unit(next).unwrap().state, UnitState::Done);
        let report = s.shutdown();
        assert!(report.reliability.pilot_crashes >= 1);
        assert!(
            report.reliability.wasted_work_s > 0.0,
            "victim's run was wasted"
        );
    }

    #[test]
    fn blacklist_quarantines_repeatedly_failing_pilot() {
        let s = ThreadPilotService::with_faults(
            Box::new(FirstFitScheduler),
            FaultPlan::none().with_unit_failures(1.0).with_blacklist(2),
            11,
        );
        let p = s.submit_pilot(PilotDescription::new(1, forever()));
        assert!(s.wait_pilot_active(p));
        for _ in 0..2 {
            let u = s.submit_unit(
                UnitDescription::new(1),
                kernel_fn(|_| Ok(TaskOutput::none())),
            );
            assert_eq!(s.wait_unit(u).unwrap().state, UnitState::Failed);
        }
        // Two consecutive injected failures blacklisted the pilot: new units
        // can no longer bind to it.
        let stuck = s.submit_unit(
            UnitDescription::new(1),
            kernel_fn(|_| Ok(TaskOutput::none())),
        );
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(s.unit_state(stuck), Some(UnitState::Pending));
        s.cancel_unit(stuck);
        let report = s.shutdown();
        assert_eq!(report.reliability.blacklisted_pilots, 1);
        assert_eq!(report.reliability.injected_unit_faults, 2);
    }

    #[test]
    fn bind_stats_build_one_snapshot_per_pass() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(4, forever()));
        for _ in 0..6 {
            s.submit_unit(
                UnitDescription::new(1),
                kernel_fn(|_| Ok(TaskOutput::none())),
            );
        }
        s.wait_all_units();
        let report = s.shutdown();
        assert_eq!(report.bind.binds, 6);
        assert!(report.bind.passes >= 1);
        assert_eq!(
            report.bind.snapshot_builds, report.bind.passes,
            "batched pass builds exactly one snapshot vector per pass"
        );
        assert!(report.bind.candidate_comparisons >= 6);
    }

    #[test]
    fn overhead_breakdown_from_report() {
        let s = svc();
        s.submit_pilot(PilotDescription::new(4, forever()));
        for _ in 0..10 {
            s.submit_unit(
                UnitDescription::new(1),
                Arc::new(SyntheticKernel::new(0.005)),
            );
        }
        s.wait_all_units();
        let report = s.shutdown();
        let times = report.done_unit_times();
        let b = crate::metrics::overhead_breakdown(times.iter());
        assert_eq!(b.execution.n, 10);
        assert!(b.execution.mean >= 0.005);
        assert!(b.overhead.mean < 0.5, "middleware overhead should be small");
    }
}
