//! Real-execution backend: pilots become in-process agents with worker-thread
//! pools; compute units carry [`WorkKernel`]s that do real computation.
//!
//! The manager runs as its own event-loop thread (mirroring the component
//! structure of the simulated backend): submissions, capacity changes and
//! completions arrive as messages; every capacity change re-runs the
//! late-binding scheduler over pending units. Wall-clock timestamps land in
//! the same [`crate::metrics::UnitTimes`] records as virtual-time ones, so
//! downstream analysis is backend-agnostic.
//!
//! Failure semantics: a panicking kernel marks its unit `Failed` (the worker
//! survives via `catch_unwind`); pilot cancel and walltime expiry *drain* —
//! the agent stops accepting new work and already-assigned units run to
//! completion, the semantics production pilot systems implement for clean
//! teardown.

mod agent;
mod kernel;
mod service;

pub use kernel::{kernel_fn, SyntheticKernel, TaskCtx, TaskError, TaskOutput, WorkKernel};
pub use service::{ServiceReport, StatusSnapshot, ThreadPilotService, UnitOutcome};
