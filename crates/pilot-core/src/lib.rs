//! # pilot-core — the pilot-abstraction (P\* model)
//!
//! The paper's primary contribution: a unified abstraction for
//! application-level resource management across heterogeneous infrastructure.
//! Following the P\* conceptual model (\[6\] in the paper), the abstraction has
//! four concepts:
//!
//! - **Pilot** — a placeholder job that acquires resources (cores) on some
//!   infrastructure and holds them for the application ([`PilotDescription`]).
//! - **Compute Unit (CU)** — a self-contained task ([`UnitDescription`] plus a
//!   workload: a real [`thread::WorkKernel`] or a synthetic duration model).
//! - **Pilot Manager** — submits/monitors pilots through the access layer
//!   (`pilot-saga` adaptors in simulation; local agents in real execution).
//! - **Unit Manager / Scheduler** — *late-binds* CUs onto pilots with free
//!   capacity ([`Scheduler`] implementations in [`scheduler`]).
//!
//! Late binding is the key mechanism: units are bound to concrete resources
//! only when capacity is actually available, so queue waits are paid once per
//! pilot instead of once per task, and placement decisions can use current
//! information (load, data locality).
//!
//! ## Two execution backends
//!
//! - [`thread`] — **real execution**: each active pilot runs an agent with a
//!   worker pool; kernels execute on real threads; timings are wall-clock.
//!   Used by the example applications and all criterion benchmarks.
//! - [`sim`] — **virtual-time execution** on the deterministic DES engine:
//!   pilots are placeholder jobs on simulated HPC/HTC/cloud/YARN backends,
//!   units carry duration models. Used for scaling, interoperability and
//!   adaptivity experiments beyond what one machine can host.
//!
//! Both backends share the same state machines, descriptions, scheduler
//! implementations and metric definitions, so results are comparable.

pub mod binding;
pub mod clock;
pub mod describe;
pub mod events;
pub mod fabric;
pub mod ids;
pub mod metrics;
pub mod par;
pub mod retry;
pub mod scheduler;
pub mod sim;
pub mod state;
pub mod thread;

pub use binding::{BindStats, PendingQueue};
pub use clock::WallClock;
pub use describe::{DataLocation, PilotDescription, UnitDescription};
pub use events::{EventCodecError, EventSink, ProjEvent};
pub use fabric::{
    Controller, DaemonKillSchedule, Fabric, FabricConfig, FabricReport, FabricUnit, HostDaemon,
    KillMode, RebalanceEvent, ScheduledKill, ShardAssignment,
};
pub use ids::{PilotId, UnitId};
pub use metrics::{OverheadBreakdown, PilotTimes, UnitTimes};
pub use par::Parallelism;
pub use retry::{Backoff, FailureTracker, FaultPlan, ReliabilityStats, RetryPolicy};
pub use scheduler::{
    BackfillScheduler, DataAwareScheduler, FirstFitScheduler, LoadBalanceScheduler, PilotSnapshot,
    RandomScheduler, RoundRobinScheduler, Scheduler, UnitRequest,
};
pub use state::{IllegalTransition, PilotState, UnitState};
