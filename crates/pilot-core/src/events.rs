//! Read-plane projection events.
//!
//! Every observable change in a pilot service — pilot state transitions,
//! pilot capacity changes, unit state transitions, per-unit timing metrics —
//! can be exported as a [`ProjEvent`] on a dedicated broker *projection
//! topic*. Materializers (the `pilot-query` crate) consume those topics into
//! query-optimized tables so that status reads never touch the owner's locks.
//!
//! The schema lives here, in `pilot-core`, because both producers (the thread
//! backend, the fabric controller) and the transport-facing sink
//! implementations depend on it; `pilot-streaming` depends on `pilot-core`,
//! so the broker-backed sink itself lives downstream in `pilot-query`.
//!
//! Events carry a compact, versionless binary encoding ([`ProjEvent::encode`]
//! / [`ProjEvent::decode`]) — fixed-width little-endian fields behind a one
//! byte tag — so a batch of transitions costs one `produce_batch` call and a
//! few hundred bytes, not a serde graph. [`ProjEvent::key`] returns the
//! entity id, which keyed partitioning maps to a stable partition: per-entity
//! event order is total within one partition, which is what the materializer
//! needs for exactly-once replay.
//!
// lint: deterministic — pure data + codec; no clocks, no I/O, no RNG.

use crate::ids::{PilotId, UnitId};
use crate::state::{PilotState, UnitState};

/// One read-plane event. Timestamps (`t_s`) are in the producer's own
/// timebase: wall-clock seconds since service start for the thread backend,
/// `tick * tick_s` virtual seconds for the fabric controller.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProjEvent {
    /// A pilot entered `state` at `t_s`.
    Pilot {
        pilot: PilotId,
        state: PilotState,
        t_s: f64,
    },
    /// A pilot's capacity changed (startup, bind, release, crash).
    PilotCapacity {
        pilot: PilotId,
        free_cores: u32,
        total_cores: u32,
        t_s: f64,
    },
    /// A unit entered `state` at `t_s`, bound to `pilot` if assigned.
    Unit {
        unit: UnitId,
        state: UnitState,
        pilot: Option<PilotId>,
        t_s: f64,
    },
    /// Timing metrics published when a unit completes.
    UnitMetric {
        unit: UnitId,
        wait_s: f64,
        exec_s: f64,
        t_s: f64,
    },
}

const TAG_PILOT: u8 = 1;
const TAG_PILOT_CAPACITY: u8 = 2;
const TAG_UNIT: u8 = 3;
const TAG_UNIT_METRIC: u8 = 4;

/// Why a payload failed to decode as a [`ProjEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventCodecError {
    /// Payload shorter than the tag demands.
    Truncated,
    /// Unknown event tag byte.
    UnknownTag(u8),
    /// State code outside the enum's range.
    UnknownState(u8),
}

impl std::fmt::Display for EventCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventCodecError::Truncated => write!(f, "truncated projection event"),
            EventCodecError::UnknownTag(t) => write!(f, "unknown projection event tag {t}"),
            EventCodecError::UnknownState(s) => write!(f, "unknown state code {s}"),
        }
    }
}

impl std::error::Error for EventCodecError {}

/// Stable wire/table code for a [`PilotState`] (also used as a dense array
/// index by projection dashboards).
pub fn pilot_state_code(s: PilotState) -> u8 {
    match s {
        PilotState::New => 0,
        PilotState::Pending => 1,
        PilotState::Active => 2,
        PilotState::Done => 3,
        PilotState::Canceled => 4,
        PilotState::Failed => 5,
    }
}

/// Inverse of [`pilot_state_code`].
pub fn pilot_state_from_code(c: u8) -> Result<PilotState, EventCodecError> {
    Ok(match c {
        0 => PilotState::New,
        1 => PilotState::Pending,
        2 => PilotState::Active,
        3 => PilotState::Done,
        4 => PilotState::Canceled,
        5 => PilotState::Failed,
        other => return Err(EventCodecError::UnknownState(other)),
    })
}

/// Number of distinct [`PilotState`] values (dashboard array width).
pub const PILOT_STATE_COUNT: usize = 6;

/// Stable wire/table code for a [`UnitState`].
pub fn unit_state_code(s: UnitState) -> u8 {
    match s {
        UnitState::New => 0,
        UnitState::Pending => 1,
        UnitState::Assigned => 2,
        UnitState::Staging => 3,
        UnitState::Running => 4,
        UnitState::Done => 5,
        UnitState::Failed => 6,
        UnitState::Canceled => 7,
    }
}

/// Inverse of [`unit_state_code`].
pub fn unit_state_from_code(c: u8) -> Result<UnitState, EventCodecError> {
    Ok(match c {
        0 => UnitState::New,
        1 => UnitState::Pending,
        2 => UnitState::Assigned,
        3 => UnitState::Staging,
        4 => UnitState::Running,
        5 => UnitState::Done,
        6 => UnitState::Failed,
        7 => UnitState::Canceled,
        other => return Err(EventCodecError::UnknownState(other)),
    })
}

/// Number of distinct [`UnitState`] values (dashboard array width).
pub const UNIT_STATE_COUNT: usize = 8;

impl ProjEvent {
    /// Partitioning key: the entity id. Keyed routing sends every event for
    /// one pilot/unit to the same partition, making per-entity order total.
    pub fn key(&self) -> u64 {
        match *self {
            ProjEvent::Pilot { pilot, .. } | ProjEvent::PilotCapacity { pilot, .. } => pilot.0,
            ProjEvent::Unit { unit, .. } | ProjEvent::UnitMetric { unit, .. } => unit.0,
        }
    }

    /// Compaction identity: the entity id tagged with the event *kind*.
    ///
    /// [`ProjEvent::key`] is the right routing key — every event of one
    /// entity must land in one partition so per-entity order stays total —
    /// but it is the wrong *compaction* key: a unit's state events and its
    /// metric events share `key()`, so latest-per-key compaction would let
    /// one kind supersede the other. Compacted projection topics therefore
    /// route by `key()` and compact by `identity()`: the latest state event
    /// *and* the latest metric event of an entity both survive, and the fold
    /// over a compacted log reconstructs the same rows as a full-history
    /// fold.
    pub fn identity(&self) -> u64 {
        let (id, kind) = match *self {
            ProjEvent::Pilot { pilot, .. } => (pilot.0, 0),
            ProjEvent::PilotCapacity { pilot, .. } => (pilot.0, 1),
            ProjEvent::Unit { unit, .. } => (unit.0, 2),
            ProjEvent::UnitMetric { unit, .. } => (unit.0, 3),
        };
        (id << 2) | kind
    }

    /// Event timestamp in the producer's timebase (seconds).
    pub fn t_s(&self) -> f64 {
        match *self {
            ProjEvent::Pilot { t_s, .. }
            | ProjEvent::PilotCapacity { t_s, .. }
            | ProjEvent::Unit { t_s, .. }
            | ProjEvent::UnitMetric { t_s, .. } => t_s,
        }
    }

    /// Compact binary encoding: one tag byte, then fixed-width LE fields.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(34);
        self.encode_into(&mut out);
        out
    }

    /// Append this event's encoding to `out` (for batch buffers).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            ProjEvent::Pilot { pilot, state, t_s } => {
                out.push(TAG_PILOT);
                out.extend_from_slice(&pilot.0.to_le_bytes());
                out.push(pilot_state_code(state));
                out.extend_from_slice(&t_s.to_bits().to_le_bytes());
            }
            ProjEvent::PilotCapacity {
                pilot,
                free_cores,
                total_cores,
                t_s,
            } => {
                out.push(TAG_PILOT_CAPACITY);
                out.extend_from_slice(&pilot.0.to_le_bytes());
                out.extend_from_slice(&free_cores.to_le_bytes());
                out.extend_from_slice(&total_cores.to_le_bytes());
                out.extend_from_slice(&t_s.to_bits().to_le_bytes());
            }
            ProjEvent::Unit {
                unit,
                state,
                pilot,
                t_s,
            } => {
                out.push(TAG_UNIT);
                out.extend_from_slice(&unit.0.to_le_bytes());
                out.push(unit_state_code(state));
                match pilot {
                    Some(p) => {
                        out.push(1);
                        out.extend_from_slice(&p.0.to_le_bytes());
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&t_s.to_bits().to_le_bytes());
            }
            ProjEvent::UnitMetric {
                unit,
                wait_s,
                exec_s,
                t_s,
            } => {
                out.push(TAG_UNIT_METRIC);
                out.extend_from_slice(&unit.0.to_le_bytes());
                out.extend_from_slice(&wait_s.to_bits().to_le_bytes());
                out.extend_from_slice(&exec_s.to_bits().to_le_bytes());
                out.extend_from_slice(&t_s.to_bits().to_le_bytes());
            }
        }
    }

    /// Decode one event from `buf`. Rejects truncated payloads, unknown tags
    /// and out-of-range state codes; trailing bytes are ignored so the format
    /// can grow append-only fields later.
    pub fn decode(buf: &[u8]) -> Result<ProjEvent, EventCodecError> {
        let (&tag, rest) = buf.split_first().ok_or(EventCodecError::Truncated)?;
        let mut r = Reader(rest);
        match tag {
            TAG_PILOT => Ok(ProjEvent::Pilot {
                pilot: PilotId(r.u64()?),
                state: pilot_state_from_code(r.u8()?)?,
                t_s: r.f64()?,
            }),
            TAG_PILOT_CAPACITY => Ok(ProjEvent::PilotCapacity {
                pilot: PilotId(r.u64()?),
                free_cores: r.u32()?,
                total_cores: r.u32()?,
                t_s: r.f64()?,
            }),
            TAG_UNIT => {
                let unit = UnitId(r.u64()?);
                let state = unit_state_from_code(r.u8()?)?;
                let pilot = match r.u8()? {
                    0 => None,
                    _ => Some(PilotId(r.u64()?)),
                };
                Ok(ProjEvent::Unit {
                    unit,
                    state,
                    pilot,
                    t_s: r.f64()?,
                })
            }
            TAG_UNIT_METRIC => Ok(ProjEvent::UnitMetric {
                unit: UnitId(r.u64()?),
                wait_s: r.f64()?,
                exec_s: r.f64()?,
                t_s: r.f64()?,
            }),
            other => Err(EventCodecError::UnknownTag(other)),
        }
    }
}

/// Bounds-checked little-endian cursor over an event payload.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], EventCodecError> {
        if self.0.len() < n {
            return Err(EventCodecError::Truncated);
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, EventCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, EventCodecError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, EventCodecError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, EventCodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Where producers hand off projection events.
///
/// Implementations must be cheap and non-blocking from the producer's point
/// of view (the thread backend calls this from the manager loop, once per
/// drained message batch) and must not panic: a sink that loses its transport
/// counts drops instead of failing the write path. The reference
/// implementation is `pilot_query::BrokerSink`, which appends the whole batch
/// with one keyed `produce_batch` call.
pub trait EventSink: Send + Sync {
    /// Hand a batch of events to the sink. Infallible by design — the write
    /// path must never stall or fail because the read plane is behind.
    fn emit_batch(&self, events: &[ProjEvent]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: ProjEvent) {
        let bytes = e.encode();
        let back = ProjEvent::decode(&bytes).expect("decode");
        assert_eq!(e, back);
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        roundtrip(ProjEvent::Pilot {
            pilot: PilotId(42),
            state: PilotState::Active,
            t_s: 1.25,
        });
        roundtrip(ProjEvent::PilotCapacity {
            pilot: PilotId(7),
            free_cores: 3,
            total_cores: 8,
            t_s: 0.0,
        });
        roundtrip(ProjEvent::Unit {
            unit: UnitId(u64::MAX),
            state: UnitState::Running,
            pilot: Some(PilotId(1)),
            t_s: 9.5,
        });
        roundtrip(ProjEvent::Unit {
            unit: UnitId(0),
            state: UnitState::Pending,
            pilot: None,
            t_s: -1.0,
        });
        roundtrip(ProjEvent::UnitMetric {
            unit: UnitId(3),
            wait_s: 0.125,
            exec_s: 2.5,
            t_s: 3.75,
        });
    }

    #[test]
    fn all_states_roundtrip_through_codes() {
        for c in 0..PILOT_STATE_COUNT as u8 {
            let s = pilot_state_from_code(c).expect("pilot code");
            assert_eq!(pilot_state_code(s), c);
        }
        for c in 0..UNIT_STATE_COUNT as u8 {
            let s = unit_state_from_code(c).expect("unit code");
            assert_eq!(unit_state_code(s), c);
        }
        assert!(pilot_state_from_code(PILOT_STATE_COUNT as u8).is_err());
        assert!(unit_state_from_code(UNIT_STATE_COUNT as u8).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(ProjEvent::decode(&[]), Err(EventCodecError::Truncated));
        assert_eq!(
            ProjEvent::decode(&[99, 0, 0]),
            Err(EventCodecError::UnknownTag(99))
        );
        let mut short = ProjEvent::Pilot {
            pilot: PilotId(1),
            state: PilotState::Done,
            t_s: 1.0,
        }
        .encode();
        short.truncate(short.len() - 1);
        assert_eq!(ProjEvent::decode(&short), Err(EventCodecError::Truncated));
    }

    #[test]
    fn key_is_entity_id() {
        assert_eq!(
            ProjEvent::Pilot {
                pilot: PilotId(5),
                state: PilotState::New,
                t_s: 0.0
            }
            .key(),
            5
        );
        assert_eq!(
            ProjEvent::UnitMetric {
                unit: UnitId(9),
                wait_s: 0.0,
                exec_s: 0.0,
                t_s: 0.0
            }
            .key(),
            9
        );
    }

    #[test]
    fn identity_separates_kinds_but_shares_routing_key() {
        let state = ProjEvent::Unit {
            unit: UnitId(9),
            state: UnitState::Running,
            pilot: None,
            t_s: 0.0,
        };
        let metric = ProjEvent::UnitMetric {
            unit: UnitId(9),
            wait_s: 1.0,
            exec_s: 2.0,
            t_s: 3.0,
        };
        let pstate = ProjEvent::Pilot {
            pilot: PilotId(9),
            state: PilotState::Active,
            t_s: 0.0,
        };
        let pcap = ProjEvent::PilotCapacity {
            pilot: PilotId(9),
            free_cores: 4,
            total_cores: 8,
            t_s: 0.0,
        };
        // Same routing key (entity 9) so all four share a partition…
        assert!([&state, &metric, &pstate, &pcap]
            .iter()
            .all(|e| e.key() == 9));
        // …but four distinct compaction identities, so compaction keeps the
        // latest event of *each kind*.
        let ids = [
            state.identity(),
            metric.identity(),
            pstate.identity(),
            pcap.identity(),
        ];
        for i in 0..ids.len() {
            for j in 0..i {
                assert_ne!(ids[i], ids[j]);
            }
        }
        // Later events of the same (entity, kind) share an identity.
        let metric2 = ProjEvent::UnitMetric {
            unit: UnitId(9),
            wait_s: 9.0,
            exec_s: 9.0,
            t_s: 9.0,
        };
        assert_eq!(metric.identity(), metric2.identity());
    }

    #[test]
    fn trailing_bytes_are_tolerated() {
        let e = ProjEvent::Unit {
            unit: UnitId(11),
            state: UnitState::Done,
            pilot: Some(PilotId(2)),
            t_s: 4.0,
        };
        let mut bytes = e.encode();
        bytes.extend_from_slice(&[0xAA; 5]);
        assert_eq!(ProjEvent::decode(&bytes), Ok(e));
    }
}
