//! Identifiers for the P\* concepts.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a pilot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PilotId(pub u64);

/// Identifier of a compute unit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UnitId(pub u64);

impl fmt::Display for PilotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pilot-{}", self.0)
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cu-{}", self.0)
    }
}

/// Monotonic id source shared by managers (thread-safe, lock-free).
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// Counter starting at 1 (0 is reserved as a niche for debugging).
    pub fn new() -> Self {
        IdGen {
            next: AtomicU64::new(1),
        }
    }

    /// Next raw id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Next pilot id.
    pub fn pilot(&self) -> PilotId {
        PilotId(self.next())
    }

    /// Next unit id.
    pub fn unit(&self) -> UnitId {
        UnitId(self.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotonic() {
        let g = IdGen::new();
        let a = g.pilot();
        let b = g.unit();
        let c = g.pilot();
        assert!(a.0 < b.0 && b.0 < c.0);
        assert_eq!(a.to_string(), "pilot-1");
        assert_eq!(b.to_string(), "cu-2");
    }

    #[test]
    fn idgen_is_thread_safe() {
        use std::sync::Arc;
        let g = Arc::new(IdGen::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || (0..1000).map(|_| g.next()).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000, "no duplicate ids under contention");
    }
}
