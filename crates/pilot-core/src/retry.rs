//! Reliability primitives shared by both execution backends.
//!
//! Data-intensive workloads run long enough that failure is the common case,
//! not the exception: pilots are preempted or crash mid-walltime, kernels hit
//! transient errors, stage-in flakes. The pilot abstraction absorbs these
//! below the application API — a failed attempt re-enters the late-binding
//! queue (`Failed → Pending`) and the scheduler rebinds it onto a healthy
//! pilot, with backoff between attempts and blacklisting of repeat offenders.
//!
//! Everything here is pure data + deterministic arithmetic so both the
//! threaded and the simulated backend share identical semantics:
//!
//! - [`RetryPolicy`] / [`Backoff`] — per-unit retry budget and delay schedule
//!   (seeded jitter through [`SimRng`], so replays are bit-identical).
//! - [`FaultPlan`] — deterministic fault injection knobs (pilot crash MTBF,
//!   kernel failure probability, transient stage-in failures).
//! - [`FailureTracker`] — consecutive-failure streaks per pilot, driving
//!   blacklist decisions.
//! - [`ReliabilityStats`] — attempts, requeues, wasted work, recovery times,
//!   exported into Mini-App reports by both backends.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use crate::ids::PilotId;
use pilot_sim::SimRng;
use std::collections::{HashMap, HashSet};

/// Delay schedule between retry attempts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Backoff {
    /// The same delay before every retry.
    Fixed {
        /// Delay in seconds.
        delay_s: f64,
    },
    /// Geometric growth: `base_s * factor^(failures-1)`, clamped to `cap_s`.
    Exponential {
        /// Delay before the first retry, seconds.
        base_s: f64,
        /// Growth factor per failure (clamped ≥ 1).
        factor: f64,
        /// Upper bound on the delay, seconds.
        cap_s: f64,
    },
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::Fixed { delay_s: 0.0 }
    }
}

/// Per-unit retry budget and backoff, attached to a `UnitDescription`.
///
/// `max_attempts` counts *total* attempts including the first, so the default
/// of 1 means fail-fast (no retry), matching the pre-reliability behavior.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total execution attempts allowed (first try included). Minimum 1.
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
    /// Multiplicative jitter fraction in `[0, 1]`: the delay is scaled by a
    /// uniform draw from `[1, 1 + jitter)`. Zero disables jitter.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// Fail-fast: one attempt, no retry.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::default(),
            jitter: 0.0,
        }
    }

    /// Retry with a fixed delay between attempts.
    #[must_use]
    pub fn fixed(max_attempts: u32, delay_s: f64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: Backoff::Fixed {
                delay_s: delay_s.max(0.0),
            },
            jitter: 0.0,
        }
    }

    /// Retry with exponential backoff capped at `cap_s`.
    #[must_use]
    pub fn exponential(max_attempts: u32, base_s: f64, factor: f64, cap_s: f64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: Backoff::Exponential {
                base_s: base_s.max(0.0),
                factor: factor.max(1.0),
                cap_s: cap_s.max(0.0),
            },
            jitter: 0.0,
        }
    }

    /// Enable jitter (fraction clamped to `[0, 1]`).
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Whether another attempt may be made after `attempts_done` attempts
    /// have already failed.
    pub fn allows_retry(&self, attempts_done: u32) -> bool {
        attempts_done < self.max_attempts
    }

    /// Jitter-free delay before the retry following the `failures`-th failure
    /// (1-based). The schedule is monotonically non-decreasing in `failures`
    /// and bounded by the cap for exponential backoff.
    pub fn base_delay_s(&self, failures: u32) -> f64 {
        let failures = failures.max(1);
        match self.backoff {
            Backoff::Fixed { delay_s } => delay_s.max(0.0),
            Backoff::Exponential {
                base_s,
                factor,
                cap_s,
            } => {
                let base_s = base_s.max(0.0);
                let factor = factor.max(1.0);
                let mut d = base_s;
                // Iterative growth with early cap-out: avoids powf overflow
                // for large failure counts and keeps the result exact for
                // small ones.
                for _ in 1..failures {
                    if d >= cap_s {
                        break;
                    }
                    d *= factor;
                }
                d.min(cap_s)
            }
        }
    }

    /// Delay with seeded jitter applied. Deterministic given the RNG state:
    /// replaying the same seed reproduces the same schedule.
    pub fn delay_s(&self, failures: u32, rng: &mut SimRng) -> f64 {
        let base = self.base_delay_s(failures);
        if self.jitter <= 0.0 {
            return base;
        }
        base * (1.0 + self.jitter * rng.f64())
    }
}

/// Deterministic fault-injection plan, applied by a backend to every pilot
/// and unit it manages. All draws come from RNG streams derived from the
/// run seed, so a replay with the same seed injects the same faults at the
/// same points.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Mean time between pilot crashes, seconds (exponentially distributed
    /// per pilot activation). `None` disables pilot crashes.
    pub pilot_crash_mtbf_s: Option<f64>,
    /// Probability that a given execution attempt fails partway through.
    pub unit_failure_p: f64,
    /// Probability that a given stage-in attempt fails transiently.
    pub staging_failure_p: f64,
    /// Blacklist a pilot after this many *consecutive* unit failures on it.
    /// `None` disables blacklisting.
    pub blacklist_after: Option<u32>,
    /// Mean time between broker-node kills, seconds (exponentially
    /// distributed per node, drawn from the [`streams::BROKER_KILL`]
    /// stream). `None` disables data-plane node kills. Consumed by the
    /// replicated-broker layer: the kill schedule is derived once from the
    /// run seed, so replays kill the same nodes at the same times.
    pub broker_node_mtbf_s: Option<f64>,
    /// Mean time between host-daemon (manager) kills, seconds
    /// (exponentially distributed per daemon, drawn from the
    /// [`streams::DAEMON_KILL`] stream). `None` disables control-plane
    /// daemon kills. Consumed by the fabric: the kill schedule is derived
    /// once from the run seed, so replays kill the same daemons at the same
    /// logical times — the manager-crash analog of broker-node kills.
    pub host_daemon_mtbf_s: Option<f64>,
}

impl FaultPlan {
    /// No injected faults (the default).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Crash pilots with the given mean time between failures (seconds).
    #[must_use]
    pub fn with_pilot_crashes(mut self, mtbf_s: f64) -> Self {
        self.pilot_crash_mtbf_s = (mtbf_s > 0.0).then_some(mtbf_s);
        self
    }

    /// Fail execution attempts with probability `p`.
    #[must_use]
    pub fn with_unit_failures(mut self, p: f64) -> Self {
        self.unit_failure_p = p.clamp(0.0, 1.0);
        self
    }

    /// Fail stage-in attempts with probability `p`.
    #[must_use]
    pub fn with_staging_failures(mut self, p: f64) -> Self {
        self.staging_failure_p = p.clamp(0.0, 1.0);
        self
    }

    /// Blacklist pilots after `n` consecutive failures.
    #[must_use]
    pub fn with_blacklist(mut self, n: u32) -> Self {
        self.blacklist_after = (n > 0).then_some(n);
        self
    }

    /// Kill broker nodes with the given mean time between kills (seconds).
    #[must_use]
    pub fn with_broker_node_kills(mut self, mtbf_s: f64) -> Self {
        self.broker_node_mtbf_s = (mtbf_s > 0.0).then_some(mtbf_s);
        self
    }

    /// Kill host daemons with the given mean time between kills (seconds).
    #[must_use]
    pub fn with_daemon_kills(mut self, mtbf_s: f64) -> Self {
        self.host_daemon_mtbf_s = (mtbf_s > 0.0).then_some(mtbf_s);
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.pilot_crash_mtbf_s.is_some()
            || self.unit_failure_p > 0.0
            || self.staging_failure_p > 0.0
            || self.broker_node_mtbf_s.is_some()
            || self.host_daemon_mtbf_s.is_some()
    }
}

/// RNG stream ids reserved by the reliability layer, so both backends draw
/// fault decisions from the same namespaces and never collide with workload
/// streams (which key off raw unit ids).
pub mod streams {
    /// Stream for pilot crash times; xor with the pilot id.
    pub const PILOT_CRASH: u64 = 0x5256_0000_0000_0001;
    /// Stream for per-attempt kernel fault draws; xor with unit id/attempt.
    pub const UNIT_FAULT: u64 = 0x5256_0000_0000_0002;
    /// Stream for per-attempt stage-in fault draws.
    pub const STAGING_FAULT: u64 = 0x5256_0000_0000_0003;
    /// Stream for backoff jitter draws.
    pub const BACKOFF_JITTER: u64 = 0x5256_0000_0000_0004;
    /// Stream for broker-node kill times; xor with the node index.
    pub const BROKER_KILL: u64 = 0x5256_0000_0000_0005;
    /// Stream for host-daemon kill times; xor with the daemon index.
    pub const DAEMON_KILL: u64 = 0x5256_0000_0000_0006;
    /// Stream for random-scheduler placement picks; xor with the unit id.
    pub const SCHED_PICK: u64 = 0x5256_0000_0000_0007;

    /// Derive the per-entity, per-attempt sub-id mixed into a stream.
    pub fn keyed(stream: u64, entity: u64, attempt: u32) -> u64 {
        stream ^ entity.rotate_left(16) ^ ((attempt as u64) << 48)
    }
}

/// Tracks consecutive unit failures per pilot and decides blacklisting.
///
/// A success on a pilot resets its streak; once the streak reaches the
/// threshold, the pilot is blacklisted and the scheduler stops offering it
/// capacity (its snapshot is filtered out).
#[derive(Clone, Debug, Default)]
pub struct FailureTracker {
    threshold: Option<u32>,
    streaks: HashMap<PilotId, u32>,
    blacklisted: HashSet<PilotId>,
}

impl FailureTracker {
    /// A tracker blacklisting after `threshold` consecutive failures
    /// (`None` disables blacklisting; failures are still counted).
    pub fn new(threshold: Option<u32>) -> Self {
        FailureTracker {
            threshold,
            streaks: HashMap::new(),
            blacklisted: HashSet::new(),
        }
    }

    /// Record a unit failure attributed to `pilot`. Returns `true` when this
    /// failure newly blacklists the pilot.
    pub fn record_failure(&mut self, pilot: PilotId) -> bool {
        let streak = self.streaks.entry(pilot).or_insert(0);
        *streak += 1;
        match self.threshold {
            Some(t) if *streak >= t && !self.blacklisted.contains(&pilot) => {
                self.blacklisted.insert(pilot);
                true
            }
            _ => false,
        }
    }

    /// Record a unit success on `pilot`, resetting its streak.
    pub fn record_success(&mut self, pilot: PilotId) {
        self.streaks.insert(pilot, 0);
    }

    /// Whether `pilot` is blacklisted.
    pub fn is_blacklisted(&self, pilot: PilotId) -> bool {
        self.blacklisted.contains(&pilot)
    }

    /// Number of blacklisted pilots.
    pub fn blacklisted_count(&self) -> u64 {
        self.blacklisted.len() as u64
    }

    /// Current failure streak for `pilot`.
    pub fn streak(&self, pilot: PilotId) -> u32 {
        self.streaks.get(&pilot).copied().unwrap_or(0)
    }
}

/// Reliability counters collected over one run, identical across backends.
#[derive(Clone, Debug, Default, PartialEq)]
#[must_use]
pub struct ReliabilityStats {
    /// Execution attempts started (first tries + retries).
    pub attempts: u64,
    /// `Failed → Pending` requeues (retries granted by a policy).
    pub requeues: u64,
    /// `Assigned/Staging → Pending` rebinds after a pilot was lost before
    /// the unit started (no work lost, not charged against the retry budget).
    pub rebinds: u64,
    /// Kernel faults injected by the fault plan.
    pub injected_unit_faults: u64,
    /// Stage-in faults injected by the fault plan.
    pub injected_staging_faults: u64,
    /// Pilot crashes injected by the fault plan.
    pub pilot_crashes: u64,
    /// Units that failed terminally after exhausting their retry budget.
    pub exhausted_units: u64,
    /// Units that missed their deadline (each expiry counted once).
    pub deadline_expirations: u64,
    /// Pilots blacklisted for repeated failures.
    pub blacklisted_pilots: u64,
    /// Execution seconds spent on attempts that did not complete.
    pub wasted_work_s: f64,
    /// Total failure → next-bind recovery time, seconds.
    pub recovery_s: f64,
    /// Number of completed recoveries (failure followed by a rebind).
    pub recoveries: u64,
    /// Broker nodes killed by the fault plan (data plane).
    pub broker_node_kills: u64,
    /// Partition leaderships promoted to a follower after a node kill.
    pub leader_failovers: u64,
    /// Appends rejected because they carried a stale leadership epoch.
    pub fenced_appends: u64,
}

impl ReliabilityStats {
    /// Mean time-to-recovery over completed recoveries, seconds.
    pub fn mean_recovery_s(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.recovery_s / self.recoveries as f64
        }
    }

    /// Flatten into `(name, value)` metric pairs for Mini-App report rows.
    pub fn as_metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("attempts".into(), self.attempts as f64),
            ("requeues".into(), self.requeues as f64),
            ("rebinds".into(), self.rebinds as f64),
            (
                "injected_unit_faults".into(),
                self.injected_unit_faults as f64,
            ),
            (
                "injected_staging_faults".into(),
                self.injected_staging_faults as f64,
            ),
            ("pilot_crashes".into(), self.pilot_crashes as f64),
            ("exhausted_units".into(), self.exhausted_units as f64),
            (
                "deadline_expirations".into(),
                self.deadline_expirations as f64,
            ),
            ("blacklisted_pilots".into(), self.blacklisted_pilots as f64),
            ("wasted_work_s".into(), self.wasted_work_s),
            ("mean_recovery_s".into(), self.mean_recovery_s()),
            ("broker_node_kills".into(), self.broker_node_kills as f64),
            ("leader_failovers".into(), self.leader_failovers as f64),
            ("fenced_appends".into(), self.fenced_appends as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_fail_fast() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert!(!p.allows_retry(1));
        assert_eq!(p.base_delay_s(1), 0.0);
    }

    #[test]
    fn fixed_backoff_is_constant() {
        let p = RetryPolicy::fixed(4, 2.5);
        assert!(p.allows_retry(3));
        assert!(!p.allows_retry(4));
        for f in 1..10 {
            assert_eq!(p.base_delay_s(f), 2.5);
        }
    }

    #[test]
    fn exponential_backoff_grows_and_caps() {
        let p = RetryPolicy::exponential(8, 1.0, 2.0, 10.0);
        assert_eq!(p.base_delay_s(1), 1.0);
        assert_eq!(p.base_delay_s(2), 2.0);
        assert_eq!(p.base_delay_s(3), 4.0);
        assert_eq!(p.base_delay_s(4), 8.0);
        assert_eq!(p.base_delay_s(5), 10.0);
        assert_eq!(p.base_delay_s(64), 10.0, "large counts stay capped");
    }

    #[test]
    fn jittered_delay_is_deterministic_per_seed() {
        let p = RetryPolicy::exponential(5, 1.0, 2.0, 60.0).with_jitter(0.5);
        let mut a = SimRng::new(99).stream(streams::BACKOFF_JITTER);
        let mut b = SimRng::new(99).stream(streams::BACKOFF_JITTER);
        for f in 1..5 {
            let da = p.delay_s(f, &mut a);
            let db = p.delay_s(f, &mut b);
            assert_eq!(da, db);
            let base = p.base_delay_s(f);
            assert!(
                da >= base && da < base * 1.5 + 1e-9,
                "delay {da} base {base}"
            );
        }
    }

    #[test]
    fn fault_plan_builders_clamp() {
        let f = FaultPlan::none()
            .with_unit_failures(2.0)
            .with_staging_failures(-1.0)
            .with_pilot_crashes(0.0)
            .with_blacklist(0)
            .with_broker_node_kills(0.0)
            .with_daemon_kills(-5.0);
        assert_eq!(f.unit_failure_p, 1.0);
        assert_eq!(f.staging_failure_p, 0.0);
        assert_eq!(f.pilot_crash_mtbf_s, None);
        assert_eq!(f.blacklist_after, None);
        assert_eq!(f.broker_node_mtbf_s, None);
        assert_eq!(f.host_daemon_mtbf_s, None);
        assert!(f.is_active());
        assert!(!FaultPlan::none().is_active());
        // Broker-node kills alone make a plan active (data-plane faults).
        let k = FaultPlan::none().with_broker_node_kills(30.0);
        assert_eq!(k.broker_node_mtbf_s, Some(30.0));
        assert!(k.is_active());
        // Daemon kills alone make a plan active (control-plane faults).
        let d = FaultPlan::none().with_daemon_kills(45.0);
        assert_eq!(d.host_daemon_mtbf_s, Some(45.0));
        assert!(d.is_active());
    }

    #[test]
    fn failure_tracker_blacklists_on_streak() {
        let mut t = FailureTracker::new(Some(3));
        let p = PilotId(7);
        assert!(!t.record_failure(p));
        assert!(!t.record_failure(p));
        t.record_success(p); // resets the streak
        assert!(!t.record_failure(p));
        assert!(!t.record_failure(p));
        assert!(t.record_failure(p), "third consecutive failure blacklists");
        assert!(t.is_blacklisted(p));
        assert!(!t.record_failure(p), "already blacklisted, not 'newly'");
        assert_eq!(t.blacklisted_count(), 1);
    }

    #[test]
    fn failure_tracker_disabled_never_blacklists() {
        let mut t = FailureTracker::new(None);
        for _ in 0..100 {
            assert!(!t.record_failure(PilotId(1)));
        }
        assert!(!t.is_blacklisted(PilotId(1)));
        assert_eq!(t.streak(PilotId(1)), 100);
    }

    #[test]
    fn stats_metrics_cover_all_counters() {
        let s = ReliabilityStats {
            attempts: 5,
            requeues: 2,
            recovery_s: 6.0,
            recoveries: 2,
            ..Default::default()
        };
        let m = s.as_metrics();
        assert!(m.iter().any(|(k, v)| k == "attempts" && *v == 5.0));
        assert!(m.iter().any(|(k, v)| k == "mean_recovery_s" && *v == 3.0));
    }
}
