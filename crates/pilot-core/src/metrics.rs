//! Timing records and derived metrics, identical across backends.
//!
//! All timestamps are `f64` seconds relative to the run's start — wall-clock
//! in the threaded backend, virtual time in the simulated one — so the same
//! post-processing regenerates the paper's metrics (pilot overhead, task
//! runtimes, throughput, strong scaling) from either source.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use crate::ids::{PilotId, UnitId};
use pilot_sim::{percentile, summarize, Summary};

/// Lifecycle timestamps of one pilot.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PilotTimes {
    /// When the application submitted the pilot.
    pub submitted: f64,
    /// When first capacity arrived (agent usable).
    pub active: Option<f64>,
    /// When the pilot reached a terminal state.
    pub finished: Option<f64>,
}

impl PilotTimes {
    /// Provisioning overhead: submission → first capacity.
    pub fn startup_overhead(&self) -> Option<f64> {
        self.active.map(|a| a - self.submitted)
    }
}

/// Lifecycle timestamps of one compute unit.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UnitTimes {
    /// When the application submitted the unit.
    pub submitted: f64,
    /// When the scheduler bound it to a pilot (late binding decision).
    pub bound: Option<f64>,
    /// When execution (after staging) began.
    pub started: Option<f64>,
    /// When it reached a terminal state.
    pub finished: Option<f64>,
}

impl UnitTimes {
    /// Queue wait inside the unit manager: submit → bind.
    pub fn wait(&self) -> Option<f64> {
        self.bound.map(|b| b - self.submitted)
    }

    /// Staging + agent dispatch: bind → start.
    pub fn staging(&self) -> Option<f64> {
        match (self.bound, self.started) {
            (Some(b), Some(s)) => Some(s - b),
            _ => None,
        }
    }

    /// Kernel execution: start → finish.
    pub fn execution(&self) -> Option<f64> {
        match (self.started, self.finished) {
            (Some(s), Some(f)) => Some(f - s),
            _ => None,
        }
    }

    /// End-to-end: submit → finish.
    pub fn turnaround(&self) -> Option<f64> {
        self.finished.map(|f| f - self.submitted)
    }

    /// Middleware overhead: turnaround minus pure execution.
    pub fn overhead(&self) -> Option<f64> {
        match (self.turnaround(), self.execution()) {
            (Some(t), Some(e)) => Some(t - e),
            _ => None,
        }
    }
}

/// The paper's pilot-overhead decomposition across a set of units/pilots.
#[derive(Clone, Debug, PartialEq)]
pub struct OverheadBreakdown {
    /// Unit wait times (late-binding queue), seconds.
    pub wait: Summary,
    /// Staging/dispatch times, seconds.
    pub staging: Summary,
    /// Execution times, seconds.
    pub execution: Summary,
    /// Total middleware overhead per unit, seconds.
    pub overhead: Summary,
    /// p99 turnaround, seconds.
    pub turnaround_p99: f64,
}

/// Compute the breakdown over finished units.
pub fn overhead_breakdown<'a>(units: impl Iterator<Item = &'a UnitTimes>) -> OverheadBreakdown {
    let mut wait = Vec::new();
    let mut staging = Vec::new();
    let mut execution = Vec::new();
    let mut overhead = Vec::new();
    let mut turnaround = Vec::new();
    for u in units {
        if let Some(x) = u.wait() {
            wait.push(x);
        }
        if let Some(x) = u.staging() {
            staging.push(x);
        }
        if let Some(x) = u.execution() {
            execution.push(x);
        }
        if let Some(x) = u.overhead() {
            overhead.push(x);
        }
        if let Some(x) = u.turnaround() {
            turnaround.push(x);
        }
    }
    OverheadBreakdown {
        wait: summarize(&wait),
        staging: summarize(&staging),
        execution: summarize(&execution),
        overhead: summarize(&overhead),
        turnaround_p99: percentile(&turnaround, 99.0),
    }
}

/// Makespan of a set of units: first submission → last finish.
pub fn makespan<'a>(units: impl Iterator<Item = &'a UnitTimes>) -> f64 {
    let mut first = f64::INFINITY;
    let mut last = f64::NEG_INFINITY;
    for u in units {
        first = first.min(u.submitted);
        if let Some(f) = u.finished {
            last = last.max(f);
        }
    }
    if last > first {
        last - first
    } else {
        0.0
    }
}

/// Completed-unit throughput in units/second over the makespan.
pub fn throughput<'a>(units: impl Iterator<Item = &'a UnitTimes> + Clone) -> f64 {
    let n = units.clone().filter(|u| u.finished.is_some()).count();
    let m = makespan(units);
    if m > 0.0 {
        n as f64 / m
    } else {
        0.0
    }
}

/// One row of a completed run, keyed for report joins.
#[derive(Clone, Debug)]
pub struct UnitRecord {
    /// Unit id.
    pub unit: UnitId,
    /// Pilot that executed it, if it was bound.
    pub pilot: Option<PilotId>,
    /// Timestamps.
    pub times: UnitTimes,
    /// Terminal state reached.
    pub state: crate::state::UnitState,
    /// Description tag, carried through for grouping.
    pub tag: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(sub: f64, bound: f64, start: f64, fin: f64) -> UnitTimes {
        UnitTimes {
            submitted: sub,
            bound: Some(bound),
            started: Some(start),
            finished: Some(fin),
        }
    }

    #[test]
    fn unit_time_decomposition() {
        let u = unit(0.0, 2.0, 3.0, 10.0);
        assert_eq!(u.wait(), Some(2.0));
        assert_eq!(u.staging(), Some(1.0));
        assert_eq!(u.execution(), Some(7.0));
        assert_eq!(u.turnaround(), Some(10.0));
        assert_eq!(u.overhead(), Some(3.0));
    }

    #[test]
    fn incomplete_units_yield_none() {
        let u = UnitTimes {
            submitted: 1.0,
            ..Default::default()
        };
        assert_eq!(u.wait(), None);
        assert_eq!(u.execution(), None);
        assert_eq!(u.overhead(), None);
    }

    #[test]
    fn pilot_startup_overhead() {
        let p = PilotTimes {
            submitted: 5.0,
            active: Some(65.0),
            finished: None,
        };
        assert_eq!(p.startup_overhead(), Some(60.0));
    }

    #[test]
    fn breakdown_and_makespan() {
        let us = [unit(0.0, 1.0, 1.5, 5.0), unit(0.5, 1.0, 2.0, 9.0)];
        let b = overhead_breakdown(us.iter());
        assert_eq!(b.wait.n, 2);
        assert!((b.wait.mean - 0.75).abs() < 1e-12);
        assert!((b.execution.mean - 5.25).abs() < 1e-12);
        assert!((makespan(us.iter()) - 9.0).abs() < 1e-12);
        let tp = throughput(us.iter());
        assert!((tp - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_do_not_divide_by_zero() {
        let us: [UnitTimes; 0] = [];
        assert_eq!(makespan(us.iter()), 0.0);
        assert_eq!(throughput(us.iter()), 0.0);
        let b = overhead_breakdown(us.iter());
        assert_eq!(b.wait.n, 0);
    }
}
