//! Channel-based fabric transport: the message types exchanged between the
//! controller and its host daemons, plus the link bundle wiring them up.
//!
//! Every daemon holds one `Sender<ToController>` clone (all daemon traffic
//! funnels into a single controller inbox) and one private
//! `Receiver<ToDaemon>` inbox. Channels are FIFO and the fabric driver steps
//! daemons in index order, so message interleaving is a pure function of the
//! tick schedule — replays see byte-identical traffic. A later `pilot-infra`
//! network model can replace these process-local channels without touching
//! the controller or daemon logic.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::ids::{PilotId, UnitId};

use super::FabricUnit;

/// One shard's capacity as reported in a heartbeat: the controller's
/// aggregate view is the union of the latest report per shard, refreshed by
/// heartbeats and decremented optimistically between them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardCapacity {
    /// Which shard.
    pub shard: u32,
    /// Assignment epoch the daemon believes it holds the shard under.
    pub epoch: u64,
    /// Free cores across the shard's pilots right now.
    pub free_cores: u32,
    /// Units queued (pending, not yet bound) on the shard.
    pub queued_units: u64,
}

/// Daemon → controller traffic. Every data-path message carries the
/// `(shard, epoch)` the daemon believes it owns; the controller fences any
/// report whose epoch is not the shard's current assignment epoch — the
/// exact `append_with_lease`/`FencedEpoch` discipline the replicated broker
/// applies to deposed partition leaders.
#[derive(Clone, Debug)]
pub enum ToController {
    /// Liveness + capacity report, sent every `heartbeat_every` ticks.
    Heartbeat {
        /// Reporting daemon.
        daemon: usize,
        /// Logical tick the report was produced at.
        tick: u64,
        /// Capacity of every shard the daemon currently runs.
        shards: Vec<ShardCapacity>,
    },
    /// A unit was bound to a pilot and began executing.
    UnitStarted {
        /// Reporting daemon.
        daemon: usize,
        /// Shard the bind happened on.
        shard: u32,
        /// Epoch the daemon holds the shard under.
        epoch: u64,
        /// The unit.
        unit: UnitId,
        /// The pilot it bound to.
        pilot: PilotId,
        /// Bind tick.
        tick: u64,
    },
    /// A unit's attempt finished successfully.
    UnitDone {
        /// Reporting daemon.
        daemon: usize,
        /// Shard the unit ran on.
        shard: u32,
        /// Epoch the daemon holds the shard under.
        epoch: u64,
        /// The unit.
        unit: UnitId,
        /// Completion tick.
        tick: u64,
    },
    /// A unit's attempt failed (injected kernel fault).
    UnitFailed {
        /// Reporting daemon.
        daemon: usize,
        /// Shard the unit ran on.
        shard: u32,
        /// Epoch the daemon holds the shard under.
        epoch: u64,
        /// The unit.
        unit: UnitId,
        /// Failure tick.
        tick: u64,
    },
}

/// Controller → daemon traffic.
#[derive(Clone, Debug)]
pub enum ToDaemon {
    /// Take ownership of a shard at the given epoch, hosting these pilots
    /// (`(pilot, cores)`). Sent at bootstrap and on every rebalance; the
    /// epoch strictly increases per shard, never reuses an older one.
    AssignShard {
        /// Which shard.
        shard: u32,
        /// Assignment epoch (fences the previous owner).
        epoch: u64,
        /// Pilots the shard hosts, sorted by id.
        pilots: Vec<(PilotId, u32)>,
    },
    /// Queue a unit on a shard the daemon owns. Carries the epoch the
    /// controller routed under; the daemon drops it if its own epoch moved.
    Dispatch {
        /// Target shard.
        shard: u32,
        /// Epoch the controller routed under.
        epoch: u64,
        /// The unit (description + duration + attempt number).
        unit: FabricUnit,
    },
}

/// The wired-up channel bundle for one fabric instance.
pub struct Links {
    /// Cloneable sender handed to every daemon.
    pub to_controller: Sender<ToController>,
    /// The controller's inbox.
    pub controller_inbox: Receiver<ToController>,
    /// Per-daemon senders kept by the controller.
    pub to_daemons: Vec<Sender<ToDaemon>>,
    /// Per-daemon inboxes.
    pub daemon_inboxes: Vec<Receiver<ToDaemon>>,
}

/// Build the channel fabric for `n_daemons` daemons.
pub fn links(n_daemons: usize) -> Links {
    let (to_controller, controller_inbox) = unbounded();
    let mut to_daemons = Vec::with_capacity(n_daemons);
    let mut daemon_inboxes = Vec::with_capacity(n_daemons);
    for _ in 0..n_daemons {
        let (tx, rx) = unbounded();
        to_daemons.push(tx);
        daemon_inboxes.push(rx);
    }
    Links {
        to_controller,
        controller_inbox,
        to_daemons,
        daemon_inboxes,
    }
}
