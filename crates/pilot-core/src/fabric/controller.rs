//! The fabric controller: owns placement, epoch-fenced shard assignment, the
//! exactly-once unit ledger, and heartbeat-lapse failure detection.
//!
//! The controller never runs units itself. It routes each unit to a shard
//! using an aggregate capacity view (latest heartbeat per shard, decremented
//! optimistically between heartbeats), and the owning daemon late-binds it
//! locally — SC-1's batched pass, per shard. When a daemon's heartbeats
//! lapse, the controller declares it dead, moves its shards to the live
//! daemon with the fewest shards under a bumped assignment epoch, and
//! re-drives the affected units with RB-1 semantics extended to manager
//! crashes: units that had *started* on the dead daemon are charged a retry
//! attempt (with backoff), units merely dispatched re-route for free.
//!
//! Lock order: none — the controller is single-threaded and owns all of its
//! state; daemons only ever talk to it through the transport channels.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use std::collections::{BinaryHeap, HashMap};

use crossbeam::channel::{Receiver, Sender};
use pilot_sim::SimRng;

use crate::describe::UnitDescription;
use crate::events::ProjEvent;
use crate::ids::{PilotId, UnitId};
use crate::retry::{streams, RetryPolicy};
use crate::state::UnitState;

use super::transport::{ToController, ToDaemon};
use super::{FabricConfig, FabricUnit};

/// One row of the shard-assignment log: `daemon` took `shard` at `epoch` on
/// `tick`. The log is append-only; the rebalance proptest checks that no two
/// rows share a `(shard, epoch)` pair and that epochs per shard strictly
/// increase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Which shard.
    pub shard: u32,
    /// Assignment epoch.
    pub epoch: u64,
    /// Owning daemon.
    pub daemon: usize,
    /// Tick the assignment was made.
    pub tick: u64,
}

/// One heartbeat-lapse rebalance, with the latency breakdown FB-1 measures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RebalanceEvent {
    /// Daemon declared dead.
    pub daemon: usize,
    /// Last tick a heartbeat from it was accepted.
    pub last_heartbeat_tick: u64,
    /// Tick the lapse was declared and shards were reassigned.
    pub declared_tick: u64,
    /// Shards moved to new owners.
    pub shards_moved: u32,
    /// Started units charged a retry attempt (RB-1 manager-crash path).
    pub units_requeued: u64,
    /// Dispatched-but-unstarted units re-routed for free.
    pub units_redispatched: u64,
    /// First tick a unit bound under one of the bumped epochs — the
    /// end-to-end rebalance latency is `first_bind_new_epoch_tick -
    /// last_heartbeat_tick`.
    pub first_bind_new_epoch_tick: Option<u64>,
}

/// Fencing and exactly-once counters kept by the controller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Unit completions accepted (first completion per unit).
    pub completed: u64,
    /// Completions for already-done units accepted at the current epoch.
    /// Exactly-once means this stays 0.
    pub duplicates: u64,
    /// Units whose retry budget ran out.
    pub exhausted: u64,
    /// `UnitStarted` reports fenced for carrying a stale epoch (the zombie
    /// daemon's post-failover binds land here — counted, never applied).
    pub fenced_binds: u64,
    /// `UnitDone`/`UnitFailed`/heartbeat-capacity reports fenced for
    /// carrying a stale epoch.
    pub fenced_reports: u64,
    /// Retry attempts charged (kernel faults + manager crashes).
    pub retries_charged: u64,
    /// Free re-dispatches (unit had not started when its manager died).
    pub free_redispatches: u64,
    /// Daemons declared dead by heartbeat lapse.
    pub daemons_declared_dead: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LedgerState {
    /// Waiting at the controller for routing.
    Queued,
    /// Sent to a shard owner, not yet bound.
    Dispatched { shard: u32, epoch: u64 },
    /// Bound and executing on a pilot.
    Started { shard: u32, epoch: u64 },
    /// Completed exactly once.
    Done,
    /// Retry budget exhausted.
    Exhausted,
}

struct LedgerEntry {
    desc: UnitDescription,
    run_ticks: u64,
    state: LedgerState,
    /// Attempts charged against the retry budget (kernel faults + manager
    /// crashes while running).
    failures: u32,
    completed_tick: Option<u64>,
}

#[derive(Clone, Copy, Debug, Default)]
struct CapView {
    free_cores: u32,
    queued_units: u64,
}

/// The controller. Drive it with [`Controller::step`] once per tick, after
/// the daemons have stepped.
pub struct Controller {
    lapse_ticks: u64,
    tick_s: f64,
    default_retry: RetryPolicy,
    /// Current owner per shard: `(daemon, epoch)`, `None` when orphaned
    /// (every daemon dead).
    owners: Vec<Option<(usize, u64)>>,
    /// Highest epoch ever issued per shard (epochs never regress, even
    /// across orphan gaps).
    epochs: Vec<u64>,
    /// Pilot set per shard, fixed at bootstrap.
    shard_pilots: Vec<Vec<(PilotId, u32)>>,
    cap_view: Vec<CapView>,
    alive: Vec<bool>,
    last_hb: Vec<u64>,
    ledger: HashMap<UnitId, LedgerEntry>,
    /// Deterministic iteration order for the ledger.
    unit_order: Vec<UnitId>,
    /// Units waiting to be routed, FIFO.
    route_queue: Vec<UnitId>,
    /// Backoff timers: `(due_tick, unit)` min-heap.
    retry_at: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    rng: SimRng,
    /// Assignment log, append-only.
    pub assignment_log: Vec<ShardAssignment>,
    /// Rebalance events, in declaration order.
    pub rebalances: Vec<RebalanceEvent>,
    /// `(shard, epoch)` pairs created by rebalance `i`, watched for the
    /// first post-failover bind.
    rebalance_watch: HashMap<(u32, u64), usize>,
    /// Counters.
    pub stats: ControllerStats,
    /// Read-plane event ledger: every ledger transition, in order, with
    /// virtual timestamps (`tick * tick_s`). The fabric is a deterministic
    /// module, so it cannot talk to a broker sink directly — the driver
    /// publishes this ledger after the run (`FabricReport::events`,
    /// `pilot_query::publish_events`), keeping replay determinism intact.
    pub events: Vec<ProjEvent>,
    next_unit: u64,
}

impl Controller {
    /// A controller for `config`, with shards unassigned until
    /// [`Controller::bootstrap`].
    pub fn new(config: &FabricConfig) -> Controller {
        let shards = config.n_shards as usize;
        let mut shard_pilots = Vec::with_capacity(shards);
        for s in 0..config.n_shards {
            let pilots: Vec<(PilotId, u32)> = (0..config.pilots_per_shard)
                .map(|j| {
                    (
                        PilotId((u64::from(s) << 32) | u64::from(j)),
                        config.cores_per_pilot,
                    )
                })
                .collect();
            shard_pilots.push(pilots);
        }
        Controller {
            lapse_ticks: config.lapse_ticks,
            tick_s: config.tick_s,
            default_retry: config.retry,
            owners: vec![None; shards],
            epochs: vec![0; shards],
            shard_pilots,
            cap_view: vec![CapView::default(); shards],
            alive: vec![true; config.n_daemons],
            last_hb: vec![0; config.n_daemons],
            ledger: HashMap::new(),
            unit_order: Vec::new(),
            route_queue: Vec::new(),
            retry_at: BinaryHeap::new(),
            rng: SimRng::new(config.seed),
            assignment_log: Vec::new(),
            rebalances: Vec::new(),
            rebalance_watch: HashMap::new(),
            stats: ControllerStats::default(),
            events: Vec::new(),
            next_unit: 0,
        }
    }

    /// Virtual time of `tick` in the read-plane event timebase.
    fn t_s(&self, tick: u64) -> f64 {
        tick as f64 * self.tick_s
    }

    /// Register a unit for routing. Returns its id.
    pub fn submit(&mut self, desc: UnitDescription, run_ticks: u64) -> UnitId {
        let id = UnitId(self.next_unit);
        self.next_unit += 1;
        self.ledger.insert(
            id,
            LedgerEntry {
                desc,
                run_ticks,
                state: LedgerState::Queued,
                failures: 0,
                completed_tick: None,
            },
        );
        self.unit_order.push(id);
        self.route_queue.push(id);
        // Submission happens before the tick loop starts: virtual time 0.
        self.events.push(ProjEvent::Unit {
            unit: id,
            state: UnitState::Pending,
            pilot: None,
            t_s: 0.0,
        });
        id
    }

    /// Assign every shard round-robin across the daemons at epoch 1 and
    /// announce the assignments. Call once, before the first tick.
    pub fn bootstrap(&mut self, to_daemons: &[Sender<ToDaemon>]) {
        for shard in 0..self.owners.len() {
            let daemon = shard % to_daemons.len();
            self.install_owner(shard as u32, daemon, 0, to_daemons);
        }
    }

    fn install_owner(
        &mut self,
        shard: u32,
        daemon: usize,
        tick: u64,
        to_daemons: &[Sender<ToDaemon>],
    ) {
        let s = shard as usize;
        self.epochs[s] += 1;
        let epoch = self.epochs[s];
        self.owners[s] = Some((daemon, epoch));
        // Fresh owner restarts the shard's pilots at full capacity with an
        // empty queue; the ledger re-drives whatever was in flight.
        self.cap_view[s] = CapView {
            free_cores: self.shard_pilots[s].iter().map(|&(_, c)| c).sum(),
            queued_units: 0,
        };
        self.assignment_log.push(ShardAssignment {
            shard,
            epoch,
            daemon,
            tick,
        });
        if let Some(tx) = to_daemons.get(daemon) {
            let _ = tx.send(ToDaemon::AssignShard {
                shard,
                epoch,
                pilots: self.shard_pilots[s].clone(),
            });
        }
    }

    /// Whether every submitted unit reached a terminal state.
    pub fn done(&self) -> bool {
        self.stats.completed + self.stats.exhausted == self.next_unit
    }

    /// Units neither completed nor exhausted (non-zero only when the run hit
    /// its tick budget or every daemon died).
    pub fn lost(&self) -> u64 {
        self.next_unit - self.stats.completed - self.stats.exhausted
    }

    /// Highest assignment epoch issued across all shards.
    pub fn max_epoch(&self) -> u64 {
        self.epochs.iter().copied().max().unwrap_or(0)
    }

    /// One controller turn: drain the inbox, detect lapses and rebalance,
    /// release due retries, route queued units.
    pub fn step(
        &mut self,
        tick: u64,
        inbox: &Receiver<ToController>,
        to_daemons: &[Sender<ToDaemon>],
    ) {
        self.drain_inbox(tick, inbox);
        self.detect_lapses(tick, to_daemons);
        self.release_retries(tick);
        self.route_queued(tick, to_daemons);
    }

    fn drain_inbox(&mut self, _tick: u64, inbox: &Receiver<ToController>) {
        while let Ok(msg) = inbox.try_recv() {
            match msg {
                ToController::Heartbeat {
                    daemon,
                    tick,
                    shards,
                } => {
                    if !self.alive.get(daemon).copied().unwrap_or(false) {
                        // A declared-dead daemon never rejoins in this PR;
                        // its late heartbeats are fenced like any stale
                        // report.
                        self.stats.fenced_reports += 1;
                        continue;
                    }
                    if let Some(hb) = self.last_hb.get_mut(daemon) {
                        *hb = tick;
                    }
                    for sc in shards {
                        let s = sc.shard as usize;
                        if self.owners.get(s).copied().flatten() == Some((daemon, sc.epoch)) {
                            self.cap_view[s] = CapView {
                                free_cores: sc.free_cores,
                                queued_units: sc.queued_units,
                            };
                        } else {
                            self.stats.fenced_reports += 1;
                        }
                    }
                }
                ToController::UnitStarted {
                    daemon,
                    shard,
                    epoch,
                    unit,
                    pilot,
                    tick,
                } => {
                    let current =
                        self.owners.get(shard as usize).copied().flatten() == Some((daemon, epoch));
                    if !current {
                        self.stats.fenced_binds += 1;
                        continue;
                    }
                    if let Some(watch) = self.rebalance_watch.get(&(shard, epoch)).copied() {
                        if let Some(ev) = self.rebalances.get_mut(watch) {
                            if ev.first_bind_new_epoch_tick.is_none() {
                                ev.first_bind_new_epoch_tick = Some(tick);
                            }
                        }
                    }
                    if let Some(e) = self.ledger.get_mut(&unit) {
                        if e.state == (LedgerState::Dispatched { shard, epoch }) {
                            e.state = LedgerState::Started { shard, epoch };
                            let cores = e.desc.cores;
                            let view = &mut self.cap_view[shard as usize];
                            view.free_cores = view.free_cores.saturating_sub(cores);
                            view.queued_units = view.queued_units.saturating_sub(1);
                            self.events.push(ProjEvent::Unit {
                                unit,
                                state: UnitState::Running,
                                pilot: Some(pilot),
                                t_s: tick as f64 * self.tick_s,
                            });
                        }
                    }
                }
                ToController::UnitDone {
                    daemon,
                    shard,
                    epoch,
                    unit,
                    tick,
                } => {
                    let current =
                        self.owners.get(shard as usize).copied().flatten() == Some((daemon, epoch));
                    if !current {
                        self.stats.fenced_reports += 1;
                        continue;
                    }
                    if let Some(e) = self.ledger.get_mut(&unit) {
                        match e.state {
                            LedgerState::Done => self.stats.duplicates += 1,
                            LedgerState::Exhausted => self.stats.duplicates += 1,
                            _ => {
                                e.state = LedgerState::Done;
                                e.completed_tick = Some(tick);
                                self.stats.completed += 1;
                                let view = &mut self.cap_view[shard as usize];
                                view.free_cores += e.desc.cores;
                                let t_s = tick as f64 * self.tick_s;
                                self.events.push(ProjEvent::Unit {
                                    unit,
                                    state: UnitState::Done,
                                    pilot: None,
                                    t_s,
                                });
                                self.events.push(ProjEvent::UnitMetric {
                                    unit,
                                    wait_s: 0.0,
                                    exec_s: e.run_ticks as f64 * self.tick_s,
                                    t_s,
                                });
                            }
                        }
                    }
                }
                ToController::UnitFailed {
                    daemon,
                    shard,
                    epoch,
                    unit,
                    tick,
                } => {
                    let current =
                        self.owners.get(shard as usize).copied().flatten() == Some((daemon, epoch));
                    if !current {
                        self.stats.fenced_reports += 1;
                        continue;
                    }
                    if let Some(view) = self.cap_view.get_mut(shard as usize) {
                        if let Some(e) = self.ledger.get(&unit) {
                            view.free_cores += e.desc.cores;
                        }
                    }
                    self.charge_failure(tick, unit);
                }
            }
        }
    }

    /// Charge one retry attempt to `unit`; either schedule the retry after
    /// backoff or mark the unit exhausted.
    fn charge_failure(&mut self, tick: u64, unit: UnitId) {
        let Some(e) = self.ledger.get_mut(&unit) else {
            return;
        };
        if matches!(e.state, LedgerState::Done | LedgerState::Exhausted) {
            return;
        }
        e.failures += 1;
        self.stats.retries_charged += 1;
        let t_s = tick as f64 * self.tick_s;
        self.events.push(ProjEvent::Unit {
            unit,
            state: UnitState::Failed,
            pilot: None,
            t_s,
        });
        let policy = effective_retry(&e.desc, &self.default_retry);
        if policy.allows_retry(e.failures) {
            let mut jitter =
                self.rng
                    .stream(streams::keyed(streams::BACKOFF_JITTER, unit.0, e.failures));
            let delay_s = policy.delay_s(e.failures, &mut jitter);
            let ticks = ((delay_s / self.tick_s).ceil() as u64).max(1);
            e.state = LedgerState::Queued;
            self.retry_at
                .push(std::cmp::Reverse((tick.saturating_add(ticks), unit.0)));
            // Retry granted: the unit conceptually re-enters the queue.
            self.events.push(ProjEvent::Unit {
                unit,
                state: UnitState::Pending,
                pilot: None,
                t_s,
            });
        } else {
            e.state = LedgerState::Exhausted;
            self.stats.exhausted += 1;
        }
    }

    fn detect_lapses(&mut self, tick: u64, to_daemons: &[Sender<ToDaemon>]) {
        for daemon in 0..self.alive.len() {
            if !self.alive[daemon] || tick.saturating_sub(self.last_hb[daemon]) <= self.lapse_ticks
            {
                continue;
            }
            self.alive[daemon] = false;
            self.stats.daemons_declared_dead += 1;
            let last_heartbeat_tick = self.last_hb[daemon];
            // Move every shard the dead daemon owned to the live daemon with
            // the fewest shards (ties: lowest index).
            let moved: Vec<u32> = (0..self.owners.len() as u32)
                .filter(|&s| matches!(self.owners[s as usize], Some((d, _)) if d == daemon))
                .collect();
            let mut event = RebalanceEvent {
                daemon,
                last_heartbeat_tick,
                declared_tick: tick,
                shards_moved: 0,
                units_requeued: 0,
                units_redispatched: 0,
                first_bind_new_epoch_tick: None,
            };
            let event_ix = self.rebalances.len();
            for &shard in &moved {
                match self.pick_owner() {
                    Some(new_owner) => {
                        self.install_owner(shard, new_owner, tick, to_daemons);
                        event.shards_moved += 1;
                        self.rebalance_watch
                            .insert((shard, self.epochs[shard as usize]), event_ix);
                    }
                    None => {
                        // Every daemon is dead: orphan the shard. Units stay
                        // queued; the run ends with them counted as lost.
                        self.owners[shard as usize] = None;
                        self.cap_view[shard as usize] = CapView::default();
                    }
                }
            }
            // Re-drive in-flight units on the moved shards: RB-1 extended to
            // manager crashes. Iterate in submission order — HashMap order
            // is nondeterministic and replays must charge identically.
            let order = self.unit_order.clone();
            for unit in order {
                let Some(e) = self.ledger.get_mut(&unit) else {
                    continue;
                };
                match e.state {
                    LedgerState::Dispatched { shard, .. } if moved.contains(&shard) => {
                        // Never bound: free re-route, no attempt charged.
                        e.state = LedgerState::Queued;
                        self.route_queue.push(unit);
                        self.stats.free_redispatches += 1;
                        event.units_redispatched += 1;
                        self.events.push(ProjEvent::Unit {
                            unit,
                            state: UnitState::Pending,
                            pilot: None,
                            t_s: tick as f64 * self.tick_s,
                        });
                    }
                    LedgerState::Started { shard, .. } if moved.contains(&shard) => {
                        // Was executing when its manager died: the attempt
                        // is lost, retry budget applies.
                        self.charge_failure(tick, unit);
                        event.units_requeued += 1;
                    }
                    _ => {}
                }
            }
            self.rebalances.push(event);
        }
    }

    fn release_retries(&mut self, tick: u64) {
        while let Some(&std::cmp::Reverse((due, uid))) = self.retry_at.peek() {
            if due > tick {
                break;
            }
            self.retry_at.pop();
            let unit = UnitId(uid);
            if matches!(
                self.ledger.get(&unit).map(|e| e.state),
                Some(LedgerState::Queued)
            ) {
                self.route_queue.push(unit);
            }
        }
    }

    fn route_queued(&mut self, tick: u64, to_daemons: &[Sender<ToDaemon>]) {
        if self.route_queue.is_empty() {
            return;
        }
        let queue = std::mem::take(&mut self.route_queue);
        for unit in queue {
            let Some(e) = self.ledger.get(&unit) else {
                continue;
            };
            if e.state != LedgerState::Queued {
                continue;
            }
            // Aggregate capacity view: pick the live shard with the most
            // spare room after its queue drains (ties: lowest shard id).
            let mut best: Option<(i64, u32, usize, u64)> = None;
            for s in 0..self.owners.len() {
                let Some((daemon, epoch)) = self.owners[s] else {
                    continue;
                };
                if !self.alive.get(daemon).copied().unwrap_or(false) {
                    continue;
                }
                let view = self.cap_view[s];
                let score = i64::from(view.free_cores)
                    - view.queued_units as i64 * i64::from(e.desc.cores.max(1));
                if best.map(|(b, ..)| score > b).unwrap_or(true) {
                    best = Some((score, s as u32, daemon, epoch));
                }
            }
            let Some((_, shard, daemon, epoch)) = best else {
                // No live owner anywhere: put the unit back and stop; a
                // later rebalance (or the end of the run) resolves it.
                self.route_queue.push(unit);
                continue;
            };
            let (desc, run_ticks, failures) = {
                let Some(e) = self.ledger.get_mut(&unit) else {
                    continue;
                };
                e.state = LedgerState::Dispatched { shard, epoch };
                (e.desc.clone(), e.run_ticks, e.failures)
            };
            // Dispatched maps to `Assigned` in the P* machine; the concrete
            // pilot is chosen by the shard owner's local binding pass.
            self.events.push(ProjEvent::Unit {
                unit,
                state: UnitState::Assigned,
                pilot: None,
                t_s: self.t_s(tick),
            });
            self.cap_view[shard as usize].queued_units += 1;
            if let Some(tx) = to_daemons.get(daemon) {
                let _ = tx.send(ToDaemon::Dispatch {
                    shard,
                    epoch,
                    unit: FabricUnit {
                        id: unit,
                        desc,
                        run_ticks,
                        attempt: failures,
                    },
                });
            }
        }
    }
}

/// The unit's own policy when it carries a real retry budget; the fabric
/// default when it is the fail-fast default (`max_attempts == 1`).
fn effective_retry<'a>(desc: &'a UnitDescription, default: &'a RetryPolicy) -> &'a RetryPolicy {
    if desc.retry.max_attempts > 1 {
        &desc.retry
    } else {
        default
    }
}

impl Controller {
    /// Pick the live daemon owning the fewest shards (ties: lowest index).
    fn pick_owner(&self) -> Option<usize> {
        let mut counts = vec![0usize; self.alive.len()];
        for owner in self.owners.iter().flatten() {
            if let Some(c) = counts.get_mut(owner.0) {
                *c += 1;
            }
        }
        (0..self.alive.len())
            .filter(|&d| self.alive[d])
            .min_by_key(|&d| (counts[d], d))
    }
}
