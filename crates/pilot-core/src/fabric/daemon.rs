//! A host daemon: runs a shard (or several) of pilots and units behind the
//! node abstraction, late-binding locally with the shared
//! [`crate::binding::queue_pass`] and reporting everything it does to the
//! controller tagged with the `(shard, epoch)` it believes it owns.
//!
//! The daemon is deliberately trusting: it never learns it has been deposed
//! (a real partitioned process wouldn't either). Fencing happens entirely at
//! the controller, which is what makes the [`KillMode::Stall`] zombie safe —
//! the stalled daemon keeps binding and completing units, and every one of
//! those reports arrives with a stale epoch and is counted, never applied.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use std::collections::{BTreeMap, HashMap};

use crossbeam::channel::{Receiver, Sender};
use pilot_infra::types::SiteId;
use pilot_sim::SimRng;

use crate::binding::{self, BindStats, PendingQueue};
use crate::ids::{PilotId, UnitId};
use crate::retry::streams;
use crate::scheduler::{PilotSnapshot, Scheduler};

use super::transport::{ShardCapacity, ToController, ToDaemon};
use super::{FabricConfig, FabricUnit};

/// How a daemon dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillMode {
    /// Hard halt: the daemon stops processing entirely — no receives, no
    /// work, no sends. Models a machine loss.
    Crash,
    /// Zombie: the daemon stops receiving and stops heartbeating but keeps
    /// executing what it already has and keeps reporting. Models an
    /// asymmetric partition / wedged heartbeat thread; exercises the
    /// controller's epoch fence.
    Stall,
}

struct PilotRt {
    id: PilotId,
    total: u32,
    free: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UnitPhase {
    Pending,
    Running { done_tick: u64 },
}

struct UnitRt {
    unit: FabricUnit,
    phase: UnitPhase,
    pilot: Option<PilotId>,
}

struct ShardRt {
    epoch: u64,
    pilots: Vec<PilotRt>,
    pending: PendingQueue,
    units: HashMap<UnitId, UnitRt>,
    scheduler: Box<dyn Scheduler>,
}

/// One host daemon. Drive it with [`HostDaemon::step`] once per tick,
/// before the controller.
pub struct HostDaemon {
    index: usize,
    heartbeat_every: u64,
    unit_failure_p: f64,
    scheduler_factory: fn() -> Box<dyn Scheduler>,
    shards: BTreeMap<u32, ShardRt>,
    kill: Option<KillMode>,
    rng: SimRng,
    /// Late-binding counters for this daemon's shards.
    pub bind_stats: BindStats,
}

impl HostDaemon {
    /// Daemon `index` configured from `config`.
    pub fn new(index: usize, config: &FabricConfig) -> HostDaemon {
        HostDaemon {
            index,
            heartbeat_every: config.heartbeat_every.max(1),
            unit_failure_p: config.faults.unit_failure_p,
            scheduler_factory: config.scheduler,
            shards: BTreeMap::new(),
            kill: None,
            rng: SimRng::new(config.seed),
            bind_stats: BindStats::default(),
        }
    }

    /// Inject a kill. `Crash` halts the daemon; `Stall` turns it into a
    /// zombie that keeps working without heartbeats.
    pub fn kill(&mut self, mode: KillMode) {
        // A stall does not resurrect a crashed daemon (and vice versa the
        // harder mode wins).
        if self.kill != Some(KillMode::Crash) {
            self.kill = Some(mode);
        }
    }

    /// Whether a kill has been injected.
    pub fn killed(&self) -> Option<KillMode> {
        self.kill
    }

    /// One daemon turn: receive (unless killed), finish due units, run one
    /// late-binding pass per shard, heartbeat (unless killed).
    pub fn step(&mut self, tick: u64, inbox: &Receiver<ToDaemon>, out: &Sender<ToController>) {
        if self.kill == Some(KillMode::Crash) {
            return;
        }
        if self.kill.is_none() {
            self.drain_inbox(inbox);
        }
        self.finish_due(tick, out);
        self.bind_pass(tick, out);
        if self.kill.is_none() && tick.is_multiple_of(self.heartbeat_every) {
            let shards: Vec<ShardCapacity> = self
                .shards
                .iter()
                .map(|(&shard, s)| ShardCapacity {
                    shard,
                    epoch: s.epoch,
                    free_cores: s.pilots.iter().map(|p| p.free).sum(),
                    queued_units: s
                        .units
                        .values()
                        .filter(|u| u.phase == UnitPhase::Pending)
                        .count() as u64,
                })
                .collect();
            let _ = out.send(ToController::Heartbeat {
                daemon: self.index,
                tick,
                shards,
            });
        }
    }

    fn drain_inbox(&mut self, inbox: &Receiver<ToDaemon>) {
        while let Ok(msg) = inbox.try_recv() {
            match msg {
                ToDaemon::AssignShard {
                    shard,
                    epoch,
                    pilots,
                } => {
                    // Epochs only move forward; an older assignment for a
                    // shard we already run at a newer epoch is dropped.
                    if self.shards.get(&shard).map(|s| s.epoch >= epoch) == Some(true) {
                        continue;
                    }
                    let rt = ShardRt {
                        epoch,
                        pilots: pilots
                            .iter()
                            .map(|&(id, cores)| PilotRt {
                                id,
                                total: cores,
                                free: cores,
                            })
                            .collect(),
                        pending: PendingQueue::default(),
                        units: HashMap::new(),
                        scheduler: (self.scheduler_factory)(),
                    };
                    self.shards.insert(shard, rt);
                }
                ToDaemon::Dispatch { shard, epoch, unit } => {
                    let Some(s) = self.shards.get_mut(&shard) else {
                        continue;
                    };
                    if s.epoch != epoch {
                        continue;
                    }
                    let (id, priority) = (unit.id, unit.desc.priority);
                    s.units.insert(
                        id,
                        UnitRt {
                            unit,
                            phase: UnitPhase::Pending,
                            pilot: None,
                        },
                    );
                    s.pending.push(id, priority);
                }
            }
        }
    }

    fn finish_due(&mut self, tick: u64, out: &Sender<ToController>) {
        let daemon = self.index;
        let p_fail = self.unit_failure_p;
        for (&shard, s) in self.shards.iter_mut() {
            // Collect due units sorted by id: HashMap order is
            // nondeterministic and the report stream must replay.
            let mut due: Vec<UnitId> = s
                .units
                .iter()
                .filter(|(_, u)| matches!(u.phase, UnitPhase::Running { done_tick } if done_tick <= tick))
                .map(|(&id, _)| id)
                .collect();
            due.sort_by_key(|u| u.0);
            for id in due {
                let Some(u) = s.units.remove(&id) else {
                    continue;
                };
                if let Some(pid) = u.pilot {
                    if let Some(p) = s.pilots.iter_mut().find(|p| p.id == pid) {
                        p.free = (p.free + u.unit.desc.cores).min(p.total);
                    }
                }
                // The fault draw is keyed by (unit, attempt), so whichever
                // daemon runs a given attempt draws the same outcome —
                // rebalances don't perturb the fault sequence.
                let failed = p_fail > 0.0
                    && self
                        .rng
                        .stream(streams::keyed(streams::UNIT_FAULT, id.0, u.unit.attempt))
                        .bool(p_fail);
                let msg = if failed {
                    ToController::UnitFailed {
                        daemon,
                        shard,
                        epoch: s.epoch,
                        unit: id,
                        tick,
                    }
                } else {
                    ToController::UnitDone {
                        daemon,
                        shard,
                        epoch: s.epoch,
                        unit: id,
                        tick,
                    }
                };
                let _ = out.send(msg);
            }
        }
    }

    fn bind_pass(&mut self, tick: u64, out: &Sender<ToController>) {
        let daemon = self.index;
        for (&shard, s) in self.shards.iter_mut() {
            if s.pending.is_empty() || s.pilots.is_empty() {
                continue;
            }
            // Snapshots sorted by pilot id (construction order) — the
            // deterministic-order contract queue_pass requires.
            let mut snapshots: Vec<PilotSnapshot> = s
                .pilots
                .iter()
                .map(|p| PilotSnapshot {
                    pilot: p.id,
                    site: SiteId(shard as u16),
                    total_cores: p.total,
                    free_cores: p.free,
                    bound_units: 0,
                    remaining_walltime_s: f64::INFINITY,
                })
                .collect();
            let units = &s.units;
            let outcome = binding::queue_pass(
                s.scheduler.as_mut(),
                &mut snapshots,
                &mut s.pending,
                |uid| {
                    units
                        .get(&uid)
                        .filter(|u| u.phase == UnitPhase::Pending)
                        .map(|u| &u.unit.desc)
                },
            );
            self.bind_stats
                .note_pass(snapshots.len(), outcome.offered, outcome.binds.len() as u64);
            for (uid, pid) in outcome.binds {
                let Some(u) = s.units.get_mut(&uid) else {
                    continue;
                };
                let run = u.unit.run_ticks.max(1);
                u.phase = UnitPhase::Running {
                    done_tick: tick + run,
                };
                u.pilot = Some(pid);
                if let Some(p) = s.pilots.iter_mut().find(|p| p.id == pid) {
                    p.free = p.free.saturating_sub(u.unit.desc.cores);
                }
                let _ = out.send(ToController::UnitStarted {
                    daemon,
                    shard,
                    epoch: s.epoch,
                    unit: uid,
                    pilot: pid,
                    tick,
                });
            }
        }
    }
}
