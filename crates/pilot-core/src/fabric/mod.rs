//! Control-plane fabric: a sharded controller / host-daemon split.
//!
//! Both execution backends run a single pilot-manager in one process — the
//! whole system dies with it and the scheduler caps out at one machine. The
//! fabric is the distributed pilot-manager the P\* model calls for: a
//! [`Controller`] owning placement and epoch-fenced shard assignment, plus N
//! [`HostDaemon`]s each running a shard of pilots and units, exchanging
//! heartbeats over a channel-based [`transport`]. When a daemon's
//! heartbeats lapse the controller declares it dead, moves its shards under
//! a bumped assignment epoch, and re-drives in-flight units with RB-1
//! semantics extended to manager crashes; stale owners keep reporting and
//! every such report is fenced — counted, never applied.
//!
//! The whole fabric is stepped on logical ticks from a single thread
//! ([`Fabric::run`]): daemons in index order, then the controller. Daemon
//! kills come from the [`crate::retry::FaultPlan`]'s `host_daemon_mtbf_s`
//! through the reserved [`crate::retry::streams::DAEMON_KILL`] stream
//! ([`DaemonKillSchedule`]), or from an explicit [`ScheduledKill`] list —
//! either way replays kill the same daemons at the same ticks, exactly like
//! RB-2's broker kills.

// lint: deterministic — this module must stay replayable: no wall-clock reads

mod controller;
mod daemon;
pub mod transport;

pub use controller::{Controller, ControllerStats, RebalanceEvent, ShardAssignment};
pub use daemon::{HostDaemon, KillMode};
pub use transport::{ShardCapacity, ToController, ToDaemon};

use pilot_sim::SimRng;

use crate::binding::BindStats;
use crate::describe::UnitDescription;
use crate::ids::UnitId;
use crate::retry::{streams, FaultPlan, RetryPolicy};
use crate::scheduler::{FirstFitScheduler, Scheduler};

/// A unit as the fabric dispatches it: description plus the synthetic
/// execution model (ticks of pilot occupancy) and the attempt number this
/// dispatch represents (keys the deterministic fault draw).
#[derive(Clone, Debug)]
pub struct FabricUnit {
    /// Unit id (assigned by the controller at submission).
    pub id: UnitId,
    /// Cores, priority, retry policy.
    pub desc: UnitDescription,
    /// Ticks the unit occupies its cores once bound.
    pub run_ticks: u64,
    /// Zero-based attempt number (retry budget charged so far).
    pub attempt: u32,
}

/// A daemon kill injected at a fixed tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledKill {
    /// Tick the kill lands on.
    pub tick: u64,
    /// Victim daemon index.
    pub daemon: usize,
    /// Crash (hard halt) or Stall (zombie without heartbeats).
    pub mode: KillMode,
}

/// Deterministic daemon-kill times derived from a [`FaultPlan`], mirroring
/// the replicated broker's `KillSchedule`: daemon `i`'s kill tick is an
/// exponential draw with the plan's `host_daemon_mtbf_s` from the reserved
/// [`streams::DAEMON_KILL`] stream. Same plan, same seed, same kills.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DaemonKillSchedule {
    /// Kill tick per daemon (`None` = never killed).
    pub ticks: Vec<Option<u64>>,
}

impl DaemonKillSchedule {
    /// Draw the schedule for `daemons` daemons at `tick_s` seconds per tick.
    pub fn from_plan(plan: &FaultPlan, seed: u64, daemons: usize, tick_s: f64) -> Self {
        let ticks = (0..daemons)
            .map(|i| {
                plan.host_daemon_mtbf_s.map(|mtbf| {
                    let mut rng =
                        SimRng::new(seed).stream(streams::keyed(streams::DAEMON_KILL, i as u64, 0));
                    let t_s = rng.exponential(mtbf);
                    ((t_s / tick_s).ceil() as u64).max(1)
                })
            })
            .collect();
        DaemonKillSchedule { ticks }
    }

    /// The schedule as explicit kills, all using `mode`.
    pub fn scheduled(&self, mode: KillMode) -> Vec<ScheduledKill> {
        self.ticks
            .iter()
            .enumerate()
            .filter_map(|(daemon, t)| t.map(|tick| ScheduledKill { tick, daemon, mode }))
            .collect()
    }
}

/// Fabric topology and policy knobs.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Host daemons (simulated nodes running shards).
    pub n_daemons: usize,
    /// Shards, assigned round-robin at bootstrap.
    pub n_shards: u32,
    /// Pilots per shard.
    pub pilots_per_shard: u32,
    /// Cores per pilot.
    pub cores_per_pilot: u32,
    /// Seconds of virtual time per tick (converts retry backoff to ticks).
    pub tick_s: f64,
    /// Daemons heartbeat every this many ticks.
    pub heartbeat_every: u64,
    /// Heartbeat silence beyond this many ticks declares a daemon dead.
    pub lapse_ticks: u64,
    /// Hard stop for the tick loop.
    pub max_ticks: u64,
    /// Run seed: drives kill schedules, fault draws and backoff jitter.
    pub seed: u64,
    /// Injected faults (unit failures, daemon kills).
    pub faults: FaultPlan,
    /// Retry budget for units whose description carries none.
    pub retry: RetryPolicy,
    /// Per-shard scheduler factory.
    pub scheduler: fn() -> Box<dyn Scheduler>,
    /// Explicit kills, applied in addition to any plan-derived schedule.
    pub kills: Vec<ScheduledKill>,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            n_daemons: 4,
            n_shards: 8,
            pilots_per_shard: 4,
            cores_per_pilot: 8,
            tick_s: 0.01,
            heartbeat_every: 5,
            lapse_ticks: 15,
            max_ticks: 100_000,
            seed: 42,
            faults: FaultPlan::none(),
            retry: RetryPolicy::fixed(4, 0.05),
            scheduler: || Box::new(FirstFitScheduler),
            kills: Vec::new(),
        }
    }
}

/// What a fabric run produced.
#[derive(Clone, Debug)]
pub struct FabricReport {
    /// Ticks actually executed.
    pub ticks: u64,
    /// Units submitted.
    pub total_units: u64,
    /// Units completed (exactly-once count).
    pub completed: u64,
    /// Duplicate completions accepted — exactly-once means 0.
    pub duplicates: u64,
    /// Units that ran out of retry budget.
    pub exhausted: u64,
    /// Units in no terminal state when the run ended.
    pub lost: u64,
    /// Stale-epoch `UnitStarted` reports fenced (zombie post-failover
    /// binds).
    pub fenced_binds: u64,
    /// Other stale-epoch reports fenced.
    pub fenced_reports: u64,
    /// Retry attempts charged.
    pub retries_charged: u64,
    /// Free re-dispatches of not-yet-started units after a manager death.
    pub free_redispatches: u64,
    /// Daemons declared dead by heartbeat lapse.
    pub daemons_declared_dead: u64,
    /// Kills applied, as `(tick, daemon)`.
    pub kills_applied: Vec<(u64, usize)>,
    /// Kills skipped to keep at least one daemon alive.
    pub kills_skipped: u64,
    /// Rebalance events with latency breakdowns.
    pub rebalances: Vec<RebalanceEvent>,
    /// Append-only shard-assignment log.
    pub assignment_log: Vec<ShardAssignment>,
    /// Late-binding counters summed over all daemons (stale ones included).
    pub bind_stats: BindStats,
    /// Highest assignment epoch issued.
    pub max_epoch: u64,
    /// Read-plane event ledger (every ledger transition with virtual
    /// timestamps). The fabric itself is deterministic and never touches a
    /// broker; publish this after the run with one batched append
    /// (`pilot_query::publish_events`) to serve fabric dashboards from
    /// projections.
    pub events: Vec<crate::events::ProjEvent>,
}

impl FabricReport {
    /// 0 lost, 0 duplicated — the FB-1 acceptance predicate.
    pub fn exactly_once(&self) -> bool {
        self.lost == 0
            && self.duplicates == 0
            && self.completed + self.exhausted == self.total_units
    }

    /// Worst declared-to-first-bind rebalance latency in ticks (`None` when
    /// no rebalance completed a post-failover bind).
    pub fn max_rebalance_latency_ticks(&self) -> Option<u64> {
        self.rebalances
            .iter()
            .filter_map(|r| {
                r.first_bind_new_epoch_tick
                    .map(|t| t.saturating_sub(r.last_heartbeat_tick))
            })
            .max()
    }
}

/// The single-threaded deterministic driver: bootstraps the topology, steps
/// daemons then controller each tick, applies the kill schedule, and stops
/// when every unit is terminal (or `max_ticks` hits).
pub struct Fabric;

impl Fabric {
    /// Run `units` (description + run-ticks pairs) through the fabric
    /// described by `config`.
    pub fn run(config: &FabricConfig, units: Vec<(UnitDescription, u64)>) -> FabricReport {
        let links = transport::links(config.n_daemons);
        let mut controller = Controller::new(config);
        let mut daemons: Vec<HostDaemon> = (0..config.n_daemons)
            .map(|i| HostDaemon::new(i, config))
            .collect();
        let total_units = units.len() as u64;
        for (desc, run_ticks) in units {
            controller.submit(desc, run_ticks);
        }
        controller.bootstrap(&links.to_daemons);

        let mut kills = config.kills.clone();
        kills.extend(
            DaemonKillSchedule::from_plan(
                &config.faults,
                config.seed,
                config.n_daemons,
                config.tick_s,
            )
            .scheduled(KillMode::Crash),
        );
        kills.sort_by_key(|k| (k.tick, k.daemon));
        let mut kills_applied: Vec<(u64, usize)> = Vec::new();
        let mut kills_skipped = 0u64;
        let mut next_kill = 0usize;

        let mut ticks = 0;
        for tick in 0..config.max_ticks {
            ticks = tick + 1;
            while next_kill < kills.len() && kills[next_kill].tick <= tick {
                let k = kills[next_kill];
                next_kill += 1;
                let unkilled = daemons.iter().filter(|d| d.killed().is_none()).count();
                let fresh = daemons
                    .get(k.daemon)
                    .map(|d| d.killed().is_none())
                    .unwrap_or(false);
                // Keep at least one daemon standing so runs terminate; the
                // rebalance proptest relies on this survivor guarantee.
                if fresh && unkilled <= 1 {
                    kills_skipped += 1;
                    continue;
                }
                if let Some(d) = daemons.get_mut(k.daemon) {
                    if fresh {
                        kills_applied.push((tick, k.daemon));
                    }
                    d.kill(k.mode);
                }
            }
            for (i, d) in daemons.iter_mut().enumerate() {
                d.step(tick, &links.daemon_inboxes[i], &links.to_controller);
            }
            controller.step(tick, &links.controller_inbox, &links.to_daemons);
            if controller.done() {
                break;
            }
        }

        let mut bind_stats = BindStats::default();
        for d in &daemons {
            bind_stats.passes += d.bind_stats.passes;
            bind_stats.snapshot_builds += d.bind_stats.snapshot_builds;
            bind_stats.candidate_comparisons += d.bind_stats.candidate_comparisons;
            bind_stats.binds += d.bind_stats.binds;
            bind_stats.max_binds_per_pass = bind_stats
                .max_binds_per_pass
                .max(d.bind_stats.max_binds_per_pass);
        }
        let stats = controller.stats;
        FabricReport {
            ticks,
            total_units,
            completed: stats.completed,
            duplicates: stats.duplicates,
            exhausted: stats.exhausted,
            lost: controller.lost(),
            fenced_binds: stats.fenced_binds,
            fenced_reports: stats.fenced_reports,
            retries_charged: stats.retries_charged,
            free_redispatches: stats.free_redispatches,
            daemons_declared_dead: stats.daemons_declared_dead,
            kills_applied,
            kills_skipped,
            rebalances: controller.rebalances.clone(),
            assignment_log: controller.assignment_log.clone(),
            events: std::mem::take(&mut controller.events),
            bind_stats,
            max_epoch: controller.max_epoch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(n: u64, cores: u32, run_ticks: u64) -> Vec<(UnitDescription, u64)> {
        (0..n)
            .map(|_| (UnitDescription::new(cores), run_ticks))
            .collect()
    }

    #[test]
    fn healthy_fabric_completes_everything() {
        let config = FabricConfig::default();
        let report = Fabric::run(&config, units(200, 1, 5));
        assert!(report.exactly_once(), "{report:?}");
        assert_eq!(report.completed, 200);
        assert_eq!(report.exhausted, 0);
        assert_eq!(report.fenced_binds, 0);
        assert_eq!(report.daemons_declared_dead, 0);
        assert_eq!(report.max_epoch, 1, "no rebalance, no epoch bumps");
        assert_eq!(
            report.assignment_log.len(),
            config.n_shards as usize,
            "bootstrap assigns each shard once"
        );
        assert!(report.bind_stats.binds >= 200);
    }

    #[test]
    fn crash_kill_rebalances_and_completes_exactly_once() {
        let config = FabricConfig {
            kills: vec![ScheduledKill {
                tick: 10,
                daemon: 1,
                mode: KillMode::Crash,
            }],
            ..FabricConfig::default()
        };
        let report = Fabric::run(&config, units(400, 1, 8));
        assert!(report.exactly_once(), "{report:?}");
        assert_eq!(report.daemons_declared_dead, 1);
        assert_eq!(report.rebalances.len(), 1);
        let ev = report.rebalances[0];
        assert_eq!(ev.daemon, 1);
        assert_eq!(ev.shards_moved, 2, "daemon 1 owned 2 of 8 shards");
        assert!(ev.declared_tick > 10, "death declared after the kill");
        assert!(
            ev.first_bind_new_epoch_tick.is_some(),
            "work resumed under the bumped epoch"
        );
        assert!(report.max_epoch >= 2);
        // Epochs strictly increase per shard; (shard, epoch) never repeats.
        let mut seen = std::collections::HashSet::new();
        for a in &report.assignment_log {
            assert!(seen.insert((a.shard, a.epoch)), "duplicate (shard, epoch)");
        }
    }

    #[test]
    fn stalled_daemon_is_fenced_not_applied() {
        let config = FabricConfig {
            kills: vec![ScheduledKill {
                tick: 10,
                daemon: 0,
                mode: KillMode::Stall,
            }],
            ..FabricConfig::default()
        };
        // Long units: the zombie's work is still in flight when the lapse is
        // declared, so its completions and rebinds land post-failover with a
        // stale epoch.
        let report = Fabric::run(&config, units(400, 1, 30));
        assert!(report.exactly_once(), "{report:?}");
        assert_eq!(report.daemons_declared_dead, 1);
        assert!(
            report.fenced_binds + report.fenced_reports > 0,
            "the zombie kept reporting and every report was fenced: {report:?}"
        );
        assert_eq!(report.duplicates, 0, "fencing is what keeps exactly-once");
    }

    #[test]
    fn kill_schedule_is_deterministic_and_replayable() {
        let plan = FaultPlan::none().with_daemon_kills(30.0);
        let a = DaemonKillSchedule::from_plan(&plan, 7, 4, 0.01);
        let b = DaemonKillSchedule::from_plan(&plan, 7, 4, 0.01);
        assert_eq!(a, b, "same plan + seed = same kills");
        let c = DaemonKillSchedule::from_plan(&plan, 8, 4, 0.01);
        assert_ne!(a, c, "different seed moves the kills");
        let none = DaemonKillSchedule::from_plan(&FaultPlan::none(), 7, 4, 0.01);
        assert!(none.ticks.iter().all(Option::is_none));
    }

    #[test]
    fn fabric_replays_identically() {
        let config = FabricConfig {
            faults: FaultPlan::none()
                .with_unit_failures(0.05)
                .with_daemon_kills(2.0),
            ..FabricConfig::default()
        };
        let a = Fabric::run(&config, units(300, 1, 6));
        let b = Fabric::run(&config, units(300, 1, 6));
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "replay must be exact");
        assert!(a.exactly_once(), "{a:?}");
    }

    #[test]
    fn unit_faults_charge_retries_but_still_complete() {
        let config = FabricConfig {
            faults: FaultPlan::none().with_unit_failures(0.2),
            retry: RetryPolicy::fixed(6, 0.02),
            ..FabricConfig::default()
        };
        let report = Fabric::run(&config, units(300, 1, 4));
        assert!(report.retries_charged > 0, "20% fault rate must charge");
        assert!(report.exactly_once(), "{report:?}");
    }

    #[test]
    fn survivor_guarantee_skips_last_kill() {
        let config = FabricConfig {
            n_daemons: 2,
            kills: vec![
                ScheduledKill {
                    tick: 5,
                    daemon: 0,
                    mode: KillMode::Crash,
                },
                ScheduledKill {
                    tick: 6,
                    daemon: 1,
                    mode: KillMode::Crash,
                },
            ],
            ..FabricConfig::default()
        };
        let report = Fabric::run(&config, units(100, 1, 5));
        assert_eq!(report.kills_applied, vec![(5, 0)]);
        assert_eq!(report.kills_skipped, 1, "last daemon is never killed");
        assert!(report.exactly_once(), "{report:?}");
    }
}
