//! Descriptions: what the application asks for.
//!
//! A description is pure data — it can be logged, serialized, and replayed —
//! and is shared verbatim between the simulated and threaded backends.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use crate::retry::RetryPolicy;
use pilot_infra::types::SiteId;
use pilot_sim::SimDuration;

/// Request for a pilot (placeholder) on one resource.
#[derive(Clone, Debug)]
pub struct PilotDescription {
    /// Cores to acquire.
    pub cores: u32,
    /// Walltime to request.
    pub walltime: SimDuration,
    /// Simulated provisioning/startup latency for the threaded backend
    /// (ignored by the sim backend, where latency comes from the
    /// infrastructure model). Seconds.
    pub startup_delay_s: f64,
    /// Free-form label for reports.
    pub label: String,
}

impl PilotDescription {
    /// A pilot with the given size and walltime, no artificial startup delay.
    pub fn new(cores: u32, walltime: SimDuration) -> Self {
        PilotDescription {
            cores,
            walltime,
            startup_delay_s: 0.0,
            label: String::new(),
        }
    }

    /// Attach a label.
    pub fn labeled(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Set a synthetic startup delay (threaded backend only).
    pub fn with_startup_delay(mut self, seconds: f64) -> Self {
        self.startup_delay_s = seconds;
        self
    }
}

/// Where (replicas of) an input dataset live, and how big it is.
///
/// This is the minimal locality information the data-aware scheduler needs;
/// the full data-management layer lives in `pilot-data` and produces these
/// views.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataLocation {
    /// Dataset size in bytes.
    pub size_bytes: u64,
    /// Sites holding a replica.
    pub sites: Vec<SiteId>,
}

impl DataLocation {
    /// A dataset of `size_bytes` replicated at the given sites.
    pub fn new(size_bytes: u64, sites: Vec<SiteId>) -> Self {
        DataLocation { size_bytes, sites }
    }

    /// Whether a replica exists at `site`.
    pub fn is_local_to(&self, site: SiteId) -> bool {
        self.sites.contains(&site)
    }
}

/// Request for one compute unit.
#[derive(Clone, Debug, Default)]
pub struct UnitDescription {
    /// Cores the unit occupies while running.
    pub cores: u32,
    /// Input datasets (locality + staging cost).
    pub inputs: Vec<DataLocation>,
    /// Estimated duration in seconds, if the application knows it
    /// (enables walltime-aware backfill binding).
    pub est_duration_s: Option<f64>,
    /// Scheduling priority; higher binds earlier among pending units.
    pub priority: i32,
    /// Free-form tag for reports.
    pub tag: String,
    /// Retry budget and backoff on failure. Defaults to fail-fast.
    pub retry: RetryPolicy,
    /// Execution deadline in seconds after the kernel starts; on expiry the
    /// attempt fails (and retries per `retry`). `None` disables the deadline.
    pub deadline_s: Option<f64>,
}

impl UnitDescription {
    /// A `cores`-wide unit with no inputs.
    pub fn new(cores: u32) -> Self {
        UnitDescription {
            cores: cores.max(1),
            ..Default::default()
        }
    }

    /// Attach input data.
    pub fn with_inputs(mut self, inputs: Vec<DataLocation>) -> Self {
        self.inputs = inputs;
        self
    }

    /// Attach a duration estimate (seconds).
    pub fn with_estimate(mut self, seconds: f64) -> Self {
        self.est_duration_s = Some(seconds);
        self
    }

    /// Set the priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Attach a tag.
    pub fn tagged(mut self, tag: &str) -> Self {
        self.tag = tag.to_string();
        self
    }

    /// Attach a retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set an execution deadline (seconds after start).
    pub fn with_deadline(mut self, seconds: f64) -> Self {
        self.deadline_s = (seconds > 0.0).then_some(seconds);
        self
    }

    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.inputs.iter().map(|d| d.size_bytes).sum()
    }

    /// Input bytes *not* present at `site` (must be staged).
    pub fn remote_bytes(&self, site: SiteId) -> u64 {
        self.inputs
            .iter()
            .filter(|d| !d.is_local_to(site))
            .map(|d| d.size_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pilot_builder() {
        let p = PilotDescription::new(32, SimDuration::from_hours(2))
            .labeled("prod")
            .with_startup_delay(1.5);
        assert_eq!(p.cores, 32);
        assert_eq!(p.label, "prod");
        assert_eq!(p.startup_delay_s, 1.5);
    }

    #[test]
    fn unit_cores_floor_at_one() {
        assert_eq!(UnitDescription::new(0).cores, 1);
    }

    #[test]
    fn data_locality_math() {
        let a = DataLocation::new(100, vec![SiteId(0)]);
        let b = DataLocation::new(50, vec![SiteId(0), SiteId(1)]);
        let u = UnitDescription::new(1).with_inputs(vec![a, b]);
        assert_eq!(u.input_bytes(), 150);
        assert_eq!(u.remote_bytes(SiteId(0)), 0);
        assert_eq!(u.remote_bytes(SiteId(1)), 100);
        assert_eq!(u.remote_bytes(SiteId(2)), 150);
    }

    #[test]
    fn unit_builder_chain() {
        let u = UnitDescription::new(2)
            .with_estimate(3.5)
            .with_priority(7)
            .tagged("map");
        assert_eq!(u.est_duration_s, Some(3.5));
        assert_eq!(u.priority, 7);
        assert_eq!(u.tag, "map");
        assert_eq!(u.retry, RetryPolicy::none(), "default is fail-fast");
        assert_eq!(u.deadline_s, None);
    }

    #[test]
    fn unit_reliability_builders() {
        let u = UnitDescription::new(1)
            .with_retry(RetryPolicy::fixed(3, 0.5))
            .with_deadline(30.0);
        assert_eq!(u.retry.max_attempts, 3);
        assert_eq!(u.deadline_s, Some(30.0));
        assert_eq!(UnitDescription::new(1).with_deadline(0.0).deadline_s, None);
    }
}
