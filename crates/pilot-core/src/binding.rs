//! The batched late-binding pass shared by both execution backends.
//!
//! The unit manager re-matches pending compute units against pilot capacity
//! on every capacity change (the P\* late-binding contract). The original
//! pass rebuilt the full pilot-snapshot vector after *every single bind* and
//! removed bound units from a sorted `Vec` with `O(n)` `remove(i)`, which
//! made one capacity change cost `O(binds × (pilots + pending))` snapshot
//! work. This module provides the batched replacement:
//!
//! - snapshots are built **once per pass**; after each successful bind the
//!   capacity delta ([`apply_bind_delta`]) is applied to the in-memory
//!   snapshots instead of rebuilding,
//! - pending units live in a [`PendingQueue`] (binary heap ordered by
//!   priority, then FIFO by id) instead of a re-sorted `Vec`,
//! - [`BindStats`] counts passes, snapshot builds, candidate comparisons and
//!   binds, and is surfaced in both backends' reports.
//!
//! Schedulers stay pure decision functions over snapshots (the AB-1 ablation
//! contract): binding one unit only shrinks free capacity, so a unit the
//! scheduler refused earlier in a pass cannot become bindable later in the
//! same pass, and offering each pending unit exactly once per pass yields
//! placements identical to the rebuild-per-bind loop. [`per_unit_pass`] keeps
//! that original loop alive as the executable specification the equivalence
//! proptest and the `bind` bench baseline run against.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use crate::describe::UnitDescription;
use crate::ids::{PilotId, UnitId};
use crate::scheduler::{PilotSnapshot, Scheduler, UnitRequest};
use std::collections::BinaryHeap;

/// Counters for the late-binding hot path. One pass = one wakeup of the
/// binding loop with at least one pending unit and one visible pilot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use]
pub struct BindStats {
    /// Binding passes run.
    pub passes: u64,
    /// Pilot-snapshot vectors built. The batched pass builds exactly one per
    /// pass; the per-unit pass rebuilt once per bind (plus the initial one).
    pub snapshot_builds: u64,
    /// Unit×pilot candidates offered to the scheduler (each `select` call
    /// scans at most the full snapshot slice).
    pub candidate_comparisons: u64,
    /// Successful binds.
    pub binds: u64,
    /// Largest number of binds committed by a single pass.
    pub max_binds_per_pass: u64,
}

impl BindStats {
    /// Fold one finished pass into the totals.
    pub fn note_pass(&mut self, snapshot_len: usize, offered: u64, binds: u64) {
        self.passes += 1;
        self.snapshot_builds += 1;
        self.candidate_comparisons += offered * snapshot_len as u64;
        self.binds += binds;
        self.max_binds_per_pass = self.max_binds_per_pass.max(binds);
    }

    /// Mean binds per pass (0 when no pass ran).
    pub fn binds_per_pass(&self) -> f64 {
        if self.passes == 0 {
            0.0
        } else {
            self.binds as f64 / self.passes as f64
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PendEntry {
    priority: i32,
    id: UnitId,
}

impl Ord for PendEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then FIFO (smaller id first).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.id.0.cmp(&self.id.0))
    }
}

impl PartialOrd for PendEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of pending units: higher [`UnitDescription::priority`]
/// binds earlier, ties break FIFO by unit id. Replaces the re-sorted `Vec`
/// (`O(n log n)` per wakeup + `O(n)` `remove`) with `O(log n)` push/pop.
///
/// Entries are not removed on unit cancellation; callers skip stale entries
/// at pop time by checking the unit's live state (lazy deletion).
#[derive(Debug, Default)]
pub struct PendingQueue {
    heap: BinaryHeap<PendEntry>,
}

impl PendingQueue {
    /// Enqueue a unit at the given priority.
    pub fn push(&mut self, id: UnitId, priority: i32) {
        self.heap.push(PendEntry { priority, id });
    }

    /// Highest-priority unit, or `None` when empty. May return units that
    /// have since left the pending state — callers must validate.
    pub fn pop(&mut self) -> Option<UnitId> {
        self.heap.pop().map(|e| e.id)
    }

    /// Entries in the queue (including stale ones awaiting lazy deletion).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain every entry in priority order.
    pub fn drain(&mut self) -> Vec<UnitId> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push(e.id);
        }
        out
    }
}

/// Decrement a pilot's snapshot capacity after a successful bind, in place of
/// a full snapshot rebuild. Panics if the scheduler returned a pilot that is
/// not in the snapshot set or lacks the cores (the manager's over-commit
/// guard).
pub fn apply_bind_delta(snapshots: &mut [PilotSnapshot], pilot: PilotId, cores: u32) {
    let p = snapshots
        .iter_mut()
        .find(|p| p.pilot == pilot)
        // lint: allow(panic, reason = "documented contract: a scheduler naming a pilot outside its snapshot set is a scheduler bug, exercised by a should_panic test")
        .expect("scheduler returned a pilot outside the snapshot set");
    assert!(
        p.free_cores >= cores,
        "scheduler over-committed pilot {pilot}"
    );
    p.free_cores -= cores;
    p.bound_units += 1;
}

/// What one [`queue_pass`] decided: the committed placements (in bind
/// order) plus how many live units were offered to the scheduler. The caller
/// folds this into [`BindStats`] via [`BindStats::note_pass`] and then
/// commits each bind against its own runtime tables.
#[derive(Debug, Default)]
#[must_use]
pub struct QueuePassOutcome {
    /// `(unit, pilot)` placements the scheduler committed, in bind order.
    pub binds: Vec<(UnitId, PilotId)>,
    /// Live pending units offered to the scheduler (stale entries skipped by
    /// lazy deletion are not counted).
    pub offered: u64,
}

/// The queue-driven batched pass shared by the thread backend, the sim
/// backend, and the fabric host daemons: pop every [`PendingQueue`] entry,
/// skip stale ones (lazy deletion — `lookup` returns `None` for units that
/// have left `Pending`), offer live units to the scheduler in priority
/// order, apply capacity deltas to `snapshots` in place after each bind, and
/// re-queue refused units for the next pass.
///
/// The caller must hand in a non-empty, deterministically ordered snapshot
/// vector (both backends sort by pilot id) and commit the returned binds
/// against its own unit/pilot tables afterwards; commits are deferred so the
/// borrow of the unit table inside `lookup` stays shared. A unit that
/// somehow has two live queue entries is offered only once per pass (the
/// second entry is treated as stale).
pub fn queue_pass<'u>(
    scheduler: &mut dyn Scheduler,
    snapshots: &mut [PilotSnapshot],
    pending: &mut PendingQueue,
    mut lookup: impl FnMut(UnitId) -> Option<&'u UnitDescription>,
) -> QueuePassOutcome {
    scheduler.begin_pass();
    let mut out = QueuePassOutcome::default();
    let mut refused: Vec<(UnitId, i32)> = Vec::new();
    while let Some(uid) = pending.pop() {
        // Lazy deletion: `lookup` returns `None` for entries whose unit has
        // left `Pending` (canceled, bound through a retry race, vanished).
        let Some(desc) = lookup(uid) else {
            continue;
        };
        // Deferred commits mean `lookup` cannot observe binds made earlier
        // in this pass; a duplicate queue entry must be skipped here.
        if out.binds.iter().any(|&(b, _)| b == uid) {
            continue;
        }
        out.offered += 1;
        let req = UnitRequest { unit: uid, desc };
        match scheduler.select(&req, snapshots) {
            Some(pid) => {
                apply_bind_delta(snapshots, pid, desc.cores);
                out.binds.push((uid, pid));
            }
            None => refused.push((uid, desc.priority)),
        }
    }
    for (uid, priority) in refused {
        pending.push(uid, priority);
    }
    out
}

/// A pending unit in pure-pass form (tests, benches, experiments).
#[derive(Clone, Debug)]
pub struct PendingUnit {
    /// Which unit.
    pub unit: UnitId,
    /// Its description.
    pub desc: UnitDescription,
}

fn sorted_by_priority(pending: &[PendingUnit]) -> Vec<&PendingUnit> {
    let mut order: Vec<&PendingUnit> = pending.iter().collect();
    order.sort_by_key(|u| (std::cmp::Reverse(u.desc.priority), u.unit.0));
    order
}

/// The original rebuild-per-bind pass, retained as the executable
/// specification: scan pending units in priority order, bind the first one
/// the scheduler accepts, rebuild every pilot snapshot, restart the scan.
/// Returns the committed `(unit, pilot)` placements in bind order.
pub fn per_unit_pass(
    scheduler: &mut dyn Scheduler,
    pilots: &[PilotSnapshot],
    pending: &[PendingUnit],
    stats: &mut BindStats,
) -> Vec<(UnitId, PilotId)> {
    let mut order = sorted_by_priority(pending);
    let mut binds: Vec<(UnitId, PilotId)> = Vec::new();
    stats.passes += 1;
    scheduler.begin_pass();
    loop {
        // Rebuild the full snapshot vector, replaying every committed bind —
        // exactly what the managers did against their live pilot tables.
        let mut snapshots = pilots.to_vec();
        stats.snapshot_builds += 1;
        for &(uid, pid) in &binds {
            let cores = pending
                .iter()
                .find(|u| u.unit == uid)
                // lint: allow(panic, reason = "binds only ever contains units drawn from the pending slice two lines up")
                .expect("bound unit came from pending")
                .desc
                .cores;
            apply_bind_delta(&mut snapshots, pid, cores);
        }
        if snapshots.is_empty() {
            break;
        }
        let mut bound = None;
        for (i, u) in order.iter().enumerate() {
            stats.candidate_comparisons += snapshots.len() as u64;
            let req = UnitRequest {
                unit: u.unit,
                desc: &u.desc,
            };
            if let Some(pid) = scheduler.select(&req, &snapshots) {
                bound = Some((i, u.unit, pid));
                break;
            }
        }
        let Some((i, uid, pid)) = bound else {
            break;
        };
        order.remove(i);
        binds.push((uid, pid));
        stats.binds += 1;
    }
    stats.max_binds_per_pass = stats.max_binds_per_pass.max(binds.len() as u64);
    binds
}

/// The batched pass: one snapshot build, one `select` per pending unit,
/// in-place capacity deltas after each bind. Returns the committed
/// `(unit, pilot)` placements in bind order — byte-identical to
/// [`per_unit_pass`] for every scheduler (the equivalence proptest).
pub fn batched_pass(
    scheduler: &mut dyn Scheduler,
    pilots: &[PilotSnapshot],
    pending: &[PendingUnit],
    stats: &mut BindStats,
) -> Vec<(UnitId, PilotId)> {
    let mut snapshots = pilots.to_vec();
    let mut binds: Vec<(UnitId, PilotId)> = Vec::new();
    let mut offered = 0u64;
    scheduler.begin_pass();
    for u in sorted_by_priority(pending) {
        offered += 1;
        let req = UnitRequest {
            unit: u.unit,
            desc: &u.desc,
        };
        if let Some(pid) = scheduler.select(&req, &snapshots) {
            apply_bind_delta(&mut snapshots, pid, u.desc.cores);
            binds.push((u.unit, pid));
        }
    }
    stats.note_pass(snapshots.len(), offered, binds.len() as u64);
    binds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FirstFitScheduler, LoadBalanceScheduler};
    use pilot_infra::types::SiteId;

    fn snap(id: u64, free: u32) -> PilotSnapshot {
        PilotSnapshot {
            pilot: PilotId(id),
            site: SiteId(0),
            total_cores: 8,
            free_cores: free,
            bound_units: 0,
            remaining_walltime_s: 1000.0,
        }
    }

    fn unit(id: u64, cores: u32, priority: i32) -> PendingUnit {
        PendingUnit {
            unit: UnitId(id),
            desc: UnitDescription::new(cores).with_priority(priority),
        }
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let mut q = PendingQueue::default();
        q.push(UnitId(3), 0);
        q.push(UnitId(1), 0);
        q.push(UnitId(2), 5);
        q.push(UnitId(4), -1);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(UnitId(2)));
        assert_eq!(q.pop(), Some(UnitId(1)));
        assert_eq!(q.pop(), Some(UnitId(3)));
        assert_eq!(q.pop(), Some(UnitId(4)));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_drains_in_priority_order() {
        let mut q = PendingQueue::default();
        for (id, prio) in [(1u64, 0), (2, 9), (3, 4)] {
            q.push(UnitId(id), prio);
        }
        assert_eq!(
            q.drain(),
            vec![UnitId(2), UnitId(3), UnitId(1)],
            "drain follows pop order"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn batched_pass_builds_one_snapshot_regardless_of_binds() {
        let pilots = [snap(1, 8), snap(2, 8)];
        let pending: Vec<PendingUnit> = (0..10).map(|i| unit(i, 1, 0)).collect();
        let mut stats = BindStats::default();
        let binds = batched_pass(&mut FirstFitScheduler, &pilots, &pending, &mut stats);
        assert_eq!(binds.len(), 10);
        assert_eq!(stats.snapshot_builds, 1, "one build per pass, not per bind");
        assert_eq!(stats.passes, 1);
        assert_eq!(stats.binds, 10);
        assert_eq!(stats.max_binds_per_pass, 10);
        assert_eq!(stats.candidate_comparisons, 20, "10 units × 2 pilots");
        assert!((stats.binds_per_pass() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn per_unit_pass_rebuilds_once_per_bind() {
        let pilots = [snap(1, 8), snap(2, 8)];
        let pending: Vec<PendingUnit> = (0..10).map(|i| unit(i, 1, 0)).collect();
        let mut stats = BindStats::default();
        let binds = per_unit_pass(&mut FirstFitScheduler, &pilots, &pending, &mut stats);
        assert_eq!(binds.len(), 10);
        assert_eq!(stats.snapshot_builds, 11, "initial build + one per bind");
    }

    #[test]
    fn passes_agree_and_respect_capacity() {
        // 2 pilots × 3 free cores, five 2-core units: only two can bind.
        let pilots = [snap(1, 3), snap(2, 3)];
        let pending: Vec<PendingUnit> = (0..5).map(|i| unit(i, 2, 0)).collect();
        let mut s1 = BindStats::default();
        let mut s2 = BindStats::default();
        let a = per_unit_pass(&mut LoadBalanceScheduler, &pilots, &pending, &mut s1);
        let b = batched_pass(&mut LoadBalanceScheduler, &pilots, &pending, &mut s2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(s2.snapshot_builds, 1);
        assert_eq!(s1.snapshot_builds, 3);
    }

    #[test]
    #[should_panic(expected = "over-committed")]
    fn delta_guards_against_overcommit() {
        let mut snaps = vec![snap(1, 1)];
        apply_bind_delta(&mut snaps, PilotId(1), 2);
    }

    #[test]
    fn delta_decrements_and_counts() {
        let mut snaps = vec![snap(1, 5), snap(2, 5)];
        apply_bind_delta(&mut snaps, PilotId(2), 3);
        assert_eq!(snaps[1].free_cores, 2);
        assert_eq!(snaps[1].bound_units, 1);
        assert_eq!(snaps[0].free_cores, 5);
    }
}
