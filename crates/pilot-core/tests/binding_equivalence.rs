//! Property test for the late-binding rewrite: the batched pass (one
//! snapshot build per pass, in-place capacity deltas) must produce placements
//! **identical** to the original rebuild-per-bind pass for every scheduler,
//! over arbitrary pilot sets and pending workloads.
//!
//! The equivalence holds because binding only shrinks free capacity within a
//! pass and refusals are state-independent for every shipped scheduler, so a
//! unit refused once per pass stays refused for the rest of it.

use pilot_core::binding::{batched_pass, per_unit_pass, BindStats, PendingUnit};
use pilot_core::describe::{DataLocation, UnitDescription};
use pilot_core::ids::{PilotId, UnitId};
use pilot_core::scheduler::{
    BackfillScheduler, DataAwareScheduler, FirstFitScheduler, LoadBalanceScheduler, PilotSnapshot,
    RandomScheduler, RoundRobinScheduler, Scheduler,
};
use pilot_infra::types::SiteId;
use proptest::prelude::*;
use std::collections::HashMap;

/// Fresh scheduler instance per pass; `seed` only matters for `random`.
fn scheduler(kind: usize, seed: u64) -> Box<dyn Scheduler> {
    match kind {
        0 => Box::new(FirstFitScheduler),
        1 => Box::new(RoundRobinScheduler::default()),
        2 => Box::new(LoadBalanceScheduler),
        3 => Box::new(DataAwareScheduler::default()),
        4 => Box::new(BackfillScheduler::default()),
        _ => Box::new(RandomScheduler::new(seed)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Same placements, and the batched pass builds exactly one snapshot
    /// vector no matter how many units bind.
    #[test]
    fn batched_pass_matches_per_unit_pass(
        kind in 0usize..6,
        seed in 0u64..1_000_000,
        // (total_cores, used_cores, site, bound_units, remaining_walltime_s)
        pilots in prop::collection::vec((1u32..33, 0u32..33, 0u16..3, 0usize..5, 10u64..5000), 0..20),
        // (cores, priority, est_duration_s, input (bytes, site))
        units in prop::collection::vec(
            (1u32..5, -5i32..6, prop::option::of(5u64..600), prop::option::of((1u64..2_000_000_000, 0u16..3))),
            0..60
        ),
    ) {
        let snapshots: Vec<PilotSnapshot> = pilots
            .iter()
            .enumerate()
            .map(|(i, &(total, used, site, bound, rem))| PilotSnapshot {
                pilot: PilotId(i as u64 + 1),
                site: SiteId(site),
                total_cores: total,
                free_cores: total.saturating_sub(used),
                bound_units: bound,
                remaining_walltime_s: rem as f64,
            })
            .collect();
        let pending: Vec<PendingUnit> = units
            .iter()
            .enumerate()
            .map(|(i, &(cores, priority, est, input))| {
                let mut d = UnitDescription::new(cores).with_priority(priority);
                if let Some(e) = est {
                    d = d.with_estimate(e as f64);
                }
                if let Some((bytes, site)) = input {
                    d = d.with_inputs(vec![DataLocation::new(bytes, vec![SiteId(site)])]);
                }
                PendingUnit {
                    unit: UnitId(i as u64 + 1),
                    desc: d,
                }
            })
            .collect();

        let mut ref_stats = BindStats::default();
        let mut new_stats = BindStats::default();
        let reference = per_unit_pass(&mut *scheduler(kind, seed), &snapshots, &pending, &mut ref_stats);
        let batched = batched_pass(&mut *scheduler(kind, seed), &snapshots, &pending, &mut new_stats);

        prop_assert_eq!(&reference, &batched, "placements diverged (kind {})", kind);
        prop_assert_eq!(new_stats.snapshot_builds, 1, "one build per batched pass");
        prop_assert_eq!(
            ref_stats.snapshot_builds,
            ref_stats.binds + 1,
            "reference pass rebuilds once per bind"
        );
        prop_assert_eq!(new_stats.binds, batched.len() as u64);

        // Every placement respects capacity: bound cores per pilot never
        // exceed what was free at pass start.
        let mut committed: HashMap<PilotId, u32> = HashMap::new();
        for &(uid, pid) in &batched {
            let cores = pending.iter().find(|u| u.unit == uid).unwrap().desc.cores;
            *committed.entry(pid).or_insert(0) += cores;
        }
        for (pid, cores) in committed {
            let free = snapshots.iter().find(|p| p.pilot == pid).unwrap().free_cores;
            prop_assert!(cores <= free, "pilot {} over-committed: {} > {}", pid, cores, free);
        }
    }
}
