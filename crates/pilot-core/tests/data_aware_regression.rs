//! Regression test for EXP PD-1: when pilots exist at every data site, the
//! data-aware scheduler must *wait* for a local slot (delay scheduling)
//! instead of binding units remotely — including during the window where
//! pilots are still pending.

use pilot_core::describe::{DataLocation, PilotDescription, UnitDescription};
use pilot_core::scheduler::DataAwareScheduler;
use pilot_core::sim::SimPilotSystem;
use pilot_infra::hpc::{HpcCluster, HpcConfig};
use pilot_saga::ResourceAdaptor;
use pilot_sim::{SimDuration, SimTime};

#[test]
fn data_aware_delay_scheduling_avoids_remote_staging() {
    let mut sys = SimPilotSystem::new(0xAD1);
    let a = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
        "a", 64,
    ))));
    let b = sys.add_resource(ResourceAdaptor::hpc(HpcCluster::new(HpcConfig::quiet(
        "b", 64,
    ))));
    sys.set_scheduler(Box::new(DataAwareScheduler::default()));
    for site in [a, b] {
        sys.submit_pilot(
            SimTime::ZERO,
            site,
            PilotDescription::new(16, SimDuration::from_hours(12)),
        );
    }
    for i in 0..40 {
        let home = if i % 2 == 0 { a } else { b };
        sys.submit_unit_fixed(
            SimTime::ZERO,
            UnitDescription::new(1).with_inputs(vec![DataLocation::new(500_000_000, vec![home])]),
            60.0,
        );
    }
    let report = sys.run(SimTime::from_hours(48));
    let stagings: Vec<f64> = report
        .units
        .iter()
        .filter_map(|u| u.times.staging())
        .collect();
    let mean = stagings.iter().sum::<f64>() / stagings.len() as f64;
    assert!(mean < 0.5, "mean staging {mean}");
}
