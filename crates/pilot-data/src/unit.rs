//! Data units: logical datasets with replica state.

use std::fmt;

/// Identifier of a data unit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DataUnitId(pub u64);

impl fmt::Display for DataUnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "du-{}", self.0)
    }
}

/// Request to register a dataset.
#[derive(Clone, Debug, Default)]
pub struct DataUnitDescription {
    /// Preferred site for the primary replica (placement hint).
    pub affinity: Option<pilot_infra::types::SiteId>,
    /// Desired replica count (&ge; 1); the service satisfies as much of it as
    /// capacity allows at registration time.
    pub replicas: u32,
    /// Free-form label.
    pub label: String,
}

impl DataUnitDescription {
    /// A single-replica dataset with no placement preference.
    pub fn new() -> Self {
        DataUnitDescription {
            affinity: None,
            replicas: 1,
            label: String::new(),
        }
    }

    /// Prefer a site for the primary replica.
    pub fn with_affinity(mut self, site: pilot_infra::types::SiteId) -> Self {
        self.affinity = Some(site);
        self
    }

    /// Request `n` replicas.
    pub fn with_replicas(mut self, n: u32) -> Self {
        self.replicas = n.max(1);
        self
    }

    /// Attach a label.
    pub fn labeled(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }
}

/// Replication state of a data unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataUnitState {
    /// Registered; fewer replicas materialized than requested.
    UnderReplicated,
    /// All requested replicas exist.
    Ready,
    /// Deleted; the id is retained for audit but holds no bytes.
    Deleted,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_infra::types::SiteId;

    #[test]
    fn builder_and_floor() {
        let d = DataUnitDescription::new()
            .with_affinity(SiteId(2))
            .with_replicas(0)
            .labeled("genome");
        assert_eq!(d.affinity, Some(SiteId(2)));
        assert_eq!(d.replicas, 1, "replica count floors at 1");
        assert_eq!(d.label, "genome");
        assert_eq!(DataUnitId(4).to_string(), "du-4");
    }
}
