//! # pilot-data — data as a first-class citizen of the pilot-abstraction
//!
//! Implements the Pilot-Data extension (\[66\] in the paper): alongside compute
//! pilots, applications allocate **data pilots** (storage placeholders on a
//! site) and register **data units** (logical datasets) into them. The data
//! service tracks replica placement, moves bytes between sites (recording
//! both the real memory traffic and the *virtual* wide-area cost through the
//! network model), and exports [`pilot_core::DataLocation`] views so the
//! data-aware scheduler can bind compute units next to their inputs.
//!
//! The experiments this powers:
//! - **EXP PD-1** — data-aware vs. data-oblivious placement: the
//!   [`TransferLedger`] shows bytes moved and virtual staging seconds.
//! - **EXP PD-2** — replication-factor sweep: read throughput rises as
//!   replicas spread across sites.

pub mod ledger;
pub mod placement;
pub mod service;
pub mod unit;

pub use ledger::{TransferLedger, TransferRecord};
pub use placement::{AffinityFirst, LeastLoaded, PlacementStrategy, RoundRobinPlacement};
pub use service::{DataPilotDescription, DataPilotId, DataService, DataServiceError};
pub use unit::{DataUnitDescription, DataUnitId, DataUnitState};
