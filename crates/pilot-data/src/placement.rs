//! Replica placement strategies: which data pilot receives a new replica.
//!
//! Strategies are pure functions over capacity snapshots, mirroring the
//! compute-side `Scheduler` design so placement ablations work the same way.

use crate::service::DataPilotId;
use pilot_infra::types::SiteId;

/// Capacity snapshot of one data pilot.
#[derive(Clone, Copy, Debug)]
pub struct StoreSnapshot {
    /// Which data pilot.
    pub store: DataPilotId,
    /// Site the storage lives on.
    pub site: SiteId,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Bytes already stored.
    pub used: u64,
}

impl StoreSnapshot {
    /// Remaining capacity.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }
}

/// A replica placement policy.
pub trait PlacementStrategy: Send {
    /// Choose a store for a replica of `size` bytes, preferring `affinity`
    /// when given and avoiding sites in `exclude` (existing replicas).
    fn place(
        &mut self,
        size: u64,
        affinity: Option<SiteId>,
        exclude: &[SiteId],
        stores: &[StoreSnapshot],
    ) -> Option<DataPilotId>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

fn feasible<'a>(
    size: u64,
    exclude: &'a [SiteId],
    stores: &'a [StoreSnapshot],
) -> impl Iterator<Item = &'a StoreSnapshot> + 'a {
    stores
        .iter()
        .filter(move |s| s.free() >= size && !exclude.contains(&s.site))
}

/// Cycle through stores (capacity permitting). Spreads replicas evenly.
#[derive(Default, Debug)]
pub struct RoundRobinPlacement {
    cursor: usize,
}

impl PlacementStrategy for RoundRobinPlacement {
    fn place(
        &mut self,
        size: u64,
        _affinity: Option<SiteId>,
        exclude: &[SiteId],
        stores: &[StoreSnapshot],
    ) -> Option<DataPilotId> {
        if stores.is_empty() {
            return None;
        }
        let n = stores.len();
        for i in 0..n {
            let s = &stores[(self.cursor + i) % n];
            if s.free() >= size && !exclude.contains(&s.site) {
                self.cursor = (self.cursor + i + 1) % n;
                return Some(s.store);
            }
        }
        None
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Honor the affinity hint when possible, else fall back to most-free.
#[derive(Default, Debug)]
pub struct AffinityFirst;

impl PlacementStrategy for AffinityFirst {
    fn place(
        &mut self,
        size: u64,
        affinity: Option<SiteId>,
        exclude: &[SiteId],
        stores: &[StoreSnapshot],
    ) -> Option<DataPilotId> {
        if let Some(site) = affinity {
            if let Some(s) = feasible(size, exclude, stores).find(|s| s.site == site) {
                return Some(s.store);
            }
        }
        feasible(size, exclude, stores)
            .max_by_key(|s| s.free())
            .map(|s| s.store)
    }
    fn name(&self) -> &'static str {
        "affinity-first"
    }
}

/// Always the store with the most free bytes.
#[derive(Default, Debug)]
pub struct LeastLoaded;

impl PlacementStrategy for LeastLoaded {
    fn place(
        &mut self,
        size: u64,
        _affinity: Option<SiteId>,
        exclude: &[SiteId],
        stores: &[StoreSnapshot],
    ) -> Option<DataPilotId> {
        feasible(size, exclude, stores)
            .max_by_key(|s| s.free())
            .map(|s| s.store)
    }
    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(id: u64, site: u16, capacity: u64, used: u64) -> StoreSnapshot {
        StoreSnapshot {
            store: DataPilotId(id),
            site: SiteId(site),
            capacity,
            used,
        }
    }

    #[test]
    fn round_robin_cycles_and_respects_capacity() {
        let mut p = RoundRobinPlacement::default();
        let stores = [snap(1, 0, 100, 0), snap(2, 1, 100, 0), snap(3, 2, 10, 0)];
        assert_eq!(p.place(50, None, &[], &stores), Some(DataPilotId(1)));
        assert_eq!(p.place(50, None, &[], &stores), Some(DataPilotId(2)));
        // Store 3 is too small for 50 bytes: skipped.
        assert_eq!(p.place(50, None, &[], &stores), Some(DataPilotId(1)));
    }

    #[test]
    fn affinity_first_honors_hint_and_falls_back() {
        let mut p = AffinityFirst;
        let stores = [snap(1, 0, 100, 90), snap(2, 1, 100, 0)];
        assert_eq!(
            p.place(5, Some(SiteId(0)), &[], &stores),
            Some(DataPilotId(1))
        );
        // Hinted store too full for 50 bytes: falls back to most free.
        assert_eq!(
            p.place(50, Some(SiteId(0)), &[], &stores),
            Some(DataPilotId(2))
        );
        assert_eq!(
            p.place(5, Some(SiteId(9)), &[], &stores),
            Some(DataPilotId(2))
        );
    }

    #[test]
    fn exclusion_prevents_same_site_replicas() {
        let mut p = LeastLoaded;
        let stores = [snap(1, 0, 1000, 0), snap(2, 1, 500, 0)];
        assert_eq!(
            p.place(10, None, &[SiteId(0)], &stores),
            Some(DataPilotId(2))
        );
        assert_eq!(p.place(10, None, &[SiteId(0), SiteId(1)], &stores), None);
    }

    #[test]
    fn no_feasible_store_returns_none() {
        let mut rr = RoundRobinPlacement::default();
        assert_eq!(rr.place(10, None, &[], &[]), None);
        let tiny = [snap(1, 0, 5, 0)];
        assert_eq!(rr.place(10, None, &[], &tiny), None);
    }

    #[test]
    fn names() {
        assert_eq!(RoundRobinPlacement::default().name(), "round-robin");
        assert_eq!(AffinityFirst.name(), "affinity-first");
        assert_eq!(LeastLoaded.name(), "least-loaded");
    }
}
