//! The data service: data pilots (storage placeholders), data units with
//! replicas, staged reads, and locality views for the compute scheduler.
//!
//! Thread-safe (`&self` methods, internal `RwLock`): work kernels fetch their
//! inputs from inside compute units while the driver registers new datasets.

use crate::ledger::TransferLedger;
use crate::placement::{PlacementStrategy, StoreSnapshot};
use crate::unit::{DataUnitDescription, DataUnitId, DataUnitState};
use parking_lot::RwLock;
use pilot_core::describe::DataLocation;
use pilot_infra::network::NetworkModel;
use pilot_infra::types::SiteId;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a data pilot (storage placeholder).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DataPilotId(pub u64);

impl fmt::Display for DataPilotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dp-{}", self.0)
    }
}

/// Request for a storage placeholder.
#[derive(Clone, Debug)]
pub struct DataPilotDescription {
    /// Site the storage lives on.
    pub site: SiteId,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Free-form label.
    pub label: String,
}

impl DataPilotDescription {
    /// Storage of `capacity` bytes at `site`.
    pub fn new(site: SiteId, capacity: u64) -> Self {
        DataPilotDescription {
            site,
            capacity,
            label: String::new(),
        }
    }
}

/// Errors surfaced by the data service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataServiceError {
    /// No store can hold the replica.
    NoCapacity,
    /// Unknown data unit.
    UnknownUnit(DataUnitId),
    /// Unknown data pilot.
    UnknownStore(DataPilotId),
    /// The unit was deleted.
    Deleted(DataUnitId),
    /// A replica already exists at the requested site.
    AlreadyReplicated(SiteId),
}

impl fmt::Display for DataServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataServiceError::NoCapacity => write!(f, "no store has capacity"),
            DataServiceError::UnknownUnit(u) => write!(f, "unknown data unit {u}"),
            DataServiceError::UnknownStore(s) => write!(f, "unknown data pilot {s}"),
            DataServiceError::Deleted(u) => write!(f, "data unit {u} was deleted"),
            DataServiceError::AlreadyReplicated(s) => {
                write!(f, "replica already present at {s}")
            }
        }
    }
}

impl std::error::Error for DataServiceError {}

struct Store {
    site: SiteId,
    capacity: u64,
    used: u64,
    label: String,
}

struct Unit {
    desc: DataUnitDescription,
    size: u64,
    /// Replicas: store holding the bytes. Payload shared, never duplicated
    /// in memory — the *accounting* duplicates, as real storage would.
    replicas: Vec<DataPilotId>,
    payload: Arc<Vec<u8>>,
    state: DataUnitState,
}

struct Inner {
    stores: HashMap<DataPilotId, Store>,
    store_order: Vec<DataPilotId>,
    units: HashMap<DataUnitId, Unit>,
    ledger: TransferLedger,
    next_id: u64,
}

/// The Pilot-Data service. See the [module docs](self).
pub struct DataService {
    network: NetworkModel,
    placement: parking_lot::Mutex<Box<dyn PlacementStrategy>>,
    inner: RwLock<Inner>,
}

impl DataService {
    /// New service over a network model with the given placement policy.
    pub fn new(network: NetworkModel, placement: Box<dyn PlacementStrategy>) -> Self {
        DataService {
            network,
            placement: parking_lot::Mutex::new(placement),
            inner: RwLock::new(Inner {
                stores: HashMap::new(),
                store_order: Vec::new(),
                units: HashMap::new(),
                ledger: TransferLedger::new(),
                next_id: 1,
            }),
        }
    }

    /// Allocate a data pilot.
    pub fn add_data_pilot(&self, desc: DataPilotDescription) -> DataPilotId {
        let mut g = self.inner.write();
        let id = DataPilotId(g.next_id);
        g.next_id += 1;
        g.stores.insert(
            id,
            Store {
                site: desc.site,
                capacity: desc.capacity,
                used: 0,
                label: desc.label,
            },
        );
        g.store_order.push(id);
        id
    }

    fn snapshots(g: &Inner) -> Vec<StoreSnapshot> {
        g.store_order
            .iter()
            .map(|id| {
                let s = &g.stores[id];
                StoreSnapshot {
                    store: *id,
                    site: s.site,
                    capacity: s.capacity,
                    used: s.used,
                }
            })
            .collect()
    }

    /// Register a dataset. Places the primary replica per the description's
    /// affinity, then additional replicas (up to `desc.replicas`) on other
    /// sites; under-replication is not an error (state reflects it).
    pub fn put(
        &self,
        bytes: Vec<u8>,
        desc: DataUnitDescription,
    ) -> Result<DataUnitId, DataServiceError> {
        let size = bytes.len() as u64;
        let mut g = self.inner.write();
        let mut placement = self.placement.lock();
        let snaps = Self::snapshots(&g);
        let primary = placement
            .place(size, desc.affinity, &[], &snaps)
            .ok_or(DataServiceError::NoCapacity)?;
        let mut replicas = vec![primary];
        let mut sites = vec![g.stores[&primary].site];
        // Account the primary immediately so later placements see it.
        g.stores
            .get_mut(&primary)
            .ok_or(DataServiceError::UnknownStore(primary))?
            .used += size;
        for _ in 1..desc.replicas {
            let snaps = Self::snapshots(&g);
            match placement.place(size, None, &sites, &snaps) {
                Some(store) => {
                    let site = g.stores[&store].site;
                    // Creating a replica moves bytes from the primary's site.
                    let cost = self
                        .network
                        .base_transfer_time(size, sites[0], site)
                        .as_secs_f64();
                    g.ledger.record(sites[0], site, size, cost);
                    if let Some(s) = g.stores.get_mut(&store) {
                        s.used += size;
                    }
                    replicas.push(store);
                    sites.push(site);
                }
                None => break,
            }
        }
        let state = if replicas.len() as u32 >= desc.replicas {
            DataUnitState::Ready
        } else {
            DataUnitState::UnderReplicated
        };
        let id = DataUnitId(g.next_id);
        g.next_id += 1;
        g.units.insert(
            id,
            Unit {
                desc,
                size,
                replicas,
                payload: Arc::new(bytes),
                state,
            },
        );
        Ok(id)
    }

    /// Add one replica at a specific site (if a store there has room).
    pub fn replicate(&self, unit: DataUnitId, site: SiteId) -> Result<(), DataServiceError> {
        let mut g = self.inner.write();
        let (size, src_site, existing): (u64, SiteId, Vec<SiteId>) = {
            let u = g
                .units
                .get(&unit)
                .ok_or(DataServiceError::UnknownUnit(unit))?;
            if u.state == DataUnitState::Deleted {
                return Err(DataServiceError::Deleted(unit));
            }
            let sites: Vec<SiteId> = u.replicas.iter().map(|r| g.stores[r].site).collect();
            if sites.contains(&site) {
                return Err(DataServiceError::AlreadyReplicated(site));
            }
            (u.size, sites[0], sites)
        };
        let target = g
            .store_order
            .iter()
            .copied()
            .find(|id| {
                let s = &g.stores[id];
                s.site == site && s.capacity - s.used >= size
            })
            .ok_or(DataServiceError::NoCapacity)?;
        let cost = self
            .network
            .base_transfer_time(size, src_site, site)
            .as_secs_f64();
        g.ledger.record(src_site, site, size, cost);
        g.stores
            .get_mut(&target)
            .ok_or(DataServiceError::UnknownStore(target))?
            .used += size;
        let _ = existing;
        let u = g
            .units
            .get_mut(&unit)
            .ok_or(DataServiceError::UnknownUnit(unit))?;
        u.replicas.push(target);
        if u.replicas.len() as u32 >= u.desc.replicas {
            u.state = DataUnitState::Ready;
        }
        Ok(())
    }

    /// Read a dataset "at" a site. A local replica is free; otherwise the
    /// bytes come from the nearest replica and the movement is recorded in
    /// the ledger. Returns the shared payload.
    ///
    /// Local-replica reads take only the read lock, so concurrent fetchers
    /// of resident data never serialize; the write lock is acquired only
    /// when a transfer must be recorded in the ledger, and the fast-path
    /// check is repeated under it (a replica may have landed at `at` between
    /// the two acquisitions — classic double-checked upgrade).
    pub fn fetch(&self, unit: DataUnitId, at: SiteId) -> Result<Arc<Vec<u8>>, DataServiceError> {
        {
            let g = self.inner.read();
            let u = g
                .units
                .get(&unit)
                .ok_or(DataServiceError::UnknownUnit(unit))?;
            if u.state == DataUnitState::Deleted {
                return Err(DataServiceError::Deleted(unit));
            }
            if u.replicas.iter().any(|r| g.stores[r].site == at) {
                return Ok(Arc::clone(&u.payload));
            }
        }
        let mut g = self.inner.write();
        let (payload, size, sites) = {
            let u = g
                .units
                .get(&unit)
                .ok_or(DataServiceError::UnknownUnit(unit))?;
            if u.state == DataUnitState::Deleted {
                return Err(DataServiceError::Deleted(unit));
            }
            let sites: Vec<SiteId> = u.replicas.iter().map(|r| g.stores[r].site).collect();
            (Arc::clone(&u.payload), u.size, sites)
        };
        if !sites.contains(&at) {
            // Nearest replica = cheapest transfer under the model.
            let src = sites
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    self.network
                        .base_transfer_time(size, a, at)
                        .cmp(&self.network.base_transfer_time(size, b, at))
                })
                .ok_or(DataServiceError::UnknownUnit(unit))?;
            let cost = self.network.base_transfer_time(size, src, at).as_secs_f64();
            g.ledger.record(src, at, size, cost);
        }
        Ok(payload)
    }

    /// Locality view for the compute scheduler.
    pub fn location(&self, unit: DataUnitId) -> Result<DataLocation, DataServiceError> {
        let g = self.inner.read();
        let u = g
            .units
            .get(&unit)
            .ok_or(DataServiceError::UnknownUnit(unit))?;
        if u.state == DataUnitState::Deleted {
            return Err(DataServiceError::Deleted(unit));
        }
        let sites = u.replicas.iter().map(|r| g.stores[r].site).collect();
        Ok(DataLocation::new(u.size, sites))
    }

    /// Delete a dataset, releasing storage on every replica.
    pub fn delete(&self, unit: DataUnitId) -> Result<(), DataServiceError> {
        let mut g = self.inner.write();
        let (size, replicas) = {
            let u = g
                .units
                .get_mut(&unit)
                .ok_or(DataServiceError::UnknownUnit(unit))?;
            if u.state == DataUnitState::Deleted {
                return Err(DataServiceError::Deleted(unit));
            }
            u.state = DataUnitState::Deleted;
            u.payload = Arc::new(Vec::new());
            (u.size, std::mem::take(&mut u.replicas))
        };
        for r in replicas {
            if let Some(s) = g.stores.get_mut(&r) {
                s.used = s.used.saturating_sub(size);
            }
        }
        Ok(())
    }

    /// Replication state of a unit.
    pub fn state(&self, unit: DataUnitId) -> Option<DataUnitState> {
        self.inner.read().units.get(&unit).map(|u| u.state)
    }

    /// (used, capacity) bytes of a data pilot.
    pub fn usage(&self, store: DataPilotId) -> Option<(u64, u64)> {
        self.inner
            .read()
            .stores
            .get(&store)
            .map(|s| (s.used, s.capacity))
    }

    /// Label of a data pilot.
    pub fn store_label(&self, store: DataPilotId) -> Option<String> {
        self.inner
            .read()
            .stores
            .get(&store)
            .map(|s| s.label.clone())
    }

    /// Snapshot of the transfer ledger.
    pub fn ledger(&self) -> TransferLedger {
        self.inner.read().ledger.clone()
    }

    /// The network model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{AffinityFirst, RoundRobinPlacement};

    fn service() -> (DataService, DataPilotId, DataPilotId) {
        let net = NetworkModel::new(&["a", "b"]);
        let ds = DataService::new(net, Box::new(AffinityFirst));
        let a = ds.add_data_pilot(DataPilotDescription::new(SiteId(0), 1_000_000));
        let b = ds.add_data_pilot(DataPilotDescription::new(SiteId(1), 1_000_000));
        (ds, a, b)
    }

    #[test]
    fn put_with_affinity_places_locally() {
        let (ds, a, _b) = service();
        let du = ds
            .put(
                vec![0u8; 1000],
                DataUnitDescription::new().with_affinity(SiteId(0)),
            )
            .unwrap();
        assert_eq!(ds.state(du), Some(DataUnitState::Ready));
        assert_eq!(ds.usage(a), Some((1000, 1_000_000)));
        let loc = ds.location(du).unwrap();
        assert_eq!(loc.size_bytes, 1000);
        assert_eq!(loc.sites, vec![SiteId(0)]);
        assert!(ds.ledger().is_empty(), "primary placement moves nothing");
    }

    #[test]
    fn replication_moves_bytes_and_updates_location() {
        let (ds, _a, b) = service();
        let du = ds
            .put(
                vec![7u8; 5000],
                DataUnitDescription::new().with_affinity(SiteId(0)),
            )
            .unwrap();
        ds.replicate(du, SiteId(1)).unwrap();
        let loc = ds.location(du).unwrap();
        assert!(loc.is_local_to(SiteId(0)) && loc.is_local_to(SiteId(1)));
        assert_eq!(ds.usage(b), Some((5000, 1_000_000)));
        let ledger = ds.ledger();
        assert_eq!(ledger.remote_bytes(), 5000);
        assert!(ledger.virtual_seconds() > 0.0);
        // Duplicate replica rejected.
        assert_eq!(
            ds.replicate(du, SiteId(1)),
            Err(DataServiceError::AlreadyReplicated(SiteId(1)))
        );
    }

    #[test]
    fn multi_replica_put() {
        let (ds, _a, _b) = service();
        let du = ds
            .put(vec![1u8; 100], DataUnitDescription::new().with_replicas(2))
            .unwrap();
        assert_eq!(ds.state(du), Some(DataUnitState::Ready));
        let loc = ds.location(du).unwrap();
        assert_eq!(loc.sites.len(), 2);
        // Asking for 3 replicas with 2 sites: under-replicated, not an error.
        let du3 = ds
            .put(vec![1u8; 100], DataUnitDescription::new().with_replicas(3))
            .unwrap();
        assert_eq!(ds.state(du3), Some(DataUnitState::UnderReplicated));
    }

    #[test]
    fn fetch_local_is_free_remote_is_ledgered() {
        let (ds, _a, _b) = service();
        let du = ds
            .put(
                vec![9u8; 2048],
                DataUnitDescription::new().with_affinity(SiteId(0)),
            )
            .unwrap();
        let before = ds.ledger().len();
        let bytes = ds.fetch(du, SiteId(0)).unwrap();
        assert_eq!(bytes.len(), 2048);
        assert_eq!(ds.ledger().len(), before, "local read is free");
        let _ = ds.fetch(du, SiteId(1)).unwrap();
        let ledger = ds.ledger();
        assert_eq!(ledger.len(), before + 1);
        assert_eq!(ledger.remote_bytes(), 2048);
    }

    #[test]
    fn concurrent_local_fetches_share_the_read_lock() {
        let (ds, _a, _b) = service();
        let ds = std::sync::Arc::new(ds);
        let du = ds
            .put(
                vec![3u8; 1024],
                DataUnitDescription::new().with_affinity(SiteId(0)),
            )
            .unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ds = std::sync::Arc::clone(&ds);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let bytes = ds.fetch(du, SiteId(0)).unwrap();
                        assert_eq!(bytes.len(), 1024);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            ds.ledger().is_empty(),
            "local fast path must never touch the ledger"
        );
    }

    #[test]
    fn capacity_is_enforced() {
        let net = NetworkModel::new(&["a"]);
        let ds = DataService::new(net, Box::new(RoundRobinPlacement::default()));
        ds.add_data_pilot(DataPilotDescription::new(SiteId(0), 100));
        assert!(ds.put(vec![0u8; 60], DataUnitDescription::new()).is_ok());
        assert_eq!(
            ds.put(vec![0u8; 60], DataUnitDescription::new()),
            Err(DataServiceError::NoCapacity)
        );
    }

    #[test]
    fn delete_releases_storage() {
        let (ds, a, _b) = service();
        let du = ds
            .put(
                vec![0u8; 500],
                DataUnitDescription::new().with_affinity(SiteId(0)),
            )
            .unwrap();
        ds.delete(du).unwrap();
        assert_eq!(ds.usage(a), Some((0, 1_000_000)));
        assert_eq!(ds.state(du), Some(DataUnitState::Deleted));
        assert_eq!(ds.fetch(du, SiteId(0)), Err(DataServiceError::Deleted(du)));
        assert_eq!(ds.delete(du), Err(DataServiceError::Deleted(du)));
    }

    #[test]
    fn unknown_ids_error() {
        let (ds, _a, _b) = service();
        let ghost = DataUnitId(999);
        assert_eq!(
            ds.location(ghost),
            Err(DataServiceError::UnknownUnit(ghost))
        );
        assert!(ds.usage(DataPilotId(999)).is_none());
    }

    #[test]
    fn concurrent_access_from_kernel_threads() {
        use std::sync::Arc as StdArc;
        let (ds, _a, _b) = service();
        let ds = StdArc::new(ds);
        let du = ds.put(vec![5u8; 4096], DataUnitDescription::new()).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let ds = StdArc::clone(&ds);
                std::thread::spawn(move || {
                    let site = SiteId((i % 2) as u16);
                    let bytes = ds.fetch(du, site).unwrap();
                    assert_eq!(bytes.len(), 4096);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
