//! Transfer ledger: every byte moved between sites, with its virtual
//! wide-area cost. The PD experiments' primary instrument.

use pilot_infra::types::SiteId;
use std::collections::HashMap;

/// One recorded transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferRecord {
    /// Source site.
    pub src: SiteId,
    /// Destination site.
    pub dst: SiteId,
    /// Bytes moved.
    pub bytes: u64,
    /// Virtual seconds the transfer would take over the modeled network.
    pub virtual_seconds: f64,
}

/// Append-only transfer accounting.
#[derive(Clone, Debug, Default)]
pub struct TransferLedger {
    records: Vec<TransferRecord>,
}

impl TransferLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a transfer.
    pub fn record(&mut self, src: SiteId, dst: SiteId, bytes: u64, virtual_seconds: f64) {
        self.records.push(TransferRecord {
            src,
            dst,
            bytes,
            virtual_seconds,
        });
    }

    /// All records in order.
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }

    /// Total bytes moved *between distinct sites* (local movement is free).
    pub fn remote_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.src != r.dst)
            .map(|r| r.bytes)
            .sum()
    }

    /// Total bytes including intra-site movement.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Sum of virtual transfer seconds.
    pub fn virtual_seconds(&self) -> f64 {
        self.records.iter().map(|r| r.virtual_seconds).sum()
    }

    /// Bytes per directed site pair.
    pub fn by_pair(&self) -> HashMap<(SiteId, SiteId), u64> {
        let mut m = HashMap::new();
        for r in &self.records {
            *m.entry((r.src, r.dst)).or_insert(0) += r.bytes;
        }
        m
    }

    /// Number of transfers recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut l = TransferLedger::new();
        l.record(SiteId(0), SiteId(1), 100, 1.0);
        l.record(SiteId(0), SiteId(1), 50, 0.5);
        l.record(SiteId(1), SiteId(1), 900, 0.01);
        assert_eq!(l.len(), 3);
        assert_eq!(l.remote_bytes(), 150);
        assert_eq!(l.total_bytes(), 1050);
        assert!((l.virtual_seconds() - 1.51).abs() < 1e-12);
        let pairs = l.by_pair();
        assert_eq!(pairs[&(SiteId(0), SiteId(1))], 150);
        assert_eq!(pairs[&(SiteId(1), SiteId(1))], 900);
    }

    #[test]
    fn empty_ledger() {
        let l = TransferLedger::new();
        assert!(l.is_empty());
        assert_eq!(l.remote_bytes(), 0);
        assert_eq!(l.virtual_seconds(), 0.0);
    }
}
