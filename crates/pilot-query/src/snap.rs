//! Lock-free snapshot publication: a hand-rolled `arc-swap`-style cell.
//!
//! The materializer (single writer) publishes each new projection version as
//! an immutable `Arc<T>`; readers grab the current `Arc` with one atomic
//! index load plus a momentary read-lock on the non-written slot. Readers
//! never allocate, never block the writer's *next* publication (the writer
//! always prepares the non-current slot), and never observe a torn value —
//! the slot swap happens entirely under the slot's write lock before the
//! index flips.
//!
//! Why two slots instead of a real `arc-swap`: the build environment is
//! offline, and the double-slot construction needs nothing beyond
//! `parking_lot` + one atomic. The read path is 2 instructions longer than a
//! true atomic Arc swap; QP-1 shows it still clears the lock path by orders
//! of magnitude.
//!
// lint: deterministic — pure synchronization, no clocks or I/O.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Single-writer, many-reader snapshot cell. See the module docs.
pub struct SnapshotCell<T> {
    slots: [RwLock<Arc<T>>; 2],
    current: AtomicUsize,
}

impl<T> SnapshotCell<T> {
    /// A cell whose first published snapshot is `initial`.
    pub fn new(initial: T) -> Self {
        let a = Arc::new(initial);
        SnapshotCell {
            slots: [RwLock::new(Arc::clone(&a)), RwLock::new(a)],
            current: AtomicUsize::new(0),
        }
    }

    /// The current snapshot. Lock-free in practice: one atomic load plus an
    /// uncontended read-lock held for a single `Arc::clone`. The returned
    /// `Arc` stays valid (and immutable) no matter how many publications
    /// happen after.
    pub fn load(&self) -> Arc<T> {
        let i = self.current.load(Ordering::Acquire) & 1;
        Arc::clone(&self.slots[i].read())
    }

    /// Publish a new snapshot. Single-writer: callers must serialize stores
    /// (the materializer owns the cell's write side). The non-current slot is
    /// written first, then the index flips — a concurrent `load` returns
    /// either the old or the new snapshot, both fully formed.
    pub fn store(&self, value: T) {
        let next = (self.current.load(Ordering::Relaxed) + 1) & 1;
        *self.slots[next].write() = Arc::new(value);
        self.current.store(next, Ordering::Release);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("current", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_latest_store() {
        let cell = SnapshotCell::new(0u64);
        assert_eq!(*cell.load(), 0);
        for v in 1..=100 {
            cell.store(v);
            assert_eq!(*cell.load(), v);
        }
    }

    #[test]
    fn old_snapshots_stay_valid_after_publications() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.store(vec![4]);
        cell.store(vec![5]);
        assert_eq!(*old, vec![1, 2, 3], "reader's Arc is immutable");
        assert_eq!(*cell.load(), vec![5]);
    }

    #[test]
    fn concurrent_readers_always_see_consistent_pairs() {
        // Snapshot is (n, 2n): a torn read would break the invariant.
        let cell = Arc::new(SnapshotCell::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let s = cell.load();
                        assert_eq!(s.1, s.0 * 2, "torn snapshot");
                        seen = seen.max(s.0);
                    }
                    seen
                })
            })
            .collect();
        for n in 1..=50_000u64 {
            cell.store((n, n * 2));
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            let seen = r.join().expect("reader");
            assert!(seen <= 50_000);
        }
        assert_eq!(cell.load().0, 50_000);
    }
}
