//! The materializer: folds projection topics into [`QueryTables`] and
//! publishes immutable snapshots.
//!
//! One materializer owns one projection topic. It fetches each partition from
//! the position recorded in its tables' continuity token, decodes and applies
//! every event, and periodically publishes the whole table set through a
//! [`SnapshotCell`] — so the read side is an immutable `Arc` swap away from
//! the fold, never a lock acquisition inside it.
//!
//! ## Continuity + exactly-once restart
//!
//! The fold position (`offsets`, one next-fetch offset per partition) lives
//! *inside* [`QueryTables`] and is published atomically with the data it
//! describes. A restarted materializer therefore resumes with
//! [`Materializer::resume`] from the last *published* snapshot: every event
//! below the snapshot's watermark is already folded in (never re-applied),
//! every event at or above it is still in the log (keyed partitioning gives
//! per-entity total order, the broker log gives per-partition total order),
//! so the rebuilt projection is bit-identical to an unkilled run — the
//! property `tests/proptest_restart.rs` checks with [`QueryTables::digest`].
//!
//! ## Staleness
//!
//! For every applied event the materializer records `broker.now_s() -
//! message.enqueued_s`: the read plane's end-to-end lag from producer append
//! to projection visibility. [`StalenessWindow`] keeps a bounded ring of
//! recent samples; QP-1 reports its p50/p99.

use crate::delta::{DeltaBatch, DeltaHub};
use crate::snap::SnapshotCell;
use crate::tables::{ContinuityToken, QueryTables};
use parking_lot::Mutex;
use pilot_core::events::ProjEvent;
use pilot_core::ids::{PilotId, UnitId};
use pilot_streaming::{Broker, BrokerError, Retention};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bounded ring of recent staleness samples (seconds) with percentile
/// queries. Single writer (the materializer); readers take the mutex only
/// for percentile queries, never on the snapshot read path.
#[derive(Clone, Debug)]
pub struct StalenessWindow {
    buf: Vec<f64>,
    next: usize,
    len: usize,
    total: u64,
}

impl StalenessWindow {
    /// A window keeping the most recent `cap` samples.
    pub fn new(cap: usize) -> Self {
        StalenessWindow {
            buf: vec![0.0; cap.max(1)],
            next: 0,
            len: 0,
            total: 0,
        }
    }

    /// Record one staleness sample.
    pub fn record(&mut self, v: f64) {
        let cap = self.buf.len();
        self.buf[self.next] = v;
        self.next = (self.next + 1) % cap;
        self.len = (self.len + 1).min(cap);
        self.total += 1;
    }

    /// Samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Samples recorded over the window's lifetime.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum samples the ring can hold.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Resize the ring to hold `cap` samples, keeping the most recent
    /// `min(len, cap)` already-held samples (and the lifetime total).
    /// Experiments size this to their event volume so percentiles cover the
    /// whole run instead of silently reflecting the last 4096 events.
    pub fn set_capacity(&mut self, cap: usize) {
        let cap = cap.max(1);
        let keep = self.len.min(cap);
        let mut recent = Vec::with_capacity(keep);
        let old_cap = self.buf.len();
        for i in 0..keep {
            // Walk backwards from the most recently written slot.
            let idx = (self.next + old_cap - 1 - i) % old_cap;
            recent.push(self.buf[idx]);
        }
        recent.reverse();
        self.buf = vec![0.0; cap];
        self.buf[..keep].copy_from_slice(&recent);
        self.next = keep % cap;
        self.len = keep;
    }

    /// Percentile (nearest-rank) over the held samples; `q` in `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let mut v: Vec<f64> = self.buf[..self.len].to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((q.clamp(0.0, 1.0) * self.len as f64).ceil() as usize).clamp(1, self.len);
        Some(v[rank - 1])
    }
}

/// Folds one projection topic into query tables and publishes snapshots.
pub struct Materializer {
    broker: Arc<Broker>,
    topic: String,
    tables: QueryTables,
    cell: Arc<SnapshotCell<QueryTables>>,
    stale: Arc<Mutex<StalenessWindow>>,
    /// Partitions this materializer folds. The whole topic for a standalone
    /// materializer; a disjoint partition group when it serves as one shard
    /// of a `ShardedMaterializer`.
    owned: Vec<usize>,
    /// Shard index within a shard set (0 for a standalone materializer);
    /// labels published delta batches.
    shard: usize,
    /// Whether the topic compacts (latest record per key): offset gaps are
    /// then *superseded* records, not lost ones.
    compacted: bool,
    /// Publish after this many applied events (and always when a drain runs
    /// dry). Larger values batch allocation; 1 publishes every event.
    publish_every: u64,
    /// Events applied since the last publication.
    pending: u64,
    /// Events skipped because retention trimmed them before we fetched.
    events_lost: u64,
    /// Events skipped because compaction superseded them with a newer record
    /// of the same key — expected on compacted topics, and *not* data loss:
    /// the retained record carries the entity's latest state.
    events_superseded: u64,
    /// Payloads that failed to decode as `ProjEvent` (foreign traffic).
    decode_errors: u64,
    /// Delta fan-out. Dirty-entity tracking and batch construction only run
    /// while the hub has subscribers.
    hub: Arc<DeltaHub>,
    dirty_units: BTreeSet<u64>,
    dirty_pilots: BTreeSet<u64>,
    /// Newest event enqueue timestamp folded since the last publish.
    newest_enqueued_s: Option<f64>,
}

impl Materializer {
    /// Start a fresh materializer at offset 0 of every partition of `topic`.
    pub fn bootstrap(broker: Arc<Broker>, topic: &str) -> Result<Self, BrokerError> {
        let partitions = broker.partitions(topic)?;
        let owned = (0..partitions).collect();
        Self::from_tables(broker, topic, QueryTables::new(partitions), owned, 0)
    }

    /// Start a fresh materializer owning only `owned` partitions of `topic`,
    /// folding as shard `shard` of a shard set. Offsets of un-owned
    /// partitions stay 0 and their events are never fetched.
    pub fn bootstrap_shard(
        broker: Arc<Broker>,
        topic: &str,
        owned: Vec<usize>,
        shard: usize,
    ) -> Result<Self, BrokerError> {
        let partitions = broker.partitions(topic)?;
        Self::from_tables(broker, topic, QueryTables::new(partitions), owned, shard)
    }

    /// Resume from a previously *published* snapshot: the tables carry their
    /// own continuity token, so the fold restarts at the exact watermark the
    /// snapshot corresponds to — events below it are never re-applied,
    /// events at/above it are fetched again. Exactly-once, no coordination.
    pub fn resume(
        broker: Arc<Broker>,
        topic: &str,
        snapshot: &QueryTables,
    ) -> Result<Self, BrokerError> {
        let partitions = broker.partitions(topic)?;
        let owned = (0..partitions).collect();
        Self::resume_shard_inner(broker, topic, snapshot, owned, 0)
    }

    /// [`Materializer::resume`] for one shard of a shard set: the snapshot's
    /// continuity token is a per-shard offset vector (authoritative only for
    /// `owned` partitions), so each shard restarts exactly-once from its own
    /// last published snapshot, independently of its peers.
    pub fn resume_shard(
        broker: Arc<Broker>,
        topic: &str,
        snapshot: &QueryTables,
        owned: Vec<usize>,
        shard: usize,
    ) -> Result<Self, BrokerError> {
        Self::resume_shard_inner(broker, topic, snapshot, owned, shard)
    }

    fn resume_shard_inner(
        broker: Arc<Broker>,
        topic: &str,
        snapshot: &QueryTables,
        owned: Vec<usize>,
        shard: usize,
    ) -> Result<Self, BrokerError> {
        let partitions = broker.partitions(topic)?;
        let mut tables = snapshot.clone();
        // A snapshot from before a partition-count change cannot be resumed
        // positionally; treat extra/missing partitions as fresh.
        tables.offsets.resize(partitions, 0);
        Self::from_tables(broker, topic, tables, owned, shard)
    }

    fn from_tables(
        broker: Arc<Broker>,
        topic: &str,
        tables: QueryTables,
        mut owned: Vec<usize>,
        shard: usize,
    ) -> Result<Self, BrokerError> {
        let partitions = tables.offsets.len();
        owned.retain(|&p| p < partitions);
        let compacted = matches!(broker.retention(topic)?, Retention::Compact { .. });
        let cell = Arc::new(SnapshotCell::new(tables.clone()));
        Ok(Materializer {
            broker,
            topic: topic.to_string(),
            tables,
            cell,
            stale: Arc::new(Mutex::new(StalenessWindow::new(4096))),
            owned,
            shard,
            compacted,
            publish_every: 64,
            pending: 0,
            events_lost: 0,
            events_superseded: 0,
            decode_errors: 0,
            hub: Arc::new(DeltaHub::new()),
            dirty_units: BTreeSet::new(),
            dirty_pilots: BTreeSet::new(),
            newest_enqueued_s: None,
        })
    }

    /// Set the publication batch size (events applied between snapshot
    /// publications). The drain paths still force a publish when they go
    /// idle, so readers converge to the log tail regardless.
    pub fn set_publish_every(&mut self, n: u64) {
        self.publish_every = n.max(1);
    }

    /// Resize the staleness ring (keeping the most recent samples). Size it
    /// to the expected event volume when percentiles must cover a whole
    /// experiment phase rather than the last 4096 events.
    pub fn set_staleness_capacity(&mut self, cap: usize) {
        self.stale.lock().set_capacity(cap);
    }

    /// A read handle served entirely from this materializer's snapshots.
    pub fn service(&self) -> crate::service::QueryService {
        crate::service::QueryService::new(
            Arc::clone(&self.cell),
            Arc::clone(&self.stale),
            Arc::clone(&self.hub),
        )
    }

    /// Partitions this materializer folds (the whole topic unless it is one
    /// shard of a shard set).
    pub fn owned_partitions(&self) -> &[usize] {
        &self.owned
    }

    /// Shard index within a shard set (0 standalone).
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The continuity token of the *working* tables (≥ the published one).
    pub fn token(&self) -> ContinuityToken {
        self.tables.token()
    }

    /// Working tables (not necessarily published yet).
    pub fn tables(&self) -> &QueryTables {
        &self.tables
    }

    /// Events lost to retention trimming before this materializer fetched
    /// them (0 when the topic's retention outlives the consumer, which is
    /// how projection topics should be provisioned).
    pub fn events_lost(&self) -> u64 {
        self.events_lost
    }

    /// Events superseded by compaction before this materializer fetched
    /// them: a newer record of the same key replaced each one, so the fold
    /// still lands on every entity's latest state. Counted separately from
    /// [`events_lost`](Self::events_lost) — superseded is bounded bootstrap
    /// work avoided, lost is history the projection will never see.
    pub fn events_superseded(&self) -> u64 {
        self.events_superseded
    }

    /// Payloads on the topic that were not decodable projection events.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Publish the working tables now (bumps `version`). If delta
    /// subscribers are attached, also emit one coalesced [`DeltaBatch`]:
    /// the latest row of every entity the fold touched since the previous
    /// publish.
    pub fn publish(&mut self) {
        self.tables.version += 1;
        self.cell.store(self.tables.clone());
        self.pending = 0;
        if self.hub.has_subscribers()
            && !(self.dirty_units.is_empty() && self.dirty_pilots.is_empty())
        {
            let units: Vec<(u64, crate::tables::UnitRow)> = self
                .dirty_units
                .iter()
                .filter_map(|&id| self.tables.unit(UnitId(id)).map(|r| (id, *r)))
                .collect();
            let pilots: Vec<(u64, crate::tables::PilotRow)> = self
                .dirty_pilots
                .iter()
                .filter_map(|&id| self.tables.pilot(PilotId(id)).map(|r| (id, *r)))
                .collect();
            self.hub.publish(Arc::new(DeltaBatch {
                shard: self.shard,
                version: self.tables.version,
                emitted_s: self.broker.now_s(),
                newest_enqueued_s: self.newest_enqueued_s,
                dashboard: *self.tables.dashboard(),
                units,
                pilots,
                token: self.tables.token(),
            }));
        }
        self.dirty_units.clear();
        self.dirty_pilots.clear();
        self.newest_enqueued_s = None;
    }

    /// Fetch-and-fold one round: up to `max_per_partition` events from each
    /// owned partition, applied in partition order. Returns the number of
    /// events applied. Publishes whenever `publish_every` applied events
    /// have accumulated.
    pub fn poll_apply(&mut self, max_per_partition: usize) -> Result<usize, BrokerError> {
        let mut applied = 0usize;
        let now = self.broker.now_s();
        let track_dirty = self.hub.has_subscribers();
        for i in 0..self.owned.len() {
            let p = self.owned[i];
            // Retention gap: if trimming outran us, jump to the first
            // surviving offset and count what was lost — the projection is
            // then an under-approximation and says so, instead of stalling.
            let start = self.broker.start_offset(&self.topic, p)?;
            if start > self.tables.offsets[p] {
                self.events_lost += start - self.tables.offsets[p];
                self.tables.offsets[p] = start;
            }
            let msgs =
                self.broker
                    .fetch(&self.topic, p, self.tables.offsets[p], max_per_partition)?;
            if msgs.is_empty() {
                continue;
            }
            // `publish_every` is an event-count cadence contract, honored
            // even inside one large fetch: the fetched slice is folded in
            // sub-slices capped at the events remaining until the next
            // publication. This is what makes the sharded fold scale — each
            // shard publishes (clones) tables 1/Nth the size at the same
            // event cadence, so total publication cost drops N-fold.
            let mut idx = 0usize;
            while idx < msgs.len() {
                let room = self.publish_every.saturating_sub(self.pending).max(1) as usize;
                let end = (idx + room).min(msgs.len());
                let mut stale = self.stale.lock();
                for m in &msgs[idx..end] {
                    // Sparse offsets: a gap below a fetched record is records
                    // that existed but are retained no longer. On a compacted
                    // topic they were superseded by newer records of the same
                    // keys (the fold still sees every entity's latest state);
                    // on a count-retained topic a mid-poll trim lost them.
                    let gap = m.offset.saturating_sub(self.tables.offsets[p]);
                    if gap > 0 {
                        if self.compacted {
                            self.events_superseded += gap;
                        } else {
                            self.events_lost += gap;
                        }
                    }
                    match ProjEvent::decode(&m.payload) {
                        Ok(ev) => {
                            self.tables.apply(&ev);
                            if track_dirty {
                                match ev {
                                    ProjEvent::Pilot { pilot, .. }
                                    | ProjEvent::PilotCapacity { pilot, .. } => {
                                        self.dirty_pilots.insert(pilot.0);
                                    }
                                    ProjEvent::Unit { unit, .. }
                                    | ProjEvent::UnitMetric { unit, .. } => {
                                        self.dirty_units.insert(unit.0);
                                    }
                                }
                            }
                            self.newest_enqueued_s = Some(match self.newest_enqueued_s {
                                Some(prev) => prev.max(m.enqueued_s),
                                None => m.enqueued_s,
                            });
                            stale.record((now - m.enqueued_s).max(0.0));
                            applied += 1;
                            self.pending += 1;
                        }
                        Err(_) => self.decode_errors += 1,
                    }
                    self.tables.offsets[p] = m.offset + 1;
                }
                drop(stale);
                idx = end;
                if self.pending >= self.publish_every {
                    self.publish();
                }
            }
        }
        Ok(applied)
    }

    /// Records still retained ahead of the fold position, over owned
    /// partitions. Counting *retained* records (not high-watermark
    /// arithmetic) keeps lag honest on compacted topics, where superseded
    /// records between the fold position and the watermark will never be
    /// fetched.
    pub fn lag(&self) -> Result<u64, BrokerError> {
        let counts = self
            .broker
            .retained_counts(&self.topic, &self.tables.offsets)?;
        Ok(self.owned.iter().filter_map(|&p| counts.get(p)).sum())
    }

    /// Drain to the current log tail, then publish anything pending.
    /// Returns the number of events applied.
    pub fn catch_up(&mut self) -> Result<u64, BrokerError> {
        let mut total = 0u64;
        loop {
            let n = self.poll_apply(512)?;
            total += n as u64;
            if n == 0 && self.lag()? == 0 {
                break;
            }
        }
        if self.pending > 0 {
            self.publish();
        }
        Ok(total)
    }

    /// Serve as a long-running materializer thread: fold new events as they
    /// arrive, park on the broker's data signal when idle, exit when `stop`
    /// is set (after a final drain + publish) or the broker closes.
    pub fn run_until_stopped(&mut self, stop: &AtomicBool) {
        loop {
            let seen = self.broker.data_seq();
            match self.poll_apply(512) {
                Ok(0) => {
                    if self.pending > 0 {
                        self.publish();
                    }
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    self.broker.wait_for_data(seen, Duration::from_millis(5));
                }
                Ok(_) => {}
                Err(_) => break, // topic/broker gone: nothing left to fold
            }
        }
        let _ = self.catch_up();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::BrokerSink;
    use pilot_core::events::EventSink;
    use pilot_core::ids::{PilotId, UnitId};
    use pilot_core::state::{PilotState, UnitState};

    fn setup(partitions: usize) -> (Arc<Broker>, Arc<BrokerSink>) {
        let broker = Arc::new(Broker::new());
        let sink =
            BrokerSink::create(Arc::clone(&broker), "proj", partitions).expect("create sink");
        (broker, sink)
    }

    fn sample_events() -> Vec<ProjEvent> {
        let mut evs = Vec::new();
        evs.push(ProjEvent::Pilot {
            pilot: PilotId(1),
            state: PilotState::Pending,
            t_s: 0.0,
        });
        evs.push(ProjEvent::Pilot {
            pilot: PilotId(1),
            state: PilotState::Active,
            t_s: 0.1,
        });
        evs.push(ProjEvent::PilotCapacity {
            pilot: PilotId(1),
            free_cores: 4,
            total_cores: 4,
            t_s: 0.1,
        });
        for u in 0..20u64 {
            evs.push(ProjEvent::Unit {
                unit: UnitId(u),
                state: UnitState::Pending,
                pilot: None,
                t_s: 0.2,
            });
            evs.push(ProjEvent::Unit {
                unit: UnitId(u),
                state: UnitState::Assigned,
                pilot: Some(PilotId(1)),
                t_s: 0.3,
            });
            evs.push(ProjEvent::Unit {
                unit: UnitId(u),
                state: UnitState::Running,
                pilot: Some(PilotId(1)),
                t_s: 0.4,
            });
            evs.push(ProjEvent::Unit {
                unit: UnitId(u),
                state: UnitState::Done,
                pilot: Some(PilotId(1)),
                t_s: 0.5,
            });
            evs.push(ProjEvent::UnitMetric {
                unit: UnitId(u),
                wait_s: 0.1,
                exec_s: 0.1,
                t_s: 0.5,
            });
        }
        evs
    }

    #[test]
    fn catch_up_folds_everything_and_publishes() {
        let (broker, sink) = setup(4);
        let evs = sample_events();
        sink.emit_batch(&evs);
        let mut m = Materializer::bootstrap(Arc::clone(&broker), "proj").expect("bootstrap");
        let n = m.catch_up().expect("catch up");
        assert_eq!(n as usize, evs.len());
        assert_eq!(m.lag().expect("lag"), 0);
        let qs = m.service();
        let snap = qs.snapshot();
        assert_eq!(snap.events_applied, evs.len() as u64);
        assert_eq!(snap.dashboard().units_in(UnitState::Done), 20);
        assert_eq!(snap.dashboard().exec_count, 20);
        assert_eq!(snap.unit_count(), 20);
        assert_eq!(snap.unit(UnitId(7)).map(|r| r.state), Some(UnitState::Done));
        assert_eq!(
            snap.pilot(PilotId(1)).map(|r| r.state),
            Some(PilotState::Active)
        );
        assert!(qs.version() >= 1);
        assert_eq!(m.events_lost(), 0);
        assert_eq!(m.decode_errors(), 0);
    }

    #[test]
    fn incremental_polls_converge_to_the_tail() {
        let (broker, sink) = setup(2);
        let evs = sample_events();
        sink.emit_batch(&evs[..40]);
        let mut m = Materializer::bootstrap(Arc::clone(&broker), "proj").expect("bootstrap");
        m.set_publish_every(1);
        m.catch_up().expect("first drain");
        let v1 = m.service().version();
        sink.emit_batch(&evs[40..]);
        m.catch_up().expect("second drain");
        let qs = m.service();
        assert!(qs.version() > v1, "new events force a new publication");
        assert_eq!(qs.snapshot().events_applied, evs.len() as u64);
    }

    #[test]
    fn resume_from_published_snapshot_is_exactly_once() {
        let (broker, sink) = setup(3);
        let evs = sample_events();
        // Unkilled reference run.
        sink.emit_batch(&evs);
        let mut whole = Materializer::bootstrap(Arc::clone(&broker), "proj").expect("bootstrap");
        whole.catch_up().expect("reference drain");
        let want = whole.tables().digest();

        // Killed run: fold a prefix, publish sparsely, "crash", resume from
        // the last published snapshot (which trails the working tables).
        let mut a = Materializer::bootstrap(Arc::clone(&broker), "proj").expect("bootstrap");
        a.set_publish_every(10);
        for _ in 0..4 {
            a.poll_apply(3).expect("partial poll");
        }
        // Freeze publication, then fold a little further: the working tables
        // now strictly lead the last published snapshot — the crash loses
        // real progress and resume must re-fetch it.
        a.set_publish_every(1_000_000);
        a.poll_apply(3).expect("unpublished poll");
        let published = a.service().snapshot();
        assert!(
            published.events_applied < a.tables().events_applied,
            "sparse publication must trail the working fold for this test to bite"
        );
        drop(a); // crash: working tables lost, only the snapshot survives

        let mut b = Materializer::resume(Arc::clone(&broker), "proj", &published).expect("resume");
        b.catch_up().expect("resumed drain");
        assert_eq!(
            b.tables().events_applied,
            evs.len() as u64,
            "no loss, no dup"
        );
        assert_eq!(b.tables().digest(), want, "bit-identical rebuild");
    }

    #[test]
    fn retention_gap_is_counted_not_fatal() {
        let broker = Arc::new(Broker::new());
        broker.create_topic("proj", 1, 8).expect("create topic");
        let sink = BrokerSink::new(Arc::clone(&broker), "proj");
        let mut m = Materializer::bootstrap(Arc::clone(&broker), "proj").expect("bootstrap");
        // 30 events into a retention-8 partition: ≥22 are trimmed before
        // the materializer ever fetches.
        let evs: Vec<ProjEvent> = (0..30u64)
            .map(|u| ProjEvent::Unit {
                unit: UnitId(u),
                state: UnitState::Pending,
                pilot: None,
                t_s: u as f64,
            })
            .collect();
        sink.emit_batch(&evs);
        m.catch_up().expect("drain");
        assert_eq!(m.events_lost() + m.tables().events_applied, 30);
        assert!(m.events_lost() >= 22);
        assert_eq!(m.lag().expect("lag"), 0);
    }

    #[test]
    fn foreign_payloads_count_as_decode_errors() {
        let broker = Arc::new(Broker::new());
        broker.create_topic("proj", 1, 1024).expect("create topic");
        broker
            .produce("proj", Some(1), Arc::new(vec![0xFF, 0xEE]))
            .expect("produce garbage");
        let mut m = Materializer::bootstrap(Arc::clone(&broker), "proj").expect("bootstrap");
        m.catch_up().expect("drain");
        assert_eq!(m.decode_errors(), 1);
        assert_eq!(m.tables().events_applied, 0);
        assert_eq!(m.lag().expect("lag"), 0, "bad payloads still advance");
    }

    #[test]
    fn staleness_window_percentiles() {
        let mut w = StalenessWindow::new(8);
        assert_eq!(w.percentile(0.5), None);
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            w.record(v);
        }
        assert_eq!(w.percentile(0.5), Some(3.0));
        assert_eq!(w.percentile(1.0), Some(5.0));
        assert_eq!(w.percentile(0.0), Some(1.0));
        // Overflow keeps only the most recent 8.
        for v in 10..20 {
            w.record(v as f64);
        }
        assert_eq!(w.len(), 8);
        assert_eq!(w.total(), 15);
        assert_eq!(w.percentile(1.0), Some(19.0));
        assert_eq!(w.percentile(0.0), Some(12.0));
    }
}
