//! Delta subscriptions: push-based change feeds off the materializer folds.
//!
//! Polling readers pay `publish_every` staleness *plus* their own poll
//! interval; a subscriber gets the same information pushed at publish time.
//! Each [`crate::Materializer`] tracks which entities its fold touched since
//! the last publish and, when it publishes, coalesces them into one
//! [`DeltaBatch`] — latest row per dirty entity, never one message per event
//! — handed to every subscriber through a [`DeltaHub`].
//!
//! Rows are upserts and the dashboard is a full replacement, so deltas are
//! idempotent: the recommended consumption pattern is *subscribe first, then
//! read a snapshot, then apply every batch* — a batch that overlaps the
//! snapshot re-states rows the snapshot already had, which is harmless.
//! Batches from a sharded service interleave per shard; `(shard, version)`
//! orders them within one shard's feed.
//!
//! The hub is deliberately passive: when nobody subscribes, the materializer
//! skips dirty-tracking and batch construction entirely, so the delta path
//! costs nothing until someone asks for it.

use crate::tables::{ContinuityToken, Dashboard, PilotRow, UnitRow};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One coalesced publication from one shard's fold: every entity the fold
/// touched since the previous publish, at its latest state.
#[derive(Clone, Debug)]
pub struct DeltaBatch {
    /// Which shard's fold produced this batch (0 for an unsharded
    /// materializer).
    pub shard: usize,
    /// The shard's publication counter at emit time; consecutive batches
    /// from one shard carry strictly increasing versions.
    pub version: u64,
    /// Broker-timebase seconds when the batch was emitted (for push-latency
    /// measurement against event enqueue times).
    pub emitted_s: f64,
    /// Newest event enqueue timestamp folded into this batch's rows
    /// (broker timebase), `None` when no event carried one.
    pub newest_enqueued_s: Option<f64>,
    /// The emitting shard's full dashboard (replacement, not a diff — shard
    /// dashboards are summable, so a sharded consumer replaces this shard's
    /// contribution and re-sums).
    pub dashboard: Dashboard,
    /// Latest row of every unit touched since the last publish, id-ordered.
    pub units: Vec<(u64, UnitRow)>,
    /// Latest row of every pilot touched since the last publish, id-ordered.
    pub pilots: Vec<(u64, PilotRow)>,
    /// The shard's continuity token at emit time (its replay position).
    pub token: ContinuityToken,
}

impl DeltaBatch {
    /// Entities carried in this batch.
    pub fn len(&self) -> usize {
        self.units.len() + self.pilots.len()
    }

    /// Whether the batch carries no entities (pure dashboard/position move).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty() && self.pilots.is_empty()
    }
}

/// Fan-out point between one materializer (or one shard set) and its delta
/// subscribers.
#[derive(Default)]
pub struct DeltaHub {
    subscribers: Mutex<Vec<Sender<Arc<DeltaBatch>>>>,
    /// Subscriber count mirrored outside the lock so the fold's hot path can
    /// check "anyone listening?" without taking it.
    active: AtomicUsize,
}

impl DeltaHub {
    pub fn new() -> Self {
        DeltaHub::default()
    }

    /// Whether any subscriber is attached — the fold skips dirty-tracking
    /// and batch construction entirely when this is false.
    pub fn has_subscribers(&self) -> bool {
        self.active.load(Ordering::Acquire) > 0
    }

    /// Attach a new subscriber and return its receiving end.
    pub fn subscribe(self: &Arc<Self>) -> DeltaSubscription {
        let (tx, rx) = std::sync::mpsc::channel();
        self.attach(tx);
        DeltaSubscription { rx }
    }

    /// Attach an existing sender (how a sharded service funnels every
    /// shard's hub into one subscription).
    pub(crate) fn attach(&self, tx: Sender<Arc<DeltaBatch>>) {
        let mut subs = match self.subscribers.lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        subs.push(tx);
        self.active.store(subs.len(), Ordering::Release);
    }

    /// Deliver one batch to every subscriber, dropping the ones that hung
    /// up. The subscriber list is cloned out before sending so no lock is
    /// held across the channel sends.
    pub fn publish(&self, batch: Arc<DeltaBatch>) {
        let senders: Vec<Sender<Arc<DeltaBatch>>> = {
            let subs = match self.subscribers.lock() {
                Ok(s) => s,
                Err(poisoned) => poisoned.into_inner(),
            };
            subs.clone()
        };
        if senders.is_empty() {
            return;
        }
        let mut dead = false;
        let mut live: Vec<bool> = Vec::with_capacity(senders.len());
        for tx in &senders {
            let ok = tx.send(Arc::clone(&batch)).is_ok();
            dead |= !ok;
            live.push(ok);
        }
        if dead {
            let mut subs = match self.subscribers.lock() {
                Ok(s) => s,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Subscribers added concurrently sit past the cloned prefix and
            // are kept unconditionally.
            let mut it = live.iter();
            subs.retain(|_| *it.next().unwrap_or(&true));
            self.active.store(subs.len(), Ordering::Release);
        }
    }
}

/// A subscriber's receiving end of the delta feed. Dropping it detaches the
/// subscriber (the hub prunes closed channels on the next publish).
pub struct DeltaSubscription {
    rx: Receiver<Arc<DeltaBatch>>,
}

impl DeltaSubscription {
    /// Wrap a receiver whose senders were attached to one or more hubs (how
    /// the sharded service funnels all shard feeds into one subscription).
    pub(crate) fn from_receiver(rx: Receiver<Arc<DeltaBatch>>) -> Self {
        DeltaSubscription { rx }
    }

    /// Next batch if one is already queued; `None` when the feed is empty
    /// or every producer is gone.
    pub fn try_next(&self) -> Option<Arc<DeltaBatch>> {
        match self.rx.try_recv() {
            Ok(b) => Some(b),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Block up to `timeout` for the next batch.
    pub fn next_timeout(&self, timeout: Duration) -> Option<Arc<DeltaBatch>> {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => Some(b),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<Arc<DeltaBatch>> {
        let mut out = Vec::new();
        while let Some(b) = self.try_next() {
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(version: u64) -> Arc<DeltaBatch> {
        Arc::new(DeltaBatch {
            shard: 0,
            version,
            emitted_s: 0.0,
            newest_enqueued_s: None,
            dashboard: Dashboard::default(),
            units: Vec::new(),
            pilots: Vec::new(),
            token: ContinuityToken::default(),
        })
    }

    #[test]
    fn hub_fans_out_and_prunes_dead_subscribers() {
        let hub = Arc::new(DeltaHub::new());
        assert!(!hub.has_subscribers());
        hub.publish(batch(0)); // no subscribers: free no-op
        let a = hub.subscribe();
        let b = hub.subscribe();
        assert!(hub.has_subscribers());
        hub.publish(batch(1));
        assert_eq!(a.try_next().expect("a").version, 1);
        assert_eq!(b.try_next().expect("b").version, 1);
        assert!(a.try_next().is_none());
        drop(b);
        hub.publish(batch(2));
        hub.publish(batch(3));
        assert_eq!(a.drain().len(), 2);
        assert!(hub.has_subscribers(), "a is still attached");
        drop(a);
        hub.publish(batch(4));
        assert!(!hub.has_subscribers(), "dead subscribers pruned");
    }

    #[test]
    fn subscription_timeout_returns_none_when_idle() {
        let hub = Arc::new(DeltaHub::new());
        let sub = hub.subscribe();
        assert!(sub.next_timeout(Duration::from_millis(10)).is_none());
        hub.publish(batch(7));
        assert_eq!(
            sub.next_timeout(Duration::from_millis(100))
                .expect("b")
                .version,
            7
        );
    }
}
