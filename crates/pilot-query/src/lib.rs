//! # pilot-query — the read plane
//!
//! High-QPS status queries served off the event stream instead of the
//! owner's locks. Producers (the thread backend's manager loop, the fabric
//! controller's driver) export every pilot/unit state transition, capacity
//! change, and completion metric as a compact [`ProjEvent`] on a broker
//! *projection topic*; a [`Materializer`] folds the topic into
//! query-optimized [`QueryTables`] and publishes immutable snapshots through
//! a [`SnapshotCell`]; a [`QueryService`] answers every read — point lookups,
//! per-pilot utilization, whole-experiment dashboards — from the latest
//! snapshot with one atomic load and zero allocation.
//!
//! This is the paper's separation of *management* from *observation*: the
//! write path (late binding, scheduling, state machines) pays one batched
//! append per drained batch, and arbitrarily many dashboards read without
//! ever touching the service's mutex. EXP QP-1 in `pilot-bench` measures the
//! gap: projection reads sustain orders of magnitude more QPS than
//! lock-path reads while a full ST-1 write storm runs, with bounded
//! staleness (p50/p99 reported per run).
//!
//! The fold itself scales the same way the data plane does: a
//! [`ShardedMaterializer`] runs N fold workers over disjoint partition
//! groups, each publishing per-shard snapshots that a [`ShardedQueryService`]
//! merges into the global dashboard — bit-identical to a single fold,
//! because every aggregate is order-independent (see [`QueryTables::merge`]).
//! Projection topics can compact ([`BrokerSink::create_compacted`]) so
//! bootstrap cost is bounded by live entities, not event history; and
//! readers who want pushes instead of polls take
//! [`QueryService::subscribe`], a coalesced per-entity delta feed off the
//! shard folds. EXP QP-2 measures all three: fold throughput vs shard
//! count, compacted vs full-history bootstrap, and delta-push latency vs
//! poll staleness.
//!
//! ```rust
//! use pilot_core::describe::{PilotDescription, UnitDescription};
//! use pilot_core::scheduler::FirstFitScheduler;
//! use pilot_core::thread::{kernel_fn, TaskOutput, ThreadPilotService};
//! use pilot_query::{BrokerSink, Materializer};
//! use pilot_sim::SimDuration;
//! use pilot_streaming::Broker;
//! use std::sync::Arc;
//!
//! // Write side: a service wired to a projection topic.
//! let broker = Arc::new(Broker::new());
//! let sink = BrokerSink::create(Arc::clone(&broker), "proj.events", 4).unwrap();
//! let svc = ThreadPilotService::with_sink(Box::new(FirstFitScheduler), sink);
//! let pilot = svc.submit_pilot(PilotDescription::new(2, SimDuration::MAX));
//! assert!(svc.wait_pilot_active(pilot));
//! let unit = svc.submit_unit(
//!     UnitDescription::new(1),
//!     kernel_fn(|_| Ok(TaskOutput::of(42))),
//! );
//! svc.wait_unit(unit);
//! svc.shutdown();
//!
//! // Read side: materialize the topic, query the projection.
//! let mut m = Materializer::bootstrap(Arc::clone(&broker), "proj.events").unwrap();
//! m.catch_up().unwrap();
//! let qs = m.service();
//! assert_eq!(qs.dashboard().exec_count, 1);
//! assert_eq!(qs.unit_state(unit), Some(pilot_core::state::UnitState::Done));
//! ```

pub mod delta;
pub mod materializer;
pub mod service;
pub mod shard;
pub mod sink;
pub mod snap;
pub mod tables;

pub use delta::{DeltaBatch, DeltaHub, DeltaSubscription};
pub use materializer::{Materializer, StalenessWindow};
pub use service::QueryService;
pub use shard::{ShardPlan, ShardedMaterializer, ShardedQueryService};
pub use sink::{
    publish_events, BrokerSink, DEFAULT_COMPACT_TRIGGER, DEFAULT_PARTITIONS, DEFAULT_RETENTION,
};
pub use snap::SnapshotCell;
pub use tables::{ContinuityToken, Dashboard, PilotRow, QueryTables, UnitRow};
