//! The read-side API: every query is answered from the latest published
//! projection snapshot — one atomic load plus an `Arc` clone, no shared
//! mutable state, no contention with writers or with other readers.
//!
//! A [`QueryService`] is cheap to clone and `Send + Sync`: hand one to every
//! dashboard / monitoring thread. Reads see a *consistent* point-in-time
//! view (the snapshot the materializer published atomically), at most one
//! publication interval behind the log tail — the staleness the service
//! itself reports.

use crate::delta::{DeltaHub, DeltaSubscription};
use crate::materializer::StalenessWindow;
use crate::snap::SnapshotCell;
use crate::tables::{ContinuityToken, Dashboard, PilotRow, QueryTables, UnitRow};
use parking_lot::Mutex;
use pilot_core::ids::{PilotId, UnitId};
use pilot_core::state::UnitState;
use std::sync::Arc;

/// Lock-free read handle over a materializer's published snapshots.
#[derive(Clone)]
pub struct QueryService {
    cell: Arc<SnapshotCell<QueryTables>>,
    stale: Arc<Mutex<StalenessWindow>>,
    hub: Arc<DeltaHub>,
}

impl QueryService {
    pub(crate) fn new(
        cell: Arc<SnapshotCell<QueryTables>>,
        stale: Arc<Mutex<StalenessWindow>>,
        hub: Arc<DeltaHub>,
    ) -> Self {
        QueryService { cell, stale, hub }
    }

    pub(crate) fn hub(&self) -> &Arc<DeltaHub> {
        &self.hub
    }

    /// The latest published snapshot, whole. Holding the `Arc` pins a
    /// consistent view for as long as the caller wants it; later
    /// publications don't mutate it.
    pub fn snapshot(&self) -> Arc<QueryTables> {
        self.cell.load()
    }

    /// Point read: the unit's current state.
    pub fn unit_state(&self, id: UnitId) -> Option<UnitState> {
        self.cell.load().unit(id).map(|r| r.state)
    }

    /// Point read: the unit's full row.
    pub fn unit(&self, id: UnitId) -> Option<UnitRow> {
        self.cell.load().unit(id).copied()
    }

    /// Point read: the pilot's full row.
    pub fn pilot(&self, id: PilotId) -> Option<PilotRow> {
        self.cell.load().pilot(id).copied()
    }

    /// Point read: one pilot's core utilization in `[0, 1]`.
    pub fn pilot_utilization(&self, id: PilotId) -> Option<f64> {
        self.cell.load().pilot(id).map(|r| r.utilization())
    }

    /// The pre-aggregated dashboard (copied out; `Dashboard` is `Copy`).
    pub fn dashboard(&self) -> Dashboard {
        *self.cell.load().dashboard()
    }

    /// Continuity token of the published snapshot: the exact log position
    /// the answers correspond to.
    pub fn token(&self) -> ContinuityToken {
        self.cell.load().token()
    }

    /// Publication counter of the current snapshot.
    pub fn version(&self) -> u64 {
        self.cell.load().version
    }

    /// Staleness percentile (seconds, append→applied) over the recent
    /// sample window; `None` until the materializer has applied something.
    pub fn staleness(&self, q: f64) -> Option<f64> {
        self.stale.lock().percentile(q)
    }

    /// Number of staleness samples recorded so far (lifetime).
    pub fn staleness_samples(&self) -> u64 {
        self.stale.lock().total()
    }

    /// Samples currently held in the staleness ring (≤ capacity). When this
    /// equals [`staleness_samples`](Self::staleness_samples), the
    /// percentiles cover every applied event rather than a recent window.
    pub fn staleness_held(&self) -> usize {
        self.stale.lock().len()
    }

    /// Capacity of the staleness ring (configure through
    /// `Materializer::set_staleness_capacity`).
    pub fn staleness_capacity(&self) -> usize {
        self.stale.lock().capacity()
    }

    /// Subscribe to the delta feed: the materializer behind this service
    /// pushes one coalesced [`crate::DeltaBatch`] per publication — the
    /// latest row of every entity the fold touched — instead of making the
    /// reader poll snapshots. Deltas are idempotent upserts: subscribe
    /// first, then read [`snapshot`](Self::snapshot), then apply every
    /// batch; overlap with the snapshot is harmless.
    pub fn subscribe(&self) -> DeltaSubscription {
        self.hub.subscribe()
    }
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.cell.load();
        f.debug_struct("QueryService")
            .field("version", &s.version)
            .field("events_applied", &s.events_applied)
            .field("units", &s.unit_count())
            .field("pilots", &s.pilot_count())
            .finish()
    }
}
