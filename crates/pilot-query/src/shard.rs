//! Sharded materialization: N fold workers over disjoint partition groups.
//!
//! A [`ShardPlan`] assigns every partition of the projection topic to
//! exactly one shard (`p % shards`). Each shard is an ordinary
//! [`Materializer`] restricted to its partition group: it folds into its own
//! [`crate::QueryTables`], publishes through its own snapshot cell, and
//! restarts exactly-once from its own continuity token — the global token is
//! therefore a *per-shard offset vector*, and any combination of per-shard
//! snapshots is a valid restart point.
//!
//! The merge layer ([`ShardedQueryService`]) composes shard snapshots into
//! the global view. Correctness rests on two facts: keyed routing puts every
//! event of one entity in one partition (so shard tables are disjoint and
//! per-entity rows are identical to a single fold's), and every dashboard
//! aggregate is order-independent (bucket counts, integer-ns sums, the exact
//! capacity-pool invariant) — so summing per-shard dashboards reproduces the
//! single-fold dashboard bit-for-bit. `tests/proptest_restart.rs` checks the
//! digest equality under arbitrary interleavings, shard counts, publish
//! cadences, and kill schedules.
//!
//! Why shard a fold that is already cheap? Publication. A materializer
//! clones its whole table set every `publish_every` events; with U entities
//! that is O(U) per publish. N shards each clone U/N rows at 1/N the
//! per-shard event rate — total publication work drops by ~N², and the fold
//! pipeline stops being serialized behind one clone even on a single core.

use crate::delta::DeltaSubscription;
use crate::materializer::Materializer;
use crate::service::QueryService;
use crate::tables::{ContinuityToken, Dashboard, PilotRow, QueryTables, UnitRow};
use pilot_core::ids::{PilotId, UnitId};
use pilot_streaming::{key_partition, Broker, BrokerError};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Static assignment of a topic's partitions to fold shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    partitions: usize,
    shards: usize,
}

impl ShardPlan {
    /// A plan folding `partitions` partitions with `shards` workers
    /// (clamped to `1..=partitions`).
    pub fn new(partitions: usize, shards: usize) -> Self {
        let partitions = partitions.max(1);
        ShardPlan {
            partitions,
            shards: shards.clamp(1, partitions),
        }
    }

    /// Number of fold shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of topic partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The shard owning partition `p`.
    pub fn shard_of_partition(&self, p: usize) -> usize {
        p % self.shards
    }

    /// The shard owning entity `key` — routing key → partition (the
    /// broker's own hash) → owning shard. Point reads use this to ask
    /// exactly one shard.
    pub fn shard_of_key(&self, key: u64) -> usize {
        self.shard_of_partition(key_partition(key, self.partitions))
    }

    /// The partition group shard `s` owns (disjoint across shards, covers
    /// every partition).
    pub fn owned(&self, s: usize) -> Vec<usize> {
        (0..self.partitions)
            .filter(|p| self.shard_of_partition(*p) == s)
            .collect()
    }

    /// `partition_owner` vector for [`QueryTables::merge`]: element `p` is
    /// the shard owning partition `p`.
    pub fn owners(&self) -> Vec<usize> {
        (0..self.partitions)
            .map(|p| self.shard_of_partition(p))
            .collect()
    }
}

/// N fold workers over one projection topic, one per disjoint partition
/// group. Construct with [`bootstrap`](Self::bootstrap) or
/// [`resume`](Self::resume), drive with [`catch_up`](Self::catch_up) (inline)
/// or [`run_until_stopped`](Self::run_until_stopped) (one thread per shard),
/// and read through [`service`](Self::service).
pub struct ShardedMaterializer {
    plan: ShardPlan,
    shards: Vec<Materializer>,
}

impl ShardedMaterializer {
    /// Fresh shard set at offset 0 of every partition.
    pub fn bootstrap(broker: Arc<Broker>, topic: &str, shards: usize) -> Result<Self, BrokerError> {
        let plan = ShardPlan::new(broker.partitions(topic)?, shards);
        let shards = (0..plan.shards())
            .map(|s| Materializer::bootstrap_shard(Arc::clone(&broker), topic, plan.owned(s), s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedMaterializer { plan, shards })
    }

    /// Resume each shard exactly-once from its own published snapshot
    /// (`snapshots[s]` is shard `s`'s last publication; pass an empty
    /// `QueryTables` for a shard that never published). Shards restart
    /// independently: one shard's crash never rewinds another's fold.
    pub fn resume(
        broker: Arc<Broker>,
        topic: &str,
        snapshots: &[Arc<QueryTables>],
    ) -> Result<Self, BrokerError> {
        let plan = ShardPlan::new(broker.partitions(topic)?, snapshots.len().max(1));
        let empty = QueryTables::new(plan.partitions());
        let shards = (0..plan.shards())
            .map(|s| {
                let snap: &QueryTables = snapshots.get(s).map(|a| a.as_ref()).unwrap_or(&empty);
                Materializer::resume_shard(Arc::clone(&broker), topic, snap, plan.owned(s), s)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedMaterializer { plan, shards })
    }

    /// The partition→shard assignment.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The per-shard materializers (for per-shard counters and tokens).
    pub fn shards(&self) -> &[Materializer] {
        &self.shards
    }

    /// Mutable access to the per-shard materializers (for driving shards
    /// individually — partial polls, per-shard kill/resume drills).
    pub fn shards_mut(&mut self) -> &mut [Materializer] {
        &mut self.shards
    }

    /// Set every shard's publication batch size.
    pub fn set_publish_every(&mut self, n: u64) {
        for m in &mut self.shards {
            m.set_publish_every(n);
        }
    }

    /// Resize every shard's staleness ring.
    pub fn set_staleness_capacity(&mut self, cap: usize) {
        for m in &mut self.shards {
            m.set_staleness_capacity(cap);
        }
    }

    /// Drain every shard to the log tail sequentially and publish. Returns
    /// total events applied.
    pub fn catch_up(&mut self) -> Result<u64, BrokerError> {
        let mut total = 0;
        for m in &mut self.shards {
            total += m.catch_up()?;
        }
        Ok(total)
    }

    /// Run one fold worker thread per shard until `stop` is set (each worker
    /// drains and publishes before exiting). This is the parallel fold: each
    /// worker owns its partition group exclusively, so workers never contend
    /// on tables — only on the broker's per-partition locks, which the plan
    /// keeps disjoint too.
    pub fn run_until_stopped(&mut self, stop: &AtomicBool) {
        std::thread::scope(|scope| {
            for m in &mut self.shards {
                scope.spawn(|| m.run_until_stopped(stop));
            }
        });
    }

    /// Sum of per-shard retained-record lag.
    pub fn lag(&self) -> Result<u64, BrokerError> {
        self.shards.iter().map(|m| m.lag()).sum()
    }

    /// Sum of per-shard events lost to retention trimming.
    pub fn events_lost(&self) -> u64 {
        self.shards.iter().map(|m| m.events_lost()).sum()
    }

    /// Sum of per-shard events superseded by compaction.
    pub fn events_superseded(&self) -> u64 {
        self.shards.iter().map(|m| m.events_superseded()).sum()
    }

    /// Total events applied across shards (working tables).
    pub fn events_applied(&self) -> u64 {
        self.shards.iter().map(|m| m.tables().events_applied).sum()
    }

    /// The merged read handle over every shard's snapshots.
    pub fn service(&self) -> ShardedQueryService {
        ShardedQueryService {
            plan: self.plan.clone(),
            shards: self.shards.iter().map(|m| m.service()).collect(),
        }
    }
}

/// Read handle over a shard set: point reads route to the owning shard's
/// snapshot (one atomic load, exactly like the unsharded service); global
/// reads compose per-shard snapshots through order-independent aggregates.
///
/// Consistency: each per-shard answer is a consistent point-in-time view of
/// that shard's partitions. A composed answer (dashboard, [`merged`]) mixes
/// per-shard versions — each entity is internally consistent, but two
/// entities on different shards may be observed at slightly different fold
/// positions. After the folds quiesce (drained, published), the composition
/// is exact: [`merged`] then hashes bit-identically to a single-shard fold.
///
/// [`merged`]: Self::merged
#[derive(Clone)]
pub struct ShardedQueryService {
    plan: ShardPlan,
    shards: Vec<QueryService>,
}

impl ShardedQueryService {
    /// The partition→shard assignment.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Per-shard read handles, indexed by shard.
    pub fn shard_services(&self) -> &[QueryService] {
        &self.shards
    }

    /// The shard service owning entity `key`.
    fn owner(&self, key: u64) -> &QueryService {
        &self.shards[self.plan.shard_of_key(key) % self.shards.len()]
    }

    /// Point read: the unit's current state (routed to the owning shard).
    pub fn unit_state(&self, id: UnitId) -> Option<pilot_core::state::UnitState> {
        self.owner(id.0).unit_state(id)
    }

    /// Point read: the unit's full row.
    pub fn unit(&self, id: UnitId) -> Option<UnitRow> {
        self.owner(id.0).unit(id)
    }

    /// Point read: the pilot's full row.
    pub fn pilot(&self, id: PilotId) -> Option<PilotRow> {
        self.owner(id.0).pilot(id)
    }

    /// Point read: one pilot's core utilization in `[0, 1]`.
    pub fn pilot_utilization(&self, id: PilotId) -> Option<f64> {
        self.owner(id.0).pilot_utilization(id)
    }

    /// The global dashboard: per-shard dashboards summed. Every field is an
    /// order-independent aggregate over disjoint entity sets, so this equals
    /// the single-fold dashboard once the shards quiesce.
    pub fn dashboard(&self) -> Dashboard {
        let mut d = Dashboard::default();
        for s in &self.shards {
            d.absorb(&s.dashboard());
        }
        d
    }

    /// The full merged table set (all shards' snapshots composed via
    /// [`QueryTables::merge`]). Heavier than [`dashboard`](Self::dashboard)
    /// — it unions the entity maps — so reserve it for digest checks and
    /// full exports; routed point reads and the summed dashboard cover the
    /// common queries without it.
    pub fn merged(&self) -> QueryTables {
        let snaps: Vec<Arc<QueryTables>> = self.shards.iter().map(|s| s.snapshot()).collect();
        let refs: Vec<&QueryTables> = snaps.iter().map(|a| a.as_ref()).collect();
        QueryTables::merge(&refs, &self.plan.owners())
    }

    /// Per-shard continuity tokens: the global restart point is this whole
    /// vector (shard `s` resumes from `tokens()[s]`).
    pub fn tokens(&self) -> Vec<ContinuityToken> {
        self.shards.iter().map(|s| s.token()).collect()
    }

    /// Per-shard snapshots (the restart inputs for
    /// [`ShardedMaterializer::resume`]).
    pub fn shard_snapshots(&self) -> Vec<Arc<QueryTables>> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }

    /// Sum of per-shard publication counters (monotone across the set).
    pub fn version(&self) -> u64 {
        self.shards.iter().map(|s| s.version()).sum()
    }

    /// Staleness percentile across all shards' windows, by merging their
    /// held samples (seconds, append→applied).
    pub fn staleness(&self, q: f64) -> Option<f64> {
        // Each shard's percentile alone would under-weight busy shards; a
        // cheap merge over per-shard percentiles is not exact. Instead take
        // the max of per-shard percentiles as a conservative bound for p≥.5
        // style queries — exactness matters less than never under-reporting.
        self.shards
            .iter()
            .filter_map(|s| s.staleness(q))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Lifetime staleness samples across shards.
    pub fn staleness_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.staleness_samples()).sum()
    }

    /// Held staleness samples across shards.
    pub fn staleness_held(&self) -> usize {
        self.shards.iter().map(|s| s.staleness_held()).sum()
    }

    /// Subscribe to every shard's delta feed through one subscription:
    /// batches from all shards arrive on one channel, tagged with their
    /// shard index and per-shard version. The same idempotent-upsert
    /// consumption pattern applies: subscribe, snapshot each shard, apply.
    pub fn subscribe(&self) -> DeltaSubscription {
        let (tx, rx) = std::sync::mpsc::channel();
        for s in &self.shards {
            s.hub().attach(tx.clone());
        }
        drop(tx);
        DeltaSubscription::from_receiver(rx)
    }
}

impl std::fmt::Debug for ShardedQueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedQueryService")
            .field("shards", &self.shards.len())
            .field("partitions", &self.plan.partitions())
            .field("version", &self.version())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::BrokerSink;
    use pilot_core::events::{EventSink, ProjEvent};
    use pilot_core::state::{PilotState, UnitState};

    fn lifecycle_events(units: u64, pilots: u64) -> Vec<ProjEvent> {
        let mut evs = Vec::new();
        for p in 0..pilots {
            evs.push(ProjEvent::Pilot {
                pilot: PilotId(p),
                state: PilotState::Active,
                t_s: 0.1,
            });
            evs.push(ProjEvent::PilotCapacity {
                pilot: PilotId(p),
                free_cores: 8,
                total_cores: 8,
                t_s: 0.1,
            });
        }
        for u in 0..units {
            let pilot = Some(PilotId(u % pilots));
            evs.push(ProjEvent::Unit {
                unit: UnitId(u),
                state: UnitState::Pending,
                pilot: None,
                t_s: 0.2,
            });
            evs.push(ProjEvent::Unit {
                unit: UnitId(u),
                state: UnitState::Running,
                pilot,
                t_s: 0.3,
            });
            evs.push(ProjEvent::Unit {
                unit: UnitId(u),
                state: UnitState::Done,
                pilot,
                t_s: 0.4,
            });
            evs.push(ProjEvent::UnitMetric {
                unit: UnitId(u),
                wait_s: 0.1,
                exec_s: 0.2,
                t_s: 0.4,
            });
        }
        evs
    }

    fn seeded(partitions: usize) -> (Arc<Broker>, Vec<ProjEvent>) {
        let broker = Arc::new(Broker::new());
        let sink = BrokerSink::create(Arc::clone(&broker), "proj", partitions).expect("sink");
        let evs = lifecycle_events(60, 3);
        sink.emit_batch(&evs);
        (broker, evs)
    }

    #[test]
    fn plan_covers_every_partition_disjointly() {
        for (parts, shards) in [(1, 1), (4, 2), (5, 3), (8, 4), (3, 9)] {
            let plan = ShardPlan::new(parts, shards);
            assert!(plan.shards() <= parts, "shards clamp to partitions");
            let mut seen = vec![false; parts];
            for s in 0..plan.shards() {
                for p in plan.owned(s) {
                    assert!(!seen[p], "partition {p} owned twice");
                    seen[p] = true;
                    assert_eq!(plan.shard_of_partition(p), s);
                }
            }
            assert!(seen.iter().all(|&x| x), "every partition owned");
            assert_eq!(plan.owners().len(), parts);
        }
        // Key routing agrees with the broker's hash.
        let plan = ShardPlan::new(8, 4);
        for k in 0..100u64 {
            assert_eq!(
                plan.shard_of_key(k),
                plan.shard_of_partition(key_partition(k, 8))
            );
        }
    }

    #[test]
    fn sharded_fold_merges_bit_identical_to_single() {
        let (broker, evs) = seeded(8);
        // Reference: single fold over all partitions.
        let mut single = Materializer::bootstrap(Arc::clone(&broker), "proj").expect("single");
        single.catch_up().expect("single drain");
        let want = single.tables().digest();

        for shards in [1usize, 2, 3, 4] {
            let mut sm =
                ShardedMaterializer::bootstrap(Arc::clone(&broker), "proj", shards).expect("shard");
            let n = sm.catch_up().expect("drain");
            assert_eq!(n as usize, evs.len(), "{shards} shards fold everything");
            assert_eq!(sm.lag().expect("lag"), 0);
            let merged = sm.service().merged();
            assert_eq!(merged.digest(), want, "merge at {shards} shards");
            assert_eq!(merged.events_applied, evs.len() as u64);
        }
    }

    #[test]
    fn point_reads_route_to_owning_shard() {
        let (broker, _evs) = seeded(4);
        let mut sm = ShardedMaterializer::bootstrap(Arc::clone(&broker), "proj", 3).expect("shard");
        sm.catch_up().expect("drain");
        let qs = sm.service();
        for u in 0..60u64 {
            assert_eq!(
                qs.unit_state(UnitId(u)),
                Some(UnitState::Done),
                "unit {u} readable through routed point read"
            );
            assert!(qs.unit(UnitId(u)).expect("row").has_metric);
        }
        for p in 0..3u64 {
            assert_eq!(qs.pilot(PilotId(p)).expect("row").state, PilotState::Active);
            assert_eq!(qs.pilot_utilization(PilotId(p)), Some(0.0));
        }
        let d = qs.dashboard();
        assert_eq!(d.units_in(UnitState::Done), 60);
        assert_eq!(d.exec_count, 60);
        assert_eq!(d.total_cores, 24);
    }

    #[test]
    fn shard_threads_fold_in_parallel() {
        let (broker, evs) = seeded(8);
        let mut single = Materializer::bootstrap(Arc::clone(&broker), "proj").expect("single");
        single.catch_up().expect("single drain");
        let want = single.tables().digest();

        let mut sm = ShardedMaterializer::bootstrap(Arc::clone(&broker), "proj", 4).expect("shard");
        let stop = AtomicBool::new(false);
        let qs = sm.service();
        std::thread::scope(|scope| {
            let (sm, stop) = (&mut sm, &stop);
            let h = scope.spawn(move || sm.run_until_stopped(stop));
            // Wait until the folds drain, then stop the workers.
            loop {
                let applied: u64 = qs.tokens().iter().map(|t| t.events_applied).sum();
                if applied >= evs.len() as u64 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
            broker.wake_all();
            h.join().expect("workers join");
        });
        assert_eq!(sm.service().merged().digest(), want);
    }

    #[test]
    fn sharded_resume_is_exactly_once_per_shard() {
        let (broker, evs) = seeded(8);
        let mut single = Materializer::bootstrap(Arc::clone(&broker), "proj").expect("single");
        single.catch_up().expect("single drain");
        let want = single.tables().digest();

        // Fold a prefix with sparse publication, "crash", resume from the
        // per-shard published snapshots.
        let mut a = ShardedMaterializer::bootstrap(Arc::clone(&broker), "proj", 3).expect("shard");
        a.set_publish_every(7);
        for m in a.shards_mut() {
            for _ in 0..3 {
                m.poll_apply(5).expect("partial poll");
            }
        }
        let snapshots = a.service().shard_snapshots();
        let published: u64 = snapshots.iter().map(|s| s.events_applied).sum();
        assert!(
            published < evs.len() as u64,
            "crash must lose real progress for this test to bite"
        );
        drop(a);

        let mut b =
            ShardedMaterializer::resume(Arc::clone(&broker), "proj", &snapshots).expect("resume");
        b.catch_up().expect("resumed drain");
        assert_eq!(b.events_applied(), evs.len() as u64, "no loss, no dup");
        assert_eq!(b.service().merged().digest(), want);
    }

    #[test]
    fn sharded_subscription_carries_all_shards() {
        let (broker, _evs) = seeded(4);
        let mut sm = ShardedMaterializer::bootstrap(Arc::clone(&broker), "proj", 2).expect("shard");
        let qs = sm.service();
        let sub = qs.subscribe();
        sm.catch_up().expect("drain");
        let batches = sub.drain();
        assert!(!batches.is_empty());
        let mut shards_seen: Vec<usize> = batches.iter().map(|b| b.shard).collect();
        shards_seen.sort_unstable();
        shards_seen.dedup();
        assert_eq!(shards_seen, vec![0, 1], "both shards push deltas");
        // Applying all deltas as upserts reconstructs every entity row.
        let merged = qs.merged();
        let mut units: std::collections::BTreeMap<u64, UnitRow> = Default::default();
        for b in &batches {
            for (id, row) in &b.units {
                units.insert(*id, *row);
            }
        }
        assert_eq!(units.len(), merged.unit_count());
        for (id, row) in merged.units() {
            assert_eq!(units.get(&id.0), Some(row), "unit {} row matches", id.0);
        }
    }
}
