//! Query-optimized projection tables.
//!
//! [`QueryTables`] is the materialized state a [`crate::Materializer`] folds
//! the projection topic into: a unit-status table, a per-pilot capacity /
//! utilization table, and a pre-aggregated experiment [`Dashboard`]. Tables
//! are plain values — the materializer mutates a private working copy and
//! publishes immutable clones through a [`crate::SnapshotCell`], so readers
//! never contend with the fold.
//!
//! Every table write goes through `publish` (the unchecked mirror-store from
//! `pilot-core::state`): projections *copy* states the authoritative machine
//! already validated, possibly observing them out of order across entities.
//!
//! [`QueryTables::digest`] is the replay-equivalence check used by the
//! materializer restart proptest: two table sets built from the same event
//! prefix hash identically, regardless of how many times the fold was
//! interrupted and resumed. The digest deliberately excludes `version`
//! (publication count differs between a killed/resumed run and an unkilled
//! one; the *data* must not).
//!
// lint: deterministic — pure fold over events; no clocks, no I/O.

use pilot_core::events::{
    pilot_state_code, unit_state_code, ProjEvent, PILOT_STATE_COUNT, UNIT_STATE_COUNT,
};
use pilot_core::ids::{PilotId, UnitId};
use pilot_core::state::{PilotState, UnitState};
use std::collections::BTreeMap;

/// Latest observed status of one compute unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnitRow {
    pub state: UnitState,
    /// Pilot the unit was last bound to (sticky across `Running`; cleared
    /// only by an explicit unbound `Unit` event).
    pub pilot: Option<PilotId>,
    /// Producer-timebase timestamp of the last event applied to this row.
    pub event_t_s: f64,
    /// Latest observed queue wait of this unit, integer nanoseconds.
    /// Metrics are *upserts* (latest per unit, not running totals) so that a
    /// fold over a compacted topic — which only retains the newest metric
    /// event per unit — reconstructs exactly this row.
    pub wait_ns: u64,
    /// Latest observed execution time of this unit, integer nanoseconds.
    pub exec_ns: u64,
    /// Whether any `UnitMetric` event has been folded into this row (a
    /// legitimate metric can be 0 ns, so presence needs its own flag).
    pub has_metric: bool,
}

/// Latest observed status + capacity of one pilot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PilotRow {
    pub state: PilotState,
    pub free_cores: u32,
    pub total_cores: u32,
    /// Producer-timebase timestamp of the last event applied to this row.
    pub event_t_s: f64,
}

impl PilotRow {
    /// Fraction of this pilot's cores currently bound, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_cores == 0 {
            0.0
        } else {
            1.0 - self.free_cores as f64 / self.total_cores as f64
        }
    }
}

/// Pre-aggregated counters an experiment dashboard reads in O(1) — the
/// numbers ST-1-style drivers otherwise recompute by folding the whole
/// registry under its lock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dashboard {
    /// Unit count per state, indexed by `unit_state_code`.
    pub units_by_state: [u64; UNIT_STATE_COUNT],
    /// Pilot count per state, indexed by `pilot_state_code`.
    pub pilots_by_state: [u64; PILOT_STATE_COUNT],
    /// Sum of `total_cores` over non-terminal pilots.
    pub total_cores: u64,
    /// Sum of `free_cores` over non-terminal pilots.
    pub free_cores: u64,
    /// Number of units with at least one folded `UnitMetric` event. A
    /// per-unit presence count (not an event count) so a compacted topic —
    /// which retains only the newest metric per unit — folds to the same
    /// dashboard as the full history.
    pub exec_count: u64,
    /// Sum over units of the *latest* execution time, in integer
    /// nanoseconds. Integer (not f64) on purpose: partitions drain in
    /// arrival interleavings that vary run to run, and float addition is not
    /// associative — an integer sum is the same whatever the fold order,
    /// which is what makes a resumed materializer's digest bit-identical to
    /// an unkilled one, and shard-merged sums bit-identical to a
    /// single-shard fold.
    pub exec_sum_ns: u64,
    /// Sum over units of the latest queue-wait time, in integer nanoseconds.
    pub wait_sum_ns: u64,
}

/// Seconds → non-negative integer nanoseconds (the dashboard's sum unit).
fn secs_to_ns(s: f64) -> u64 {
    (s.max(0.0) * 1e9).round() as u64
}

impl Dashboard {
    fn new() -> Self {
        Dashboard {
            units_by_state: [0; UNIT_STATE_COUNT],
            pilots_by_state: [0; PILOT_STATE_COUNT],
            total_cores: 0,
            free_cores: 0,
            exec_count: 0,
            exec_sum_ns: 0,
            wait_sum_ns: 0,
        }
    }

    /// Units in the given state.
    pub fn units_in(&self, s: UnitState) -> u64 {
        self.units_by_state[unit_state_code(s) as usize]
    }

    /// Pilots in the given state.
    pub fn pilots_in(&self, s: PilotState) -> u64 {
        self.pilots_by_state[pilot_state_code(s) as usize]
    }

    /// Units not yet in a terminal state.
    pub fn open_units(&self) -> u64 {
        [
            UnitState::New,
            UnitState::Pending,
            UnitState::Assigned,
            UnitState::Staging,
            UnitState::Running,
        ]
        .iter()
        .map(|&s| self.units_in(s))
        .sum()
    }

    /// Aggregate core utilization over live pilots, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_cores == 0 {
            0.0
        } else {
            1.0 - self.free_cores as f64 / self.total_cores as f64
        }
    }

    /// Sum of unit execution times in seconds.
    pub fn exec_sum_s(&self) -> f64 {
        self.exec_sum_ns as f64 / 1e9
    }

    /// Sum of unit queue waits in seconds.
    pub fn wait_sum_s(&self) -> f64 {
        self.wait_sum_ns as f64 / 1e9
    }

    /// Mean unit execution time (seconds), 0 before the first completion.
    pub fn mean_exec_s(&self) -> f64 {
        if self.exec_count == 0 {
            0.0
        } else {
            self.exec_sum_s() / self.exec_count as f64
        }
    }

    /// Mean unit queue wait (seconds), 0 before the first completion.
    pub fn mean_wait_s(&self) -> f64 {
        if self.exec_count == 0 {
            0.0
        } else {
            self.wait_sum_s() / self.exec_count as f64
        }
    }

    /// Add another dashboard's counters into this one. Every field is an
    /// order-independent aggregate over disjoint entity sets (bucket counts,
    /// integer-ns sums, the exact capacity pool), so absorbing per-shard
    /// dashboards in any order reproduces the single-fold dashboard exactly.
    pub fn absorb(&mut self, other: &Dashboard) {
        for (a, b) in self
            .units_by_state
            .iter_mut()
            .zip(other.units_by_state.iter())
        {
            *a += b;
        }
        for (a, b) in self
            .pilots_by_state
            .iter_mut()
            .zip(other.pilots_by_state.iter())
        {
            *a += b;
        }
        self.total_cores += other.total_cores;
        self.free_cores += other.free_cores;
        self.exec_count += other.exec_count;
        self.exec_sum_ns = self.exec_sum_ns.saturating_add(other.exec_sum_ns);
        self.wait_sum_ns = self.wait_sum_ns.saturating_add(other.wait_sum_ns);
    }
}

impl Default for Dashboard {
    fn default() -> Self {
        Dashboard::new()
    }
}

/// Continuity token: the exact replay position a table set corresponds to.
/// A materializer that restarts from a published `(tables, token)` pair
/// fetches each partition from `offsets[p]` onward and reproduces the
/// unkilled fold bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ContinuityToken {
    /// Next offset to fetch, per partition of the projection topic.
    pub offsets: Vec<u64>,
    /// Total events folded into the tables this token describes.
    pub events_applied: u64,
    /// Publication counter (monotone per materializer incarnation chain).
    pub version: u64,
}

impl ContinuityToken {
    /// Compact binary encoding (LE): partition count, offsets,
    /// events_applied, version.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 * self.offsets.len() + 16);
        out.extend_from_slice(&(self.offsets.len() as u64).to_le_bytes());
        for o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(&self.events_applied.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out
    }

    /// Inverse of [`encode`](Self::encode). Returns `None` on truncation.
    pub fn decode(buf: &[u8]) -> Option<ContinuityToken> {
        let mut r = buf;
        let mut u64_at = move || -> Option<u64> {
            if r.len() < 8 {
                return None;
            }
            let (head, tail) = r.split_at(8);
            r = tail;
            let mut b = [0u8; 8];
            b.copy_from_slice(head);
            Some(u64::from_le_bytes(b))
        };
        let n = u64_at()? as usize;
        if n > (1 << 20) {
            return None;
        }
        let mut offsets = Vec::with_capacity(n);
        for _ in 0..n {
            offsets.push(u64_at()?);
        }
        Some(ContinuityToken {
            offsets,
            events_applied: u64_at()?,
            version: u64_at()?,
        })
    }
}

/// The full materialized projection: unit table, pilot table, dashboard,
/// plus the continuity bookkeeping that makes restart exactly-once.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct QueryTables {
    units: BTreeMap<u64, UnitRow>,
    pilots: BTreeMap<u64, PilotRow>,
    dashboard: Dashboard,
    /// Next offset to fetch, per partition (the fold position).
    pub offsets: Vec<u64>,
    /// Total events folded in.
    pub events_applied: u64,
    /// Publication counter; bumped by the materializer on publish, not here.
    pub version: u64,
}

impl QueryTables {
    /// Empty tables positioned at offset 0 of `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        QueryTables {
            units: BTreeMap::new(),
            pilots: BTreeMap::new(),
            dashboard: Dashboard::new(),
            offsets: vec![0; partitions],
            events_applied: 0,
            version: 0,
        }
    }

    /// Fold one event in. Pure and deterministic: the same event sequence
    /// always yields the same tables (see [`digest`](Self::digest)).
    pub fn apply(&mut self, ev: &ProjEvent) {
        match *ev {
            ProjEvent::Pilot { pilot, state, t_s } => {
                // Invariant: every known row is counted in exactly the bucket
                // of its current state. New rows enter the `New` bucket, then
                // every transition moves one count prev -> next.
                let pilots_by_state = &mut self.dashboard.pilots_by_state;
                let row = self.pilots.entry(pilot.0).or_insert_with(|| {
                    pilots_by_state[pilot_state_code(PilotState::New) as usize] += 1;
                    PilotRow {
                        state: PilotState::New,
                        free_cores: 0,
                        total_cores: 0,
                        event_t_s: t_s,
                    }
                });
                let prev = row.state;
                pilots_by_state[pilot_state_code(prev) as usize] =
                    pilots_by_state[pilot_state_code(prev) as usize].saturating_sub(1);
                PilotState::publish(&mut row.state, state);
                row.event_t_s = t_s;
                pilots_by_state[pilot_state_code(state) as usize] += 1;
                // Invariant: the capacity pool is exactly the sum of cores of
                // non-terminal rows. Terminal pilots stop contributing
                // whatever the last capacity event said; a row observed
                // leaving a terminal state (mirrors fold unchecked sequences)
                // re-contributes, keeping the sum exact in both directions —
                // exactness is what makes the fold order-independent across
                // partitions.
                if state.is_terminal() && !prev.is_terminal() {
                    self.dashboard.total_cores = self
                        .dashboard
                        .total_cores
                        .saturating_sub(row.total_cores as u64);
                    self.dashboard.free_cores = self
                        .dashboard
                        .free_cores
                        .saturating_sub(row.free_cores as u64);
                } else if !state.is_terminal() && prev.is_terminal() {
                    self.dashboard.total_cores += row.total_cores as u64;
                    self.dashboard.free_cores += row.free_cores as u64;
                }
            }
            ProjEvent::PilotCapacity {
                pilot,
                free_cores,
                total_cores,
                t_s,
            } => {
                let pilots_by_state = &mut self.dashboard.pilots_by_state;
                let row = self.pilots.entry(pilot.0).or_insert_with(|| {
                    pilots_by_state[pilot_state_code(PilotState::New) as usize] += 1;
                    PilotRow {
                        state: PilotState::New,
                        free_cores: 0,
                        total_cores: 0,
                        event_t_s: t_s,
                    }
                });
                if !row.state.is_terminal() {
                    self.dashboard.total_cores = self
                        .dashboard
                        .total_cores
                        .saturating_sub(row.total_cores as u64)
                        + total_cores as u64;
                    self.dashboard.free_cores = self
                        .dashboard
                        .free_cores
                        .saturating_sub(row.free_cores as u64)
                        + free_cores as u64;
                }
                row.free_cores = free_cores;
                row.total_cores = total_cores;
                row.event_t_s = t_s;
            }
            ProjEvent::Unit {
                unit,
                state,
                pilot,
                t_s,
            } => {
                let units_by_state = &mut self.dashboard.units_by_state;
                let row = self.units.entry(unit.0).or_insert_with(|| {
                    units_by_state[unit_state_code(UnitState::New) as usize] += 1;
                    UnitRow {
                        state: UnitState::New,
                        pilot: None,
                        event_t_s: t_s,
                        wait_ns: 0,
                        exec_ns: 0,
                        has_metric: false,
                    }
                });
                let prev = row.state;
                units_by_state[unit_state_code(prev) as usize] =
                    units_by_state[unit_state_code(prev) as usize].saturating_sub(1);
                UnitState::publish(&mut row.state, state);
                if pilot.is_some() {
                    row.pilot = pilot;
                } else if state == UnitState::Pending {
                    // Re-queued (retry / pilot crash): the old binding is void.
                    row.pilot = None;
                }
                row.event_t_s = t_s;
                units_by_state[unit_state_code(state) as usize] += 1;
            }
            ProjEvent::UnitMetric {
                unit,
                wait_s,
                exec_s,
                t_s,
            } => {
                // Metrics are upserts: the row stores the unit's *latest*
                // wait/exec and the dashboard sums are maintained as
                // Σ latest-per-unit (subtract the old contribution, add the
                // new). A compacted topic retains exactly the newest metric
                // event per unit, so its fold lands on the same row and the
                // same sums as the full history.
                let units_by_state = &mut self.dashboard.units_by_state;
                let row = self.units.entry(unit.0).or_insert_with(|| {
                    units_by_state[unit_state_code(UnitState::New) as usize] += 1;
                    UnitRow {
                        state: UnitState::New,
                        pilot: None,
                        event_t_s: t_s,
                        wait_ns: 0,
                        exec_ns: 0,
                        has_metric: false,
                    }
                });
                let (wait_ns, exec_ns) = (secs_to_ns(wait_s), secs_to_ns(exec_s));
                if row.has_metric {
                    self.dashboard.exec_sum_ns = self
                        .dashboard
                        .exec_sum_ns
                        .saturating_sub(row.exec_ns)
                        .saturating_add(exec_ns);
                    self.dashboard.wait_sum_ns = self
                        .dashboard
                        .wait_sum_ns
                        .saturating_sub(row.wait_ns)
                        .saturating_add(wait_ns);
                } else {
                    row.has_metric = true;
                    self.dashboard.exec_count += 1;
                    self.dashboard.exec_sum_ns = self.dashboard.exec_sum_ns.saturating_add(exec_ns);
                    self.dashboard.wait_sum_ns = self.dashboard.wait_sum_ns.saturating_add(wait_ns);
                }
                row.wait_ns = wait_ns;
                row.exec_ns = exec_ns;
                row.event_t_s = t_s;
            }
        }
        self.events_applied += 1;
    }

    /// Latest state of a unit, if any event for it has been observed.
    pub fn unit(&self, id: UnitId) -> Option<&UnitRow> {
        self.units.get(&id.0)
    }

    /// Latest state + capacity of a pilot.
    pub fn pilot(&self, id: PilotId) -> Option<&PilotRow> {
        self.pilots.get(&id.0)
    }

    /// The unit table, ordered by id.
    pub fn units(&self) -> impl Iterator<Item = (UnitId, &UnitRow)> {
        self.units.iter().map(|(&k, v)| (UnitId(k), v))
    }

    /// The pilot table, ordered by id.
    pub fn pilots(&self) -> impl Iterator<Item = (PilotId, &PilotRow)> {
        self.pilots.iter().map(|(&k, v)| (PilotId(k), v))
    }

    /// Number of known units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Number of known pilots.
    pub fn pilot_count(&self) -> usize {
        self.pilots.len()
    }

    /// The pre-aggregated dashboard.
    pub fn dashboard(&self) -> &Dashboard {
        &self.dashboard
    }

    /// The continuity token describing this table set's replay position.
    pub fn token(&self) -> ContinuityToken {
        ContinuityToken {
            offsets: self.offsets.clone(),
            events_applied: self.events_applied,
            version: self.version,
        }
    }

    /// Order-stable FNV-1a digest of all materialized data + fold position,
    /// excluding `version`: a resumed fold must reproduce the same digest as
    /// an uninterrupted one even though publication counts differ.
    pub fn digest(&self) -> u64 {
        self.digest_impl(true)
    }

    /// [`digest`](Self::digest) without the fold position (offsets and
    /// `events_applied`): the *data*-equivalence check. Two folds that saw
    /// different event streams converging on the same rows — the canonical
    /// case being a compacted-topic bootstrap (superseded events skipped)
    /// versus a full-history replay — hash identically here while their
    /// positional digests legitimately differ.
    pub fn data_digest(&self) -> u64 {
        self.digest_impl(false)
    }

    fn digest_impl(&self, include_position: bool) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        for (id, r) in &self.units {
            mix(&id.to_le_bytes());
            mix(&[unit_state_code(r.state)]);
            match r.pilot {
                Some(p) => {
                    mix(&[1]);
                    mix(&p.0.to_le_bytes());
                }
                None => mix(&[0]),
            }
            mix(&r.event_t_s.to_bits().to_le_bytes());
            mix(&r.wait_ns.to_le_bytes());
            mix(&r.exec_ns.to_le_bytes());
            mix(&[r.has_metric as u8]);
        }
        for (id, r) in &self.pilots {
            mix(&id.to_le_bytes());
            mix(&[pilot_state_code(r.state)]);
            mix(&r.free_cores.to_le_bytes());
            mix(&r.total_cores.to_le_bytes());
            mix(&r.event_t_s.to_bits().to_le_bytes());
        }
        let d = &self.dashboard;
        for c in d.units_by_state.iter().chain(d.pilots_by_state.iter()) {
            mix(&c.to_le_bytes());
        }
        mix(&d.total_cores.to_le_bytes());
        mix(&d.free_cores.to_le_bytes());
        mix(&d.exec_count.to_le_bytes());
        mix(&d.exec_sum_ns.to_le_bytes());
        mix(&d.wait_sum_ns.to_le_bytes());
        if include_position {
            for o in &self.offsets {
                mix(&o.to_le_bytes());
            }
            mix(&self.events_applied.to_le_bytes());
        }
        h
    }

    /// Compose per-shard table sets into the global view. `parts[s]` is the
    /// snapshot of shard `s`; `partition_owner[p]` names the shard that owns
    /// partition `p` (whose `offsets[p]` is authoritative).
    ///
    /// Keyed routing sends every event of one entity to one partition, and a
    /// shard plan assigns each partition to exactly one shard — so the
    /// shards' unit/pilot maps are disjoint and the merge is a plain union.
    /// Dashboard counters are order-independent aggregates (bucket counts,
    /// integer-ns sums, the exact capacity-pool invariant), so summing the
    /// per-shard values reproduces exactly what a single fold over all
    /// partitions would have computed: the merged [`digest`](Self::digest)
    /// is bit-identical to a single-shard fold at the same offsets.
    ///
    /// `version` is summed, making the merged version a monotone publication
    /// counter across the whole shard set.
    pub fn merge(parts: &[&QueryTables], partition_owner: &[usize]) -> QueryTables {
        let mut out = QueryTables::new(partition_owner.len());
        for t in parts {
            for (id, r) in &t.units {
                out.units.insert(*id, *r);
            }
            for (id, r) in &t.pilots {
                out.pilots.insert(*id, *r);
            }
            out.dashboard.absorb(&t.dashboard);
            out.events_applied += t.events_applied;
            out.version += t.version;
        }
        for (p, &owner) in partition_owner.iter().enumerate() {
            if let Some(t) = parts.get(owner) {
                out.offsets[p] = t.offsets.get(p).copied().unwrap_or(0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_ev(id: u64, state: UnitState, pilot: Option<u64>, t: f64) -> ProjEvent {
        ProjEvent::Unit {
            unit: UnitId(id),
            state,
            pilot: pilot.map(PilotId),
            t_s: t,
        }
    }

    #[test]
    fn unit_lifecycle_keeps_dashboard_counts_consistent() {
        let mut t = QueryTables::new(1);
        t.apply(&unit_ev(1, UnitState::Pending, None, 0.0));
        t.apply(&unit_ev(2, UnitState::Pending, None, 0.1));
        assert_eq!(t.dashboard().units_in(UnitState::Pending), 2);
        t.apply(&unit_ev(1, UnitState::Assigned, Some(7), 0.2));
        t.apply(&unit_ev(1, UnitState::Running, Some(7), 0.3));
        t.apply(&unit_ev(1, UnitState::Done, Some(7), 0.9));
        assert_eq!(t.dashboard().units_in(UnitState::Pending), 1);
        assert_eq!(t.dashboard().units_in(UnitState::Done), 1);
        assert_eq!(t.dashboard().open_units(), 1);
        let row = t.unit(UnitId(1)).expect("row");
        assert_eq!(row.state, UnitState::Done);
        assert_eq!(row.pilot, Some(PilotId(7)));
        assert_eq!(t.unit_count(), 2);
        assert_eq!(t.events_applied, 5);
    }

    #[test]
    fn requeue_clears_stale_binding() {
        let mut t = QueryTables::new(1);
        t.apply(&unit_ev(1, UnitState::Pending, None, 0.0));
        t.apply(&unit_ev(1, UnitState::Assigned, Some(3), 0.1));
        assert_eq!(t.unit(UnitId(1)).expect("row").pilot, Some(PilotId(3)));
        // Pilot crash re-queues the unit: binding voided.
        t.apply(&unit_ev(1, UnitState::Pending, None, 0.2));
        assert_eq!(t.unit(UnitId(1)).expect("row").pilot, None);
    }

    #[test]
    fn capacity_tracks_live_pilots_only() {
        let mut t = QueryTables::new(1);
        let p = PilotId(1);
        t.apply(&ProjEvent::Pilot {
            pilot: p,
            state: PilotState::Pending,
            t_s: 0.0,
        });
        t.apply(&ProjEvent::Pilot {
            pilot: p,
            state: PilotState::Active,
            t_s: 0.1,
        });
        t.apply(&ProjEvent::PilotCapacity {
            pilot: p,
            free_cores: 8,
            total_cores: 8,
            t_s: 0.1,
        });
        t.apply(&ProjEvent::PilotCapacity {
            pilot: p,
            free_cores: 5,
            total_cores: 8,
            t_s: 0.2,
        });
        assert_eq!(t.dashboard().total_cores, 8);
        assert_eq!(t.dashboard().free_cores, 5);
        assert!((t.dashboard().utilization() - 3.0 / 8.0).abs() < 1e-12);
        assert!((t.pilot(p).expect("row").utilization() - 3.0 / 8.0).abs() < 1e-12);
        // Pilot dies: its cores leave the pool entirely.
        t.apply(&ProjEvent::Pilot {
            pilot: p,
            state: PilotState::Failed,
            t_s: 0.3,
        });
        assert_eq!(t.dashboard().total_cores, 0);
        assert_eq!(t.dashboard().free_cores, 0);
        assert_eq!(t.dashboard().pilots_in(PilotState::Failed), 1);
        assert_eq!(t.dashboard().pilots_in(PilotState::Active), 0);
        // Late capacity echo for a dead pilot must not resurrect capacity.
        t.apply(&ProjEvent::PilotCapacity {
            pilot: p,
            free_cores: 8,
            total_cores: 8,
            t_s: 0.3,
        });
        assert_eq!(t.dashboard().total_cores, 0);
    }

    #[test]
    fn metrics_accumulate_means() {
        let mut t = QueryTables::new(1);
        assert_eq!(t.dashboard().mean_exec_s(), 0.0);
        t.apply(&ProjEvent::UnitMetric {
            unit: UnitId(1),
            wait_s: 1.0,
            exec_s: 2.0,
            t_s: 3.0,
        });
        t.apply(&ProjEvent::UnitMetric {
            unit: UnitId(2),
            wait_s: 3.0,
            exec_s: 4.0,
            t_s: 7.0,
        });
        assert_eq!(t.dashboard().exec_count, 2);
        assert!((t.dashboard().mean_exec_s() - 3.0).abs() < 1e-12);
        assert!((t.dashboard().mean_wait_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn metric_upsert_matches_compacted_fold() {
        // Full history: three metric events for unit 1, one for unit 2.
        let mut full = QueryTables::new(1);
        for (w, e, t) in [(1.0, 2.0, 3.0), (0.5, 0.25, 4.0), (2.0, 8.0, 5.0)] {
            full.apply(&ProjEvent::UnitMetric {
                unit: UnitId(1),
                wait_s: w,
                exec_s: e,
                t_s: t,
            });
        }
        full.apply(&ProjEvent::UnitMetric {
            unit: UnitId(2),
            wait_s: 1.0,
            exec_s: 1.0,
            t_s: 6.0,
        });
        // Sums are Σ latest-per-unit, count is units-with-metrics.
        assert_eq!(full.dashboard().exec_count, 2);
        assert!((full.dashboard().exec_sum_s() - 9.0).abs() < 1e-9);
        assert!((full.dashboard().wait_sum_s() - 3.0).abs() < 1e-9);
        let row = full.unit(UnitId(1)).expect("row");
        assert!(row.has_metric);
        assert_eq!(row.exec_ns, 8_000_000_000);
        // Compacted view: only the latest metric per unit retained. The
        // *data* converges bit-identically even though the event streams
        // (and so fold positions) differ.
        let mut compacted = QueryTables::new(1);
        compacted.apply(&ProjEvent::UnitMetric {
            unit: UnitId(1),
            wait_s: 2.0,
            exec_s: 8.0,
            t_s: 5.0,
        });
        compacted.apply(&ProjEvent::UnitMetric {
            unit: UnitId(2),
            wait_s: 1.0,
            exec_s: 1.0,
            t_s: 6.0,
        });
        assert_eq!(full.data_digest(), compacted.data_digest());
        assert_ne!(full.digest(), compacted.digest(), "positions differ");
    }

    #[test]
    fn merge_reproduces_single_fold() {
        // Partition 0 → shard 0, partition 1 → shard 1. Entities are split
        // by partition exactly as keyed routing would split them.
        let p0_events = [
            unit_ev(1, UnitState::Pending, None, 0.0),
            unit_ev(1, UnitState::Running, Some(4), 0.2),
            ProjEvent::UnitMetric {
                unit: UnitId(1),
                wait_s: 0.5,
                exec_s: 1.5,
                t_s: 0.9,
            },
        ];
        let p1_events = [
            ProjEvent::Pilot {
                pilot: PilotId(4),
                state: PilotState::Active,
                t_s: 0.1,
            },
            ProjEvent::PilotCapacity {
                pilot: PilotId(4),
                free_cores: 6,
                total_cores: 8,
                t_s: 0.15,
            },
            unit_ev(2, UnitState::Done, Some(4), 0.4),
        ];
        // Single fold over both partitions.
        let mut single = QueryTables::new(2);
        for e in p0_events.iter().chain(p1_events.iter()) {
            single.apply(e);
        }
        single.offsets = vec![3, 3];
        // Per-shard folds over their own partitions only.
        let mut s0 = QueryTables::new(2);
        for e in &p0_events {
            s0.apply(e);
        }
        s0.offsets = vec![3, 0];
        s0.version = 2;
        let mut s1 = QueryTables::new(2);
        for e in &p1_events {
            s1.apply(e);
        }
        s1.offsets = vec![0, 3];
        s1.version = 5;
        let merged = QueryTables::merge(&[&s0, &s1], &[0, 1]);
        assert_eq!(merged.digest(), single.digest());
        assert_eq!(merged.version, 7, "versions sum monotonically");
        assert_eq!(merged.dashboard().total_cores, 8);
        assert_eq!(merged.dashboard().free_cores, 6);
        assert_eq!(merged.unit_count(), 2);
        assert_eq!(merged.offsets, vec![3, 3]);
    }

    #[test]
    fn digest_is_replay_stable_and_version_blind() {
        let evs = [
            unit_ev(1, UnitState::Pending, None, 0.0),
            unit_ev(2, UnitState::Pending, None, 0.1),
            unit_ev(1, UnitState::Assigned, Some(4), 0.2),
            ProjEvent::Pilot {
                pilot: PilotId(4),
                state: PilotState::Active,
                t_s: 0.2,
            },
            unit_ev(1, UnitState::Running, Some(4), 0.3),
        ];
        let mut a = QueryTables::new(2);
        let mut b = QueryTables::new(2);
        for e in &evs {
            a.apply(e);
        }
        for e in &evs {
            b.apply(e);
        }
        b.version = 99; // publication count must not affect the digest
        assert_eq!(a.digest(), b.digest());
        let mut c = a.clone();
        c.apply(&unit_ev(1, UnitState::Done, Some(4), 0.9));
        assert_ne!(a.digest(), c.digest());
        let mut d = a.clone();
        d.offsets[1] = 17; // fold position IS part of the digest
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn continuity_token_roundtrips() {
        let tok = ContinuityToken {
            offsets: vec![3, 0, 991],
            events_applied: 994,
            version: 12,
        };
        assert_eq!(ContinuityToken::decode(&tok.encode()), Some(tok.clone()));
        assert_eq!(ContinuityToken::decode(&[1, 2, 3]), None);
        let mut short = tok.encode();
        short.truncate(short.len() - 4);
        assert_eq!(ContinuityToken::decode(&short), None);
    }
}
