//! The transport between producers and the read plane: an [`EventSink`]
//! that appends event batches to a broker projection topic.
//!
//! The write path pays exactly one keyed [`Broker::produce_batch`] call per
//! drained batch — one lock acquire per touched partition, one timestamp per
//! batch — and never blocks or fails the producer: if the broker refuses the
//! batch (closed, topic deleted), the sink counts the drop and moves on.
//! Keying by [`ProjEvent::key`] routes every event of one entity to one
//! partition, so the materializer sees per-entity total order.
//!
//! ## Compacted projection topics
//!
//! A topic created with [`BrokerSink::create_compacted`] retains the latest
//! record per key instead of the full history, bounding bootstrap cost by
//! *live entities* rather than event volume. Compaction must not key on the
//! routing key — a unit's state events and metric events share it, and one
//! kind would supersede the other — so the compacted write path splits the
//! two roles: records are routed by [`ProjEvent::key`] (entity → partition,
//! preserving per-entity total order) via the broker's own hash, but keyed
//! by [`ProjEvent::identity`] (entity + kind) through
//! [`Broker::produce_batch_routed`]. The materializer's fold is upsert-only,
//! so replaying just the retained records reconstructs exactly the rows the
//! full history would have produced.

use pilot_core::events::{EventSink, ProjEvent};
use pilot_streaming::{key_partition, Broker, BrokerError, Retention};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default partition count for projection topics: enough for parallel
/// materializers later, small enough that per-partition scans stay cheap.
pub const DEFAULT_PARTITIONS: usize = 4;

/// Default retention (records per partition) for projection topics. Sized so
/// a projection topic outlives any realistic materializer lag; a topic that
/// *does* trim is detected by `Materializer::events_lost`.
pub const DEFAULT_RETENTION: usize = 1 << 20;

/// Default compaction trigger (retained records per partition before a
/// compaction pass) for compacted projection topics. The broker adapts the
/// threshold upward to ~2× the live key count, so this only needs to bound
/// the floor.
pub const DEFAULT_COMPACT_TRIGGER: usize = 1024;

/// Broker-backed [`EventSink`].
pub struct BrokerSink {
    broker: Arc<Broker>,
    topic: String,
    dropped: AtomicU64,
    /// Compacted topics take the routed write path (entity routing,
    /// identity keys); cached at construction with the partition count.
    compacted: bool,
    partitions: usize,
}

impl BrokerSink {
    /// A sink writing to an existing topic. The topic's retention decides
    /// the write path: compacted topics get identity-keyed routed appends.
    pub fn new(broker: Arc<Broker>, topic: &str) -> Arc<Self> {
        let compacted = matches!(broker.retention(topic), Ok(Retention::Compact { .. }));
        let partitions = broker.partitions(topic).unwrap_or(0);
        Arc::new(BrokerSink {
            broker,
            topic: topic.to_string(),
            dropped: AtomicU64::new(0),
            compacted,
            partitions,
        })
    }

    /// Create the projection topic (idempotent) and return a sink on it.
    pub fn create(
        broker: Arc<Broker>,
        topic: &str,
        partitions: usize,
    ) -> Result<Arc<Self>, BrokerError> {
        match broker.create_topic(topic, partitions, DEFAULT_RETENTION) {
            Ok(()) | Err(BrokerError::TopicExists(_)) => {}
            Err(e) => return Err(e),
        }
        Ok(Self::new(broker, topic))
    }

    /// Create a *compacted* projection topic (idempotent) and return a sink
    /// on it: the broker retains the latest record per
    /// [`ProjEvent::identity`], so a bootstrap replays O(live entities)
    /// records instead of the whole history.
    pub fn create_compacted(
        broker: Arc<Broker>,
        topic: &str,
        partitions: usize,
    ) -> Result<Arc<Self>, BrokerError> {
        match broker.create_topic_with(
            topic,
            partitions,
            Retention::Compact {
                trigger: DEFAULT_COMPACT_TRIGGER,
            },
        ) {
            Ok(()) | Err(BrokerError::TopicExists(_)) => {}
            Err(e) => return Err(e),
        }
        Ok(Self::new(broker, topic))
    }

    /// The topic this sink appends to.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Events dropped because the broker refused an append (0 in healthy
    /// operation; non-zero means the read plane is missing history).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl EventSink for BrokerSink {
    fn emit_batch(&self, events: &[ProjEvent]) {
        if events.is_empty() {
            return;
        }
        let ok = if self.compacted && self.partitions > 0 {
            // Route by entity, key by (entity, kind): per-entity order stays
            // total within one partition while compaction keeps the latest
            // record of every kind.
            let records = events.iter().map(|e| {
                (
                    key_partition(e.key(), self.partitions),
                    Some(e.identity()),
                    Arc::new(e.encode()),
                )
            });
            self.broker.produce_batch_routed(&self.topic, records)
        } else {
            let records = events.iter().map(|e| (Some(e.key()), Arc::new(e.encode())));
            self.broker.produce_batch(&self.topic, records)
        };
        if ok.is_err() {
            self.dropped
                .fetch_add(events.len() as u64, Ordering::Relaxed);
        }
    }
}

/// One-shot publication of an event batch to a projection topic — the bridge
/// for producers that *accumulate* events instead of sinking them live (the
/// fabric controller is deterministic and cannot talk to the broker from
/// inside its tick loop; its driver publishes `FabricReport::events` with
/// this after the run). Compacted topics take the same identity-keyed routed
/// path as [`BrokerSink`]. Returns the number of records appended.
pub fn publish_events(
    broker: &Broker,
    topic: &str,
    events: &[ProjEvent],
) -> Result<u64, BrokerError> {
    if events.is_empty() {
        return Ok(0);
    }
    if matches!(broker.retention(topic), Ok(Retention::Compact { .. })) {
        let partitions = broker.partitions(topic)?;
        return broker.produce_batch_routed(
            topic,
            events.iter().map(|e| {
                (
                    key_partition(e.key(), partitions),
                    Some(e.identity()),
                    Arc::new(e.encode()),
                )
            }),
        );
    }
    broker.produce_batch(
        topic,
        events.iter().map(|e| (Some(e.key()), Arc::new(e.encode()))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_core::ids::UnitId;
    use pilot_core::state::UnitState;

    fn ev(u: u64) -> ProjEvent {
        ProjEvent::Unit {
            unit: UnitId(u),
            state: UnitState::Pending,
            pilot: None,
            t_s: 0.0,
        }
    }

    #[test]
    fn create_is_idempotent_and_batches_land_keyed() {
        let broker = Arc::new(Broker::new());
        let s1 = BrokerSink::create(Arc::clone(&broker), "proj", 4).expect("create");
        let _s2 = BrokerSink::create(Arc::clone(&broker), "proj", 4).expect("re-create");
        let evs: Vec<ProjEvent> = (0..50).map(ev).collect();
        s1.emit_batch(&evs);
        s1.emit_batch(&[]); // no-op
        let hw = broker.high_watermarks("proj").expect("hw");
        assert_eq!(hw.iter().sum::<u64>(), 50);
        assert_eq!(s1.dropped(), 0);
        // Same key always lands in the same partition: re-emitting unit 0's
        // event must grow exactly the partition that already held it.
        let before = broker.high_watermarks("proj").expect("hw");
        s1.emit_batch(&[ev(0), ev(0)]);
        let after = broker.high_watermarks("proj").expect("hw");
        let grew: Vec<usize> = (0..4).filter(|&p| after[p] > before[p]).collect();
        assert_eq!(grew.len(), 1);
        assert_eq!(after[grew[0]] - before[grew[0]], 2);
    }

    #[test]
    fn drops_are_counted_when_the_broker_is_gone() {
        let broker = Arc::new(Broker::new());
        let sink = BrokerSink::create(Arc::clone(&broker), "proj", 2).expect("create");
        broker.close();
        sink.emit_batch(&[ev(1), ev(2), ev(3)]);
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn compacted_sink_converges_to_full_history_rows() {
        use crate::materializer::Materializer;
        use pilot_core::state::PilotState;
        let broker = Arc::new(Broker::new());
        let full = BrokerSink::create(Arc::clone(&broker), "proj.full", 3).expect("full");
        // Tiny trigger so compaction actually runs at this test's volume;
        // `BrokerSink::new` must detect compaction from the topic itself.
        broker
            .create_topic_with("proj.compact", 3, Retention::Compact { trigger: 8 })
            .expect("compact topic");
        let compact = BrokerSink::new(Arc::clone(&broker), "proj.compact");
        // Churn: every unit transitions 4× and reports 2 metrics; pilots
        // flap capacity. Same stream to both topics.
        let mut evs = Vec::new();
        for round in 0..4u64 {
            for p in 0..2u64 {
                evs.push(ProjEvent::Pilot {
                    pilot: pilot_core::ids::PilotId(p),
                    state: PilotState::Active,
                    t_s: round as f64,
                });
                evs.push(ProjEvent::PilotCapacity {
                    pilot: pilot_core::ids::PilotId(p),
                    free_cores: (8 - round) as u32,
                    total_cores: 8,
                    t_s: round as f64 + 0.1,
                });
            }
            for u in 0..10u64 {
                evs.push(ProjEvent::Unit {
                    unit: UnitId(u),
                    state: if round < 3 {
                        UnitState::Running
                    } else {
                        UnitState::Done
                    },
                    pilot: Some(pilot_core::ids::PilotId(u % 2)),
                    t_s: round as f64 + 0.2,
                });
                if round >= 2 {
                    evs.push(ProjEvent::UnitMetric {
                        unit: UnitId(u),
                        wait_s: round as f64,
                        exec_s: round as f64 * 2.0,
                        t_s: round as f64 + 0.3,
                    });
                }
            }
        }
        full.emit_batch(&evs);
        compact.emit_batch(&evs);
        assert_eq!(full.dropped() + compact.dropped(), 0);
        let mut mf = Materializer::bootstrap(Arc::clone(&broker), "proj.full").expect("mf");
        mf.catch_up().expect("full drain");
        let mut mc = Materializer::bootstrap(Arc::clone(&broker), "proj.compact").expect("mc");
        mc.catch_up().expect("compact drain");
        // The compacted fold applied fewer events but landed on identical
        // rows + dashboard; the skipped events are counted as superseded.
        assert_eq!(
            mf.tables().data_digest(),
            mc.tables().data_digest(),
            "compacted fold reconstructs the full-history data exactly"
        );
        assert_eq!(mf.tables().events_applied, evs.len() as u64);
        assert_eq!(
            mc.tables().events_applied + mc.events_superseded(),
            evs.len() as u64,
            "superseded + applied accounts for every appended event"
        );
        assert_eq!(mc.events_lost(), 0, "superseded is not loss");
        assert!(
            mc.events_superseded() > 0,
            "this volume must actually compact for the test to bite"
        );
        // create_compacted is idempotent and detects its own topic.
        let again =
            BrokerSink::create_compacted(Arc::clone(&broker), "proj.compact", 3).expect("again");
        again.emit_batch(&evs[..5]);
        assert_eq!(again.dropped(), 0);
    }

    #[test]
    fn publish_events_appends_the_whole_batch() {
        let broker = Broker::new();
        broker.create_topic("proj", 2, 1024).expect("create");
        let evs: Vec<ProjEvent> = (0..9).map(ev).collect();
        assert_eq!(publish_events(&broker, "proj", &evs).expect("publish"), 9);
        assert_eq!(publish_events(&broker, "proj", &[]).expect("empty"), 0);
        let hw = broker.high_watermarks("proj").expect("hw");
        assert_eq!(hw.iter().sum::<u64>(), 9);
    }
}
