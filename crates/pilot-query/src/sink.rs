//! The transport between producers and the read plane: an [`EventSink`]
//! that appends event batches to a broker projection topic.
//!
//! The write path pays exactly one keyed [`Broker::produce_batch`] call per
//! drained batch — one lock acquire per touched partition, one timestamp per
//! batch — and never blocks or fails the producer: if the broker refuses the
//! batch (closed, topic deleted), the sink counts the drop and moves on.
//! Keying by [`ProjEvent::key`] routes every event of one entity to one
//! partition, so the materializer sees per-entity total order.

use pilot_core::events::{EventSink, ProjEvent};
use pilot_streaming::{Broker, BrokerError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default partition count for projection topics: enough for parallel
/// materializers later, small enough that per-partition scans stay cheap.
pub const DEFAULT_PARTITIONS: usize = 4;

/// Default retention (records per partition) for projection topics. Sized so
/// a projection topic outlives any realistic materializer lag; a topic that
/// *does* trim is detected by `Materializer::events_lost`.
pub const DEFAULT_RETENTION: usize = 1 << 20;

/// Broker-backed [`EventSink`].
pub struct BrokerSink {
    broker: Arc<Broker>,
    topic: String,
    dropped: AtomicU64,
}

impl BrokerSink {
    /// A sink writing to an existing topic.
    pub fn new(broker: Arc<Broker>, topic: &str) -> Arc<Self> {
        Arc::new(BrokerSink {
            broker,
            topic: topic.to_string(),
            dropped: AtomicU64::new(0),
        })
    }

    /// Create the projection topic (idempotent) and return a sink on it.
    pub fn create(
        broker: Arc<Broker>,
        topic: &str,
        partitions: usize,
    ) -> Result<Arc<Self>, BrokerError> {
        match broker.create_topic(topic, partitions, DEFAULT_RETENTION) {
            Ok(()) | Err(BrokerError::TopicExists(_)) => {}
            Err(e) => return Err(e),
        }
        Ok(Self::new(broker, topic))
    }

    /// The topic this sink appends to.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Events dropped because the broker refused an append (0 in healthy
    /// operation; non-zero means the read plane is missing history).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl EventSink for BrokerSink {
    fn emit_batch(&self, events: &[ProjEvent]) {
        if events.is_empty() {
            return;
        }
        let records = events.iter().map(|e| (Some(e.key()), Arc::new(e.encode())));
        if self.broker.produce_batch(&self.topic, records).is_err() {
            self.dropped
                .fetch_add(events.len() as u64, Ordering::Relaxed);
        }
    }
}

/// One-shot publication of an event batch to a projection topic — the bridge
/// for producers that *accumulate* events instead of sinking them live (the
/// fabric controller is deterministic and cannot talk to the broker from
/// inside its tick loop; its driver publishes `FabricReport::events` with
/// this after the run). Returns the number of records appended.
pub fn publish_events(
    broker: &Broker,
    topic: &str,
    events: &[ProjEvent],
) -> Result<u64, BrokerError> {
    if events.is_empty() {
        return Ok(0);
    }
    broker.produce_batch(
        topic,
        events.iter().map(|e| (Some(e.key()), Arc::new(e.encode()))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_core::ids::UnitId;
    use pilot_core::state::UnitState;

    fn ev(u: u64) -> ProjEvent {
        ProjEvent::Unit {
            unit: UnitId(u),
            state: UnitState::Pending,
            pilot: None,
            t_s: 0.0,
        }
    }

    #[test]
    fn create_is_idempotent_and_batches_land_keyed() {
        let broker = Arc::new(Broker::new());
        let s1 = BrokerSink::create(Arc::clone(&broker), "proj", 4).expect("create");
        let _s2 = BrokerSink::create(Arc::clone(&broker), "proj", 4).expect("re-create");
        let evs: Vec<ProjEvent> = (0..50).map(ev).collect();
        s1.emit_batch(&evs);
        s1.emit_batch(&[]); // no-op
        let hw = broker.high_watermarks("proj").expect("hw");
        assert_eq!(hw.iter().sum::<u64>(), 50);
        assert_eq!(s1.dropped(), 0);
        // Same key always lands in the same partition: re-emitting unit 0's
        // event must grow exactly the partition that already held it.
        let before = broker.high_watermarks("proj").expect("hw");
        s1.emit_batch(&[ev(0), ev(0)]);
        let after = broker.high_watermarks("proj").expect("hw");
        let grew: Vec<usize> = (0..4).filter(|&p| after[p] > before[p]).collect();
        assert_eq!(grew.len(), 1);
        assert_eq!(after[grew[0]] - before[grew[0]], 2);
    }

    #[test]
    fn drops_are_counted_when_the_broker_is_gone() {
        let broker = Arc::new(Broker::new());
        let sink = BrokerSink::create(Arc::clone(&broker), "proj", 2).expect("create");
        broker.close();
        sink.emit_batch(&[ev(1), ev(2), ev(3)]);
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn publish_events_appends_the_whole_batch() {
        let broker = Broker::new();
        broker.create_topic("proj", 2, 1024).expect("create");
        let evs: Vec<ProjEvent> = (0..9).map(ev).collect();
        assert_eq!(publish_events(&broker, "proj", &evs).expect("publish"), 9);
        assert_eq!(publish_events(&broker, "proj", &[]).expect("empty"), 0);
        let hw = broker.high_watermarks("proj").expect("hw");
        assert_eq!(hw.iter().sum::<u64>(), 9);
    }
}
