//! Property test: materializer restart is exactly-once.
//!
//! An arbitrary event stream goes through a [`BrokerSink`] onto a projection
//! topic. One materializer folds it uninterrupted (the reference). A second
//! one is killed at arbitrary points mid-fold — losing all working state
//! accumulated since its last publication — and resumed from the last
//! *published* snapshot each time, exactly as a restarted materializer
//! process would. The property: after the final drain, the resumed chain's
//! tables carry the same `events_applied` (0 lost, 0 duplicated — any loss
//! or re-application shifts the count) and the same [`QueryTables::digest`]
//! (bit-identical rows, dashboard, and fold position) as the unkilled run.
//!
//! Sparse publication (`publish_every` > 1) is what gives the kill teeth:
//! the working tables strictly lead the published snapshot, so every crash
//! genuinely discards progress that resume must re-fetch.

//! A second property covers the sharded fold: N workers over disjoint
//! partition groups, each killed and resumed independently from its *own*
//! published snapshot (the global continuity token is a per-shard offset
//! vector), must merge into tables whose digest is bit-identical to the
//! single-shard fold — under arbitrary partition interleavings, shard
//! counts, publish cadences, and asymmetric per-shard kill schedules.

use pilot_core::events::{pilot_state_from_code, unit_state_from_code, ProjEvent};
use pilot_core::ids::{PilotId, UnitId};
use pilot_query::{BrokerSink, Materializer, QueryTables, ShardedMaterializer};
use pilot_streaming::Broker;
use proptest::prelude::*;
use std::sync::Arc;

/// Generator-side event description: `(kind, id, code, pilot, a, b)`. The
/// offline proptest shim has no `prop_oneof`/`prop_map`, so variants are
/// encoded as a raw tuple and decoded here. Fields are range-normalized per
/// kind; states deliberately include "impossible" sequences — the projection
/// is an unchecked mirror and must fold any order deterministically.
type RawEv = (u8, u64, u8, Option<u64>, u32, u32);

fn build_events(raw: &[RawEv]) -> Vec<ProjEvent> {
    raw.iter()
        .enumerate()
        .map(|(i, &(kind, id, code, pilot, a, b))| {
            let t_s = i as f64 * 0.01;
            match kind % 4 {
                0 => ProjEvent::Pilot {
                    pilot: PilotId(id % 6),
                    state: pilot_state_from_code(1 + code % 5).expect("pilot code in range"),
                    t_s,
                },
                1 => {
                    let total = 1 + b % 16;
                    ProjEvent::PilotCapacity {
                        pilot: PilotId(id % 6),
                        free_cores: (a % 17).min(total),
                        total_cores: total,
                        t_s,
                    }
                }
                2 => ProjEvent::Unit {
                    unit: UnitId(id % 40),
                    state: unit_state_from_code(1 + code % 7).expect("unit code in range"),
                    pilot: pilot.map(|p| PilotId(p % 6)),
                    t_s,
                },
                _ => ProjEvent::UnitMetric {
                    unit: UnitId(id % 40),
                    wait_s: a as f64 / 100.0,
                    exec_s: b as f64 / 100.0,
                    t_s,
                },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn restart_at_arbitrary_kill_points_rebuilds_bit_identical_tables(
        gens in proptest::collection::vec(
            (0u8..4, 0u64..40, 0u8..8, proptest::option::of(0u64..6), 0u32..500, 0u32..500),
            20..250,
        ),
        partitions in 1usize..6,
        publish_every in 1u64..20,
        // Kill schedule: after each of these many poll rounds, crash and
        // resume from the last published snapshot.
        kill_rounds in proptest::collection::vec(1usize..6, 1..5),
        poll_chunk in 1usize..17,
    ) {
        let broker = Arc::new(Broker::new());
        let sink = BrokerSink::create(Arc::clone(&broker), "proj", partitions).unwrap();
        let events = build_events(&gens);
        // Batch in uneven chunks so partitions fill at different rates.
        for chunk in events.chunks(7) {
            use pilot_core::events::EventSink;
            sink.emit_batch(chunk);
        }

        // Reference: one materializer, never killed.
        let mut reference = Materializer::bootstrap(Arc::clone(&broker), "proj").unwrap();
        reference.catch_up().unwrap();
        let want_digest = reference.tables().digest();
        let want_applied = reference.tables().events_applied;
        prop_assert_eq!(want_applied, events.len() as u64);

        // Killed/resumed chain. Each incarnation folds a few rounds, then
        // "crashes": everything but the last published snapshot is dropped.
        let mut published: Arc<QueryTables> = {
            let m = Materializer::bootstrap(Arc::clone(&broker), "proj").unwrap();
            m.service().snapshot() // the empty bootstrap snapshot
        };
        for rounds in &kill_rounds {
            let mut m = Materializer::resume(Arc::clone(&broker), "proj", &published).unwrap();
            m.set_publish_every(publish_every);
            for _ in 0..*rounds {
                m.poll_apply(poll_chunk).unwrap();
            }
            published = m.service().snapshot();
            // m dropped here: the crash. Working tables beyond `published`
            // are lost and must be re-derived by the next incarnation.
        }
        let mut last = Materializer::resume(Arc::clone(&broker), "proj", &published).unwrap();
        last.catch_up().unwrap();

        prop_assert_eq!(last.tables().events_applied, want_applied, "lost or duplicated events");
        prop_assert_eq!(last.tables().digest(), want_digest, "rebuilt projection diverged");
        prop_assert_eq!(last.lag().unwrap(), 0);
        prop_assert_eq!(last.events_lost(), 0);
        prop_assert_eq!(last.decode_errors(), 0);

        // The published snapshot converges too (catch_up force-publishes).
        let qs = last.service();
        prop_assert_eq!(qs.snapshot().digest(), want_digest);
    }

    #[test]
    fn sharded_fold_with_kills_merges_bit_identical_to_single_fold(
        gens in proptest::collection::vec(
            (0u8..4, 0u64..40, 0u8..8, proptest::option::of(0u64..6), 0u32..500, 0u32..500),
            20..250,
        ),
        partitions in 1usize..6,
        shards in 1usize..5,
        publish_every in 1u64..20,
        // Kill schedule: after each entry's poll rounds, every shard worker
        // crashes back to its own published snapshot. Shards make *asymmetric*
        // progress within a round (shard s polls `rounds + s` times), so
        // restarts happen from divergent per-shard positions.
        kill_rounds in proptest::collection::vec(1usize..6, 1..5),
        poll_chunk in 1usize..17,
    ) {
        let broker = Arc::new(Broker::new());
        let sink = BrokerSink::create(Arc::clone(&broker), "proj", partitions).unwrap();
        let events = build_events(&gens);
        for chunk in events.chunks(7) {
            use pilot_core::events::EventSink;
            sink.emit_batch(chunk);
        }

        // Reference: one unsharded fold over the identical topic.
        let mut reference = Materializer::bootstrap(Arc::clone(&broker), "proj").unwrap();
        reference.catch_up().unwrap();
        let want_digest = reference.tables().digest();
        let want_applied = reference.tables().events_applied;

        // Killed/resumed sharded chain: the continuity token is the vector of
        // per-shard snapshots, each authoritative for its own partitions.
        let mut snapshots: Vec<Arc<QueryTables>> = {
            let sm = ShardedMaterializer::bootstrap(Arc::clone(&broker), "proj", shards).unwrap();
            sm.service().shard_snapshots()
        };
        for rounds in &kill_rounds {
            let mut sm =
                ShardedMaterializer::resume(Arc::clone(&broker), "proj", &snapshots).unwrap();
            sm.set_publish_every(publish_every);
            for (s, m) in sm.shards_mut().iter_mut().enumerate() {
                for _ in 0..rounds + s {
                    m.poll_apply(poll_chunk).unwrap();
                }
            }
            snapshots = sm.service().shard_snapshots();
            // sm dropped here: every shard crashes, losing work past its
            // last publication.
        }
        let mut last =
            ShardedMaterializer::resume(Arc::clone(&broker), "proj", &snapshots).unwrap();
        last.catch_up().unwrap();

        let merged = last.service().merged();
        prop_assert_eq!(merged.events_applied, want_applied, "lost or duplicated events");
        prop_assert_eq!(merged.digest(), want_digest, "merged projection diverged");
        prop_assert_eq!(last.lag().unwrap(), 0);
        prop_assert_eq!(last.events_lost(), 0);
    }
}
