//! DAG construction, validation, and pilot-backed execution.

use pilot_core::describe::UnitDescription;
use pilot_core::state::UnitState;
use pilot_core::thread::{kernel_fn, TaskError, TaskOutput, ThreadPilotService};
use std::any::Any;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Payload passed between stages.
pub type StageData = Arc<dyn Any + Send + Sync>;

/// Identifier of a stage within one dataflow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StageId(pub usize);

/// Errors from graph construction or execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataflowError {
    /// The graph has a cycle (names one stage on it).
    Cycle(String),
    /// An edge references an unknown stage.
    UnknownStage(StageId),
    /// A self-loop was requested.
    SelfLoop(StageId),
    /// Duplicate edge.
    DuplicateEdge(StageId, StageId),
}

impl std::fmt::Display for DataflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataflowError::Cycle(s) => write!(f, "dataflow has a cycle through '{s}'"),
            DataflowError::UnknownStage(s) => write!(f, "unknown stage {s:?}"),
            DataflowError::SelfLoop(s) => write!(f, "self-loop on {s:?}"),
            DataflowError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a:?}->{b:?}"),
        }
    }
}

impl std::error::Error for DataflowError {}

/// What a stage task sees: the collected outputs of every upstream stage.
pub struct StageInputs {
    /// Upstream stage → that stage's per-task outputs.
    inputs: HashMap<StageId, Arc<Vec<StageData>>>,
}

impl StageInputs {
    /// Outputs of one upstream stage (one entry per upstream task).
    pub fn from_stage(&self, stage: StageId) -> &[StageData] {
        self.inputs.get(&stage).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Downcast every output of an upstream stage to `T`, skipping
    /// mismatches.
    pub fn downcast_all<T: Send + Sync + 'static>(&self, stage: StageId) -> Vec<Arc<T>> {
        self.from_stage(stage)
            .iter()
            .filter_map(|d| Arc::clone(d).downcast::<T>().ok())
            .collect()
    }

    /// Number of upstream stages feeding this one.
    pub fn upstream_count(&self) -> usize {
        self.inputs.len()
    }
}

type StageWork = Arc<dyn Fn(usize, &StageInputs) -> Result<StageData, String> + Send + Sync>;

struct Stage {
    name: String,
    parallelism: usize,
    cores_per_task: u32,
    work: StageWork,
}

/// Terminal status of one stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StageStatus {
    /// All tasks completed.
    Done,
    /// At least one task failed (message of the first failure).
    Failed(String),
    /// An upstream stage failed; this one never ran.
    Skipped,
}

/// Execution report.
#[derive(Debug)]
pub struct DataflowReport {
    /// Per-stage status, indexed by `StageId`.
    pub status: Vec<StageStatus>,
    /// Per-stage wall seconds (submission of first task → last task done);
    /// 0 for skipped stages.
    pub stage_wall_s: Vec<f64>,
    /// Per-stage outputs (empty for failed/skipped stages).
    pub outputs: Vec<Vec<StageData>>,
    /// End-to-end wall seconds.
    pub total_wall_s: f64,
}

impl DataflowReport {
    /// True iff every stage completed.
    pub fn all_done(&self) -> bool {
        self.status.iter().all(|s| *s == StageStatus::Done)
    }

    /// Outputs of a stage downcast to `T`.
    pub fn stage_outputs<T: Send + Sync + 'static>(&self, stage: StageId) -> Vec<Arc<T>> {
        self.outputs[stage.0]
            .iter()
            .filter_map(|d| Arc::clone(d).downcast::<T>().ok())
            .collect()
    }
}

/// A dataflow graph under construction.
#[derive(Default)]
pub struct Dataflow {
    stages: Vec<Stage>,
    edges: Vec<(StageId, StageId)>,
}

impl Dataflow {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a stage with `parallelism` tasks of `work(task_index, inputs)`.
    pub fn add_stage(
        &mut self,
        name: &str,
        parallelism: usize,
        work: impl Fn(usize, &StageInputs) -> Result<StageData, String> + Send + Sync + 'static,
    ) -> StageId {
        self.stages.push(Stage {
            name: name.to_string(),
            parallelism: parallelism.max(1),
            cores_per_task: 1,
            work: Arc::new(work),
        });
        StageId(self.stages.len() - 1)
    }

    /// Set cores per task for a stage (default 1).
    pub fn set_cores(&mut self, stage: StageId, cores: u32) {
        self.stages[stage.0].cores_per_task = cores.max(1);
    }

    /// Declare that `to` consumes the outputs of `from`.
    pub fn add_edge(&mut self, from: StageId, to: StageId) -> Result<(), DataflowError> {
        if from.0 >= self.stages.len() {
            return Err(DataflowError::UnknownStage(from));
        }
        if to.0 >= self.stages.len() {
            return Err(DataflowError::UnknownStage(to));
        }
        if from == to {
            return Err(DataflowError::SelfLoop(from));
        }
        if self.edges.contains(&(from, to)) {
            return Err(DataflowError::DuplicateEdge(from, to));
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Kahn's algorithm; returns a topological order or the cycle error.
    pub fn topo_order(&self) -> Result<Vec<StageId>, DataflowError> {
        let n = self.stages.len();
        let mut indegree = vec![0usize; n];
        for &(_, to) in &self.edges {
            indegree[to.0] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(StageId(i));
            for &(from, to) in &self.edges {
                if from.0 == i {
                    indegree[to.0] -= 1;
                    if indegree[to.0] == 0 {
                        ready.push(to.0);
                    }
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                // lint: allow(panic, reason = "order.len() != n means Kahn's algorithm left at least one node with positive indegree")
                .expect("cycle implies a stuck node");
            return Err(DataflowError::Cycle(self.stages[stuck].name.clone()));
        }
        Ok(order)
    }

    /// Execute on an active pilot service. Independent ready stages run
    /// concurrently; each stage's tasks are pilot compute units.
    pub fn run(&self, svc: &ThreadPilotService) -> Result<DataflowReport, DataflowError> {
        let order = self.topo_order()?;
        let n = self.stages.len();
        let t0 = Instant::now();

        // Per-stage completion broadcast: (status, outputs).
        type Broadcast = Arc<(StageStatus, Arc<Vec<StageData>>)>;
        let (done_tx, done_rx) = mpsc::channel::<(usize, Broadcast, f64)>();

        let upstream: Vec<Vec<StageId>> = (0..n)
            .map(|i| {
                self.edges
                    .iter()
                    .filter(|(_, to)| to.0 == i)
                    .map(|&(from, _)| from)
                    .collect()
            })
            .collect();

        let mut completed: HashMap<usize, Broadcast> = HashMap::new();
        let mut launched = vec![false; n];
        let mut status: Vec<Option<StageStatus>> = vec![None; n];
        let mut wall = vec![0.0f64; n];
        let mut outputs: Vec<Vec<StageData>> = (0..n).map(|_| Vec::new()).collect();
        let _ = order;

        // Launch loop: a stage launches the moment all its upstreams have
        // completed. Its units are submitted immediately; a scoped waiter
        // thread collects them, so independent ready stages overlap on the
        // pilots.
        std::thread::scope(|scope| {
            let mut remaining = n;
            while remaining > 0 {
                for i in 0..n {
                    if launched[i] || !upstream[i].iter().all(|u| completed.contains_key(&u.0)) {
                        continue;
                    }
                    launched[i] = true;
                    // Upstream failure ⇒ skip.
                    let failed_upstream = upstream[i]
                        .iter()
                        .any(|u| completed[&u.0].0 != StageStatus::Done);
                    if failed_upstream {
                        let b: Broadcast = Arc::new((StageStatus::Skipped, Arc::new(Vec::new())));
                        let _ = done_tx.send((i, b, 0.0));
                        continue;
                    }
                    let inputs = StageInputs {
                        inputs: upstream[i]
                            .iter()
                            .map(|u| (*u, Arc::clone(&completed[&u.0].1)))
                            .collect(),
                    };
                    let stage = &self.stages[i];
                    let parallelism = stage.parallelism;
                    let cores = stage.cores_per_task;
                    let work = Arc::clone(&stage.work);
                    let name = stage.name.clone();
                    let tx = done_tx.clone();
                    let inputs = Arc::new(inputs);
                    let t_stage = Instant::now();
                    let units: Vec<_> = (0..parallelism)
                        .map(|task| {
                            let work = Arc::clone(&work);
                            let inputs = Arc::clone(&inputs);
                            svc.submit_unit(
                                UnitDescription::new(cores).tagged(&name),
                                kernel_fn(move |_| {
                                    work(task, &inputs).map(TaskOutput::of).map_err(TaskError)
                                }),
                            )
                        })
                        .collect();
                    scope.spawn(move || {
                        let mut outs: Vec<StageData> = Vec::with_capacity(units.len());
                        let mut failure: Option<String> = None;
                        for u in units {
                            // lint: allow(panic, reason = "unit ids come from submit_unit on this same service; wait_unit returns None only for unknown ids")
                            let r = svc.wait_unit(u).expect("unit issued by this service");
                            match (r.state, r.output) {
                                (UnitState::Done, Some(Ok(o))) => {
                                    if let Ok(d) = o.downcast::<StageData>() {
                                        outs.push(d);
                                    }
                                }
                                (_, Some(Err(e))) => failure = failure.or(Some(e.0)),
                                (s, _) => failure = failure.or(Some(format!("unit ended {s}"))),
                            }
                        }
                        let status = match failure {
                            None => StageStatus::Done,
                            Some(msg) => StageStatus::Failed(msg),
                        };
                        let broadcast: Broadcast = Arc::new((status, Arc::new(outs)));
                        let _ = tx.send((i, broadcast, t_stage.elapsed().as_secs_f64()));
                    });
                }
                // Wait for one stage to finish, then re-scan for new readiness.
                let (i, broadcast, wall_s) = done_rx
                    .recv()
                    // lint: allow(panic, reason = "each of the `remaining` stages has a spawned waiter holding a sender clone; recv cannot see a closed channel first")
                    .expect("waiter threads hold the sender until done");
                status[i] = Some(broadcast.0.clone());
                wall[i] = wall_s;
                outputs[i] = broadcast.1.iter().cloned().collect();
                completed.insert(i, broadcast);
                remaining -= 1;
            }
        });

        Ok(DataflowReport {
            status: status
                .into_iter()
                // lint: allow(panic, reason = "the loop above runs until `remaining == 0`, filling every status slot")
                .map(|s| s.expect("every stage resolved"))
                .collect(),
            stage_wall_s: wall,
            outputs,
            total_wall_s: t0.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_core::describe::PilotDescription;
    use pilot_core::scheduler::FirstFitScheduler;
    use pilot_sim::SimDuration;

    fn svc(cores: u32) -> ThreadPilotService {
        let s = ThreadPilotService::new(Box::new(FirstFitScheduler));
        let p = s.submit_pilot(PilotDescription::new(cores, SimDuration::MAX));
        assert!(s.wait_pilot_active(p));
        s
    }

    fn data<T: Send + Sync + 'static>(v: T) -> StageData {
        Arc::new(v)
    }

    #[test]
    fn linear_pipeline_passes_data() {
        let mut g = Dataflow::new();
        let gen = g.add_stage("gen", 4, |task, _| Ok(data(task as u64 + 1)));
        let sum = g.add_stage("sum", 1, move |_, inputs| {
            let xs = inputs.downcast_all::<u64>(gen);
            Ok(data(xs.iter().map(|x| **x).sum::<u64>()))
        });
        g.add_edge(gen, sum).unwrap();
        let s = svc(4);
        let report = g.run(&s).unwrap();
        assert!(report.all_done());
        let out = report.stage_outputs::<u64>(sum);
        assert_eq!(*out[0], 1 + 2 + 3 + 4);
        s.shutdown();
    }

    #[test]
    fn diamond_runs_branches_and_joins() {
        let mut g = Dataflow::new();
        let src = g.add_stage("src", 1, |_, _| Ok(data(10u32)));
        let left = g.add_stage("double", 1, move |_, inp| {
            let x = *inp.downcast_all::<u32>(StageId(0))[0];
            Ok(data(x * 2))
        });
        let right = g.add_stage("triple", 1, move |_, inp| {
            let x = *inp.downcast_all::<u32>(StageId(0))[0];
            Ok(data(x * 3))
        });
        let join = g.add_stage("join", 1, move |_, inp| {
            let l = *inp.downcast_all::<u32>(StageId(1))[0];
            let r = *inp.downcast_all::<u32>(StageId(2))[0];
            assert_eq!(inp.upstream_count(), 2);
            Ok(data(l + r))
        });
        g.add_edge(src, left).unwrap();
        g.add_edge(src, right).unwrap();
        g.add_edge(left, join).unwrap();
        g.add_edge(right, join).unwrap();
        let s = svc(4);
        let report = g.run(&s).unwrap();
        assert!(report.all_done());
        assert_eq!(*report.stage_outputs::<u32>(join)[0], 50);
        s.shutdown();
    }

    #[test]
    fn cycle_is_rejected() {
        let mut g = Dataflow::new();
        let a = g.add_stage("a", 1, |_, _| Ok(data(())));
        let b = g.add_stage("b", 1, |_, _| Ok(data(())));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, a).unwrap();
        assert!(matches!(g.topo_order(), Err(DataflowError::Cycle(_))));
        let s = svc(1);
        assert!(g.run(&s).is_err());
        s.shutdown();
    }

    #[test]
    fn edge_validation() {
        let mut g = Dataflow::new();
        let a = g.add_stage("a", 1, |_, _| Ok(data(())));
        assert_eq!(
            g.add_edge(a, StageId(9)),
            Err(DataflowError::UnknownStage(StageId(9)))
        );
        assert_eq!(g.add_edge(a, a), Err(DataflowError::SelfLoop(a)));
        let b = g.add_stage("b", 1, |_, _| Ok(data(())));
        g.add_edge(a, b).unwrap();
        assert_eq!(g.add_edge(a, b), Err(DataflowError::DuplicateEdge(a, b)));
    }

    #[test]
    fn failing_stage_skips_downstream() {
        let mut g = Dataflow::new();
        let bad = g.add_stage("bad", 2, |task, _| {
            if task == 1 {
                Err("task 1 exploded".to_string())
            } else {
                Ok(data(1u8))
            }
        });
        let after = g.add_stage("after", 1, |_, _| Ok(data(2u8)));
        let independent = g.add_stage("independent", 1, |_, _| Ok(data(3u8)));
        g.add_edge(bad, after).unwrap();
        let s = svc(4);
        let report = g.run(&s).unwrap();
        assert!(
            matches!(report.status[bad.0], StageStatus::Failed(ref m) if m.contains("exploded"))
        );
        assert_eq!(report.status[after.0], StageStatus::Skipped);
        assert_eq!(report.status[independent.0], StageStatus::Done);
        assert!(!report.all_done());
        s.shutdown();
    }

    #[test]
    fn wide_stage_uses_parallelism() {
        let mut g = Dataflow::new();
        let wide = g.add_stage("wide", 8, |task, _| Ok(data(task)));
        let s = svc(8);
        let report = g.run(&s).unwrap();
        assert_eq!(report.outputs[wide.0].len(), 8);
        assert!(report.stage_wall_s[wide.0] > 0.0);
        s.shutdown();
    }
}
