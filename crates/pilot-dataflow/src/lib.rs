//! # pilot-dataflow — DAG pipelines on the pilot-abstraction
//!
//! The dataflow scenario of Table I: applications composed of multiple
//! processing stages with data dependencies, modeled as a directed acyclic
//! graph (the lineage the paper traces from MIT's 1960s dataflow through
//! LGDF2 and Dryad). Each stage fans out into `parallelism` compute units on
//! the pilots; a stage starts the moment *all* of its upstream stages
//! complete — independent branches overlap, which is where the pipeline
//! speedup in EXP DF-1 comes from.
//!
//! Stage payloads are `Arc<dyn Any + Send + Sync>`, shared zero-copy with
//! every downstream consumer; stages downcast what they expect (mirrors how
//! external tools exchange files in the paper's workflows, minus the disk).

pub mod graph;

pub use graph::{
    Dataflow, DataflowError, DataflowReport, StageData, StageId, StageInputs, StageStatus,
};
