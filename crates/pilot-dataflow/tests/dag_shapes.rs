//! Dataflow integration: wider DAG shapes, fan-in/fan-out, and topological
//! order properties under random graphs.

use pilot_core::describe::PilotDescription;
use pilot_core::thread::ThreadPilotService;
use pilot_dataflow::{Dataflow, DataflowError, StageData, StageId};
use pilot_sim::SimDuration;
use proptest::prelude::*;
use std::sync::Arc;

fn svc(cores: u32) -> ThreadPilotService {
    let s = ThreadPilotService::new(Box::new(pilot_core::scheduler::FirstFitScheduler));
    let p = s.submit_pilot(PilotDescription::new(cores, SimDuration::MAX));
    assert!(s.wait_pilot_active(p));
    s
}

#[test]
fn fan_out_fan_in_tree() {
    // 1 source → 4 branches → 1 sink; sink sees all four branch outputs.
    let mut g = Dataflow::new();
    let src = g.add_stage("src", 1, |_, _| Ok(Arc::new(100u64) as StageData));
    let branches: Vec<StageId> = (0..4)
        .map(|b| {
            g.add_stage(&format!("branch-{b}"), 1, move |_, inputs| {
                let x = *inputs.downcast_all::<u64>(StageId(0))[0];
                Ok(Arc::new(x + b as u64) as StageData)
            })
        })
        .collect();
    let sink = g.add_stage("sink", 1, move |_, inputs| {
        let mut total = 0u64;
        for b in 1..=4usize {
            total += *inputs.downcast_all::<u64>(StageId(b))[0];
        }
        Ok(Arc::new(total) as StageData)
    });
    g.add_edge(src, branches[0]).unwrap();
    g.add_edge(src, branches[1]).unwrap();
    g.add_edge(src, branches[2]).unwrap();
    g.add_edge(src, branches[3]).unwrap();
    for b in &branches {
        g.add_edge(*b, sink).unwrap();
    }
    let s = svc(4);
    let report = g.run(&s).unwrap();
    s.shutdown();
    assert!(report.all_done());
    // 100+0 + 100+1 + 100+2 + 100+3 = 406
    assert_eq!(*report.stage_outputs::<u64>(sink)[0], 406);
}

#[test]
fn deep_chain_propagates_in_order() {
    let depth = 12;
    let mut g = Dataflow::new();
    let mut prev = g.add_stage("s0", 1, |_, _| Ok(Arc::new(1u64) as StageData));
    for i in 1..depth {
        let upstream = prev;
        prev = g.add_stage(&format!("s{i}"), 1, move |_, inputs| {
            let x = *inputs.downcast_all::<u64>(upstream)[0];
            Ok(Arc::new(x * 2) as StageData)
        });
        g.add_edge(upstream, prev).unwrap();
    }
    let s = svc(2);
    let report = g.run(&s).unwrap();
    s.shutdown();
    assert!(report.all_done());
    assert_eq!(*report.stage_outputs::<u64>(prev)[0], 1 << (depth - 1));
}

#[test]
fn skip_cascades_through_deep_downstreams() {
    let mut g = Dataflow::new();
    let bad = g.add_stage("bad", 1, |_, _| Err("root failure".to_string()));
    let mid = g.add_stage("mid", 1, |_, _| Ok(Arc::new(()) as StageData));
    let leaf = g.add_stage("leaf", 1, |_, _| Ok(Arc::new(()) as StageData));
    g.add_edge(bad, mid).unwrap();
    g.add_edge(mid, leaf).unwrap();
    let s = svc(1);
    let report = g.run(&s).unwrap();
    s.shutdown();
    use pilot_dataflow::StageStatus;
    assert!(matches!(report.status[bad.0], StageStatus::Failed(_)));
    assert_eq!(report.status[mid.0], StageStatus::Skipped);
    assert_eq!(report.status[leaf.0], StageStatus::Skipped);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random forward DAGs (edges only i→j for i<j) always topo-sort, and
    /// the order respects every edge; adding any back edge trips the cycle
    /// detector.
    #[test]
    fn random_forward_dags_sort_and_back_edges_cycle(
        n in 2usize..10,
        edges in prop::collection::vec((0usize..9, 0usize..9), 0..20),
    ) {
        let mut g = Dataflow::new();
        let ids: Vec<StageId> = (0..n)
            .map(|i| g.add_stage(&format!("s{i}"), 1, |_, _| Ok(Arc::new(()) as StageData)))
            .collect();
        let mut added = Vec::new();
        for &(a, b) in &edges {
            let (a, b) = (a % n, b % n);
            if a < b && g.add_edge(ids[a], ids[b]).is_ok() {
                added.push((a, b));
            }
        }
        let order = g.topo_order().expect("forward DAG is acyclic");
        prop_assert_eq!(order.len(), n);
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, s)| (s.0, i)).collect();
        for &(a, b) in &added {
            prop_assert!(pos[&a] < pos[&b], "edge {a}->{b} violated");
        }
        // Close a cycle with any back edge.
        if let Some(&(a, b)) = added.first() {
            g.add_edge(ids[b], ids[a]).unwrap();
            prop_assert!(matches!(g.topo_order(), Err(DataflowError::Cycle(_))));
        }
    }
}
