//! Property-based tests for the simulation substrate: distribution support
//! bounds, RNG stream behaviour, statistics identities, time arithmetic.

use pilot_sim::{percentile, summarize, Dist, SimDuration, SimRng, SimTime, Welford};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every distribution samples within its mathematical support.
    #[test]
    fn distributions_respect_their_support(
        seed in any::<u64>(),
        lo in -100.0f64..100.0,
        width in 0.1f64..100.0,
        mean in 0.1f64..50.0,
        shape in 0.5f64..4.0,
    ) {
        let mut rng = SimRng::new(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let u = Dist::uniform(lo, hi).sample(&mut rng);
            prop_assert!((lo..hi).contains(&u));
            let e = Dist::exponential(mean).sample(&mut rng);
            prop_assert!(e >= 0.0);
            let w = Dist::Weibull { shape, scale: mean }.sample(&mut rng);
            prop_assert!(w >= 0.0);
            let p = Dist::Pareto { scale: mean, alpha: shape }.sample(&mut rng);
            prop_assert!(p >= mean * (1.0 - 1e-12));
            let n = Dist::Normal { mean, std_dev: shape, min: 0.0 }.sample(&mut rng);
            prop_assert!(n >= 0.0);
            let l = Dist::LogNormal { mu: 0.0, sigma: shape }.sample(&mut rng);
            prop_assert!(l > 0.0);
        }
    }

    /// Constant and bimodal distributions only produce their atoms.
    #[test]
    fn discrete_distributions_hit_their_atoms(
        seed in any::<u64>(),
        a in -10.0f64..10.0,
        b in -10.0f64..10.0,
        p in 0.0f64..1.0,
    ) {
        let mut rng = SimRng::new(seed);
        for _ in 0..30 {
            prop_assert_eq!(Dist::constant(a).sample(&mut rng), a);
            let x = Dist::Bimodal { a, b, p }.sample(&mut rng);
            prop_assert!(x == a || x == b);
        }
    }

    /// range_u64 stays within inclusive bounds and below() below n.
    #[test]
    fn integer_sampling_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000, n in 1u64..10_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let hi = lo + span;
            let x = rng.range_u64(lo, hi);
            prop_assert!((lo..=hi).contains(&x));
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Identical seeds yield identical streams; stream ids partition the
    /// space (different ids diverge immediately with overwhelming odds over
    /// 16 draws).
    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>(), id_a in any::<u64>(), id_b in any::<u64>()) {
        let root = SimRng::new(seed);
        let mut a1 = root.stream(id_a);
        let mut a2 = root.stream(id_a);
        for _ in 0..16 {
            prop_assert_eq!(a1.next_u64(), a2.next_u64());
        }
        if id_a != id_b {
            let mut a = root.stream(id_a);
            let mut b = root.stream(id_b);
            let equal = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
            prop_assert!(equal < 16, "distinct streams should diverge");
        }
    }

    /// Welford matches the two-pass mean/variance formulas.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e4f64..1e4, 2..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
        let s = summarize(&xs);
        prop_assert_eq!(s.n, xs.len() as u64);
        prop_assert_eq!(s.min, xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max, xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Percentile is monotone in p.
    #[test]
    fn percentile_monotone_in_p(
        xs in prop::collection::vec(-1e4f64..1e4, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-12);
    }

    /// Time arithmetic: addition/subtraction identities under saturation.
    #[test]
    fn time_arithmetic_identities(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let dur = SimDuration::from_nanos(d);
        let t2 = t + dur;
        prop_assert_eq!(t2.since(t), dur);
        prop_assert_eq!(t2.checked_sub(dur), Some(t));
        prop_assert_eq!(t.since(t2), SimDuration::ZERO);
        // Ordering consistency.
        prop_assert!(t2 >= t);
        prop_assert_eq!(t.max(t2), t2);
        prop_assert_eq!(t.min(t2), t);
    }

    /// The analytic mean of common distributions matches the empirical mean.
    #[test]
    fn analytic_means_match_empirical(seed in any::<u64>(), mean in 0.5f64..20.0) {
        let mut rng = SimRng::new(seed);
        for d in [
            Dist::uniform(0.0, 2.0 * mean),
            Dist::exponential(mean),
            Dist::Bimodal { a: mean * 2.0, b: 0.0, p: 0.5 },
        ] {
            let xs = d.sample_n(&mut rng, 20_000);
            let emp = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!(
                (emp - d.mean()).abs() < 0.15 * (1.0 + d.mean()),
                "{:?}: empirical {} vs analytic {}", d, emp, d.mean()
            );
        }
    }
}
