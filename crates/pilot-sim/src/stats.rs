//! Streaming and batch statistics used by every experiment harness:
//! Welford accumulators, five-number summaries, percentiles, fixed-bucket
//! histograms, and time-weighted means for utilization metrics.

// lint: deterministic — this module must stay replayable: no wall-clock reads

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free; +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the normal-approximation 95% confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Snapshot into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }
}

/// Point summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize a slice in one pass.
pub fn summarize(xs: &[f64]) -> Summary {
    let mut w = Welford::new();
    for &x in xs {
        w.push(x);
    }
    w.summary()
}

/// Linear-interpolated percentile of an *unsorted* sample, `p` in `[0, 100]`.
///
/// Returns 0 for an empty sample. Sorts a copy; use
/// [`percentile_sorted`] inside loops over the same data.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, p)
}

/// Linear-interpolated percentile of an already-sorted sample.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// `n_buckets` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n_buckets: usize) -> Self {
        assert!(hi > lo && n_buckets > 0, "degenerate histogram");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n_buckets],
            below: 0,
            above: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let n = self.buckets.len();
            let w = (self.hi - self.lo) / n as f64;
            let idx = (((x - self.lo) / w) as usize).min(n - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of observations below range / above range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.below + self.above
    }

    /// The `[lo, hi)` bounds of bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }
}

/// Time-weighted mean of a step function, e.g. "busy cores over time".
///
/// Push `(t, v)` samples in non-decreasing `t` order; the value holds until
/// the next sample. `mean_until(t_end)` integrates through `t_end`.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    start: Option<f64>,
    last_t: f64,
    last_v: f64,
    integral: f64,
    peak: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Empty accumulator.
    pub fn new() -> Self {
        TimeWeighted {
            start: None,
            last_t: 0.0,
            last_v: 0.0,
            integral: 0.0,
            peak: f64::NEG_INFINITY,
        }
    }

    /// Record that the tracked value became `v` at time `t` (seconds).
    pub fn set(&mut self, t: f64, v: f64) {
        match self.start {
            None => {
                self.start = Some(t);
            }
            Some(_) => {
                let dt = (t - self.last_t).max(0.0);
                self.integral += self.last_v * dt;
            }
        }
        self.last_t = t;
        self.last_v = v;
        self.peak = self.peak.max(v);
    }

    /// Time-weighted mean over `[first sample, t_end]`.
    pub fn mean_until(&self, t_end: f64) -> f64 {
        let Some(start) = self.start else {
            return 0.0;
        };
        let span = t_end - start;
        if span <= 0.0 {
            return self.last_v;
        }
        let tail = (t_end - self.last_t).max(0.0);
        (self.integral + self.last_v * tail) / span
    }

    /// Largest value observed.
    pub fn peak(&self) -> f64 {
        if self.peak == f64::NEG_INFINITY {
            0.0
        } else {
            self.peak
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = summarize(&xs);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Two-pass unbiased variance = 32/7.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.summary().min, 0.0);
        let mut w1 = Welford::new();
        w1.push(3.0);
        assert_eq!(w1.mean(), 3.0);
        assert_eq!(w1.std_dev(), 0.0);
        assert_eq!(w1.ci95_half_width(), 0.0);
    }

    #[test]
    fn welford_ci_shrinks_with_n() {
        let mut small = Welford::new();
        let mut large = Welford::new();
        for i in 0..10 {
            small.push(i as f64 % 2.0);
        }
        for i in 0..1000 {
            large.push(i as f64 % 2.0);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&xs, 50.0), 5.0);
    }

    #[test]
    fn histogram_buckets_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1, 5.5] {
            h.record(x);
        }
        assert_eq!(h.buckets(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.total(), 7);
        assert_eq!(h.bucket_bounds(0), (0.0, 2.0));
        assert_eq!(h.bucket_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.set(0.0, 4.0); // 4 for 10s
        tw.set(10.0, 0.0); // 0 for 10s
        assert!((tw.mean_until(20.0) - 2.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 4.0);
    }

    #[test]
    fn time_weighted_empty_and_degenerate() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean_until(5.0), 0.0);
        assert_eq!(tw.peak(), 0.0);
        let mut tw2 = TimeWeighted::new();
        tw2.set(3.0, 7.0);
        // Zero span: report the last value rather than dividing by zero.
        assert_eq!(tw2.mean_until(3.0), 7.0);
    }
}
