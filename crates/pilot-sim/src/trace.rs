//! Structured event tracing.
//!
//! Simulated infrastructures and the pilot runtime append [`TraceRecord`]s as
//! state transitions happen; experiment code post-processes the log into the
//! tables reported in EXPERIMENTS.md. Records carry a coarse `kind` (stable,
//! filterable) plus a free-form detail string.

// lint: deterministic — this module must stay replayable: no wall-clock reads

use crate::time::SimTime;
use std::fmt;

/// One traced state transition.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of the transition.
    pub t: SimTime,
    /// Stable category, e.g. `"pilot.active"`, `"cu.done"`, `"hpc.job_start"`.
    pub kind: &'static str,
    /// Identifier of the entity involved (job id, pilot id, ...).
    pub entity: u64,
    /// Free-form detail for human inspection.
    pub detail: String,
}

/// Append-only trace log.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl TraceLog {
    /// An enabled, empty log.
    pub fn new() -> Self {
        TraceLog {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// A log that drops everything (zero-cost tracing for large sweeps).
    pub fn disabled() -> Self {
        TraceLog {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// Whether records are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append a record (no-op when disabled).
    pub fn record(
        &mut self,
        t: SimTime,
        kind: &'static str,
        entity: u64,
        detail: impl Into<String>,
    ) {
        if self.enabled {
            self.records.push(TraceRecord {
                t,
                kind,
                entity,
                detail: detail.into(),
            });
        }
    }

    /// Append with an empty detail string.
    pub fn mark(&mut self, t: SimTime, kind: &'static str, entity: u64) {
        self.record(t, kind, entity, String::new());
    }

    /// All records, in append order (which is also time order when produced
    /// by a single [`crate::Executor`]).
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff no records retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// First record of a kind for a given entity, if any.
    pub fn first(&self, kind: &str, entity: u64) -> Option<&TraceRecord> {
        self.records
            .iter()
            .find(|r| r.kind == kind && r.entity == entity)
    }

    /// Elapsed time between the first `from` and the first subsequent `to`
    /// record for an entity. `None` if either is missing or out of order.
    pub fn span(&self, entity: u64, from: &str, to: &str) -> Option<crate::SimDuration> {
        let a = self.first(from, entity)?.t;
        let b = self
            .records
            .iter()
            .find(|r| r.kind == to && r.entity == entity && r.t >= a)?
            .t;
        Some(b.since(a))
    }

    /// Merge another log's records (used when joining sub-model logs).
    pub fn extend_from(&mut self, other: &TraceLog) {
        if self.enabled {
            self.records.extend(other.records.iter().cloned());
        }
    }

    /// Render the log as an aligned text table (debugging aid).
    pub fn render(&self) -> String {
        let mut s = String::new();
        for r in &self.records {
            use fmt::Write;
            let _ = writeln!(
                s,
                "{:>12.6}  {:<24} #{:<8} {}",
                r.t.as_secs_f64(),
                r.kind,
                r.entity,
                r.detail
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn record_and_filter() {
        let mut log = TraceLog::new();
        log.record(SimTime::from_secs(1), "job.submit", 7, "cores=4");
        log.mark(SimTime::from_secs(3), "job.start", 7);
        log.mark(SimTime::from_secs(4), "job.start", 8);
        assert_eq!(log.len(), 3);
        assert_eq!(log.of_kind("job.start").count(), 2);
        assert_eq!(log.first("job.submit", 7).unwrap().detail, "cores=4");
        assert!(log.first("job.submit", 99).is_none());
    }

    #[test]
    fn span_between_kinds() {
        let mut log = TraceLog::new();
        log.mark(SimTime::from_secs(2), "a", 1);
        log.mark(SimTime::from_secs(5), "b", 1);
        log.mark(SimTime::from_secs(9), "b", 2);
        assert_eq!(log.span(1, "a", "b"), Some(SimDuration::from_secs(3)));
        assert_eq!(log.span(2, "a", "b"), None);
        assert_eq!(log.span(1, "b", "a"), None); // "a" never at/after "b"
    }

    #[test]
    fn disabled_log_drops_records() {
        let mut log = TraceLog::disabled();
        log.mark(SimTime::ZERO, "x", 1);
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn extend_and_render() {
        let mut a = TraceLog::new();
        a.mark(SimTime::ZERO, "x", 1);
        let mut b = TraceLog::new();
        b.record(SimTime::from_secs(1), "y", 2, "detail");
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        let rendered = a.render();
        assert!(rendered.contains("x"));
        assert!(rendered.contains("detail"));
    }
}
