//! # pilot-sim — deterministic discrete-event simulation engine
//!
//! Substrate for every simulated infrastructure in this workspace. The paper's
//! evaluation ran on production HPC/HTC/cloud resources; this crate provides the
//! deterministic virtual-time machinery on which those infrastructures are
//! modeled (see DESIGN.md, "Substitutions").
//!
//! The engine follows a *Mealy machine* discipline rather than a closure-based
//! one: a simulation model implements [`Machine`], receiving typed events and
//! emitting future events through an [`Outbox`]. This keeps models pure,
//! deterministic, and unit-testable without an event loop. The [`Executor`]
//! drives a machine through virtual time with a stable tie-break order
//! (time, then insertion sequence), so a given seed always yields an identical
//! trace — the reproducibility property the paper's Mini-App framework demands.
//!
//! ## Example: a deterministic M/M/1-ish queue in 20 lines
//!
//! ```rust
//! use pilot_sim::{Dist, Executor, Machine, Outbox, SimDuration, SimRng, SimTime};
//!
//! struct Queue {
//!     rng: SimRng,
//!     busy: bool,
//!     waiting: u32,
//!     served: u32,
//! }
//! enum Ev { Arrive, Depart }
//!
//! impl Machine for Queue {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, ev: Ev, out: &mut Outbox<Ev>) {
//!         match ev {
//!             Ev::Arrive => {
//!                 if self.served + self.waiting as u32 + u32::from(self.busy) < 100 {
//!                     out.after(SimDuration::from_secs_f64(self.rng.exponential(1.0)), Ev::Arrive);
//!                 }
//!                 if self.busy { self.waiting += 1; }
//!                 else {
//!                     self.busy = true;
//!                     out.after(SimDuration::from_secs_f64(Dist::exponential(0.5).sample(&mut self.rng)), Ev::Depart);
//!                 }
//!             }
//!             Ev::Depart => {
//!                 self.served += 1;
//!                 if self.waiting > 0 {
//!                     self.waiting -= 1;
//!                     out.after(SimDuration::from_secs_f64(self.rng.exponential(0.5)), Ev::Depart);
//!                 } else { self.busy = false; }
//!             }
//!         }
//!     }
//! }
//!
//! let mut ex = Executor::new(Queue { rng: SimRng::new(7), busy: false, waiting: 0, served: 0 });
//! ex.schedule_at(SimTime::ZERO, Ev::Arrive);
//! ex.run();
//! assert!(ex.machine().served > 0);
//! // Same seed, same trace: rebuild and the event count is identical.
//! let processed = ex.processed();
//! let mut ex2 = Executor::new(Queue { rng: SimRng::new(7), busy: false, waiting: 0, served: 0 });
//! ex2.schedule_at(SimTime::ZERO, Ev::Arrive);
//! ex2.run();
//! assert_eq!(ex2.processed(), processed);
//! ```
//!
//! Modules:
//! - [`time`]: nanosecond-resolution virtual time ([`SimTime`], [`SimDuration`]).
//! - [`engine`]: the [`Machine`] trait, [`Outbox`], and the [`Executor`] event loop.
//! - [`rng`]: a seedable, splittable xoshiro256++ RNG with independent streams.
//! - [`dist`]: sampling distributions for workload and infrastructure models.
//! - [`stats`]: streaming statistics, percentiles, histograms, time-weighted means.
//! - [`trace`]: structured event tracing for experiment post-processing.

// lint: deterministic — this module must stay replayable: no wall-clock reads

pub mod dist;
pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use dist::Dist;
pub use engine::{Executor, Machine, Outbox};
pub use rng::SimRng;
pub use stats::{
    percentile, percentile_sorted, summarize, Histogram, Summary, TimeWeighted, Welford,
};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceLog, TraceRecord};
