//! The discrete-event executor: a [`Machine`] receives typed events in
//! virtual-time order and emits future events through an [`Outbox`].
//!
//! Determinism contract: events fire in `(time, insertion sequence)` order.
//! Two events scheduled for the same instant fire in the order they were
//! emitted, independent of heap internals. This makes whole-simulation traces
//! reproducible byte-for-byte for a fixed seed, which the experiment harness
//! relies on (and the integration tests assert).

// lint: deterministic — this module must stay replayable: no wall-clock reads

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation model driven by typed events.
///
/// Implementations must be pure with respect to wall-clock time and any
/// non-`SimRng` randomness; all future behaviour is expressed by emitting
/// events into the [`Outbox`].
pub trait Machine {
    /// The event alphabet of this machine.
    type Event;

    /// Handle one event at virtual time `now`, emitting follow-up events.
    fn handle(&mut self, now: SimTime, event: Self::Event, out: &mut Outbox<Self::Event>);
}

/// Collector for events emitted while handling an event.
pub struct Outbox<E> {
    now: SimTime,
    emits: Vec<(SimTime, E)>,
}

impl<E> Outbox<E> {
    fn new(now: SimTime) -> Self {
        Outbox {
            now,
            emits: Vec::new(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Times in the past are clamped
    /// to "now" (they fire next, preserving causality).
    pub fn at(&mut self, at: SimTime, event: E) {
        self.emits.push((at.max(self.now), event));
    }

    /// Schedule `event` after a relative delay.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.emits.push((self.now + delay, event));
    }

    /// Schedule `event` to fire immediately (after currently queued
    /// same-instant events).
    pub fn immediately(&mut self, event: E) {
        self.emits.push((self.now, event));
    }

    /// Number of events queued in this outbox so far.
    pub fn pending(&self) -> usize {
        self.emits.len()
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Drives a [`Machine`] through virtual time.
pub struct Executor<M: Machine> {
    machine: M,
    clock: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry<M::Event>>,
    processed: u64,
    /// Hard stop against runaway models; `u64::MAX` by default.
    event_limit: u64,
}

impl<M: Machine> Executor<M> {
    /// Wrap a machine with an empty event queue at t = 0.
    pub fn new(machine: M) -> Self {
        Executor {
            machine,
            clock: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            processed: 0,
            event_limit: u64::MAX,
        }
    }

    /// Cap the total number of processed events (guards runaway models).
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Immutable access to the machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Mutable access to the machine (e.g. to read out metrics mid-run).
    pub fn machine_mut(&mut self) -> &mut M {
        &mut self.machine
    }

    /// Consume the executor, returning the machine.
    pub fn into_machine(self) -> M {
        self.machine
    }

    /// Schedule an event at an absolute time (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) {
        let entry = Entry {
            time: at.max(self.clock),
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.queue.push(entry);
    }

    /// Schedule an event after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: M::Event) {
        self.schedule_at(self.clock + delay, event);
    }

    /// Process the next event, if any. Returns `false` when the queue is
    /// empty or the event limit is reached.
    pub fn step(&mut self) -> bool {
        if self.processed >= self.event_limit {
            return false;
        }
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.time >= self.clock, "time went backwards");
        self.clock = entry.time;
        let mut out = Outbox::new(self.clock);
        self.machine.handle(self.clock, entry.event, &mut out);
        self.processed += 1;
        for (at, ev) in out.emits {
            let e = Entry {
                time: at,
                seq: self.seq,
                event: ev,
            };
            self.seq += 1;
            self.queue.push(e);
        }
        true
    }

    /// Run until the queue drains (or the event limit trips).
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the next event would fire strictly after `deadline`.
    ///
    /// The clock is advanced to `deadline` if the queue drains earlier, so
    /// time-weighted metrics integrate over the full horizon.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek() {
                Some(entry) if entry.time <= deadline => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.clock < deadline {
            self.clock = deadline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test machine: records (time, tag) of every event it sees.
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        /// When handling tag `n`, optionally emit follow-ups.
        chain: bool,
    }

    impl Machine for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, out: &mut Outbox<u32>) {
            self.seen.push((now, event));
            if self.chain && event < 3 {
                out.after(SimDuration::from_secs(1), event + 1);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut ex = Executor::new(Recorder {
            seen: vec![],
            chain: false,
        });
        ex.schedule_at(SimTime::from_secs(5), 50);
        ex.schedule_at(SimTime::from_secs(1), 10);
        ex.schedule_at(SimTime::from_secs(3), 30);
        ex.run();
        let tags: Vec<u32> = ex.machine().seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![10, 30, 50]);
        assert_eq!(ex.now(), SimTime::from_secs(5));
        assert_eq!(ex.processed(), 3);
    }

    #[test]
    fn same_instant_events_fire_in_insertion_order() {
        let mut ex = Executor::new(Recorder {
            seen: vec![],
            chain: false,
        });
        let t = SimTime::from_secs(2);
        for tag in 0..10 {
            ex.schedule_at(t, tag);
        }
        ex.run();
        let tags: Vec<u32> = ex.machine().seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chained_emission_advances_clock() {
        let mut ex = Executor::new(Recorder {
            seen: vec![],
            chain: true,
        });
        ex.schedule_at(SimTime::ZERO, 0);
        ex.run();
        assert_eq!(
            ex.machine().seen,
            vec![
                (SimTime::from_secs(0), 0),
                (SimTime::from_secs(1), 1),
                (SimTime::from_secs(2), 2),
                (SimTime::from_secs(3), 3),
            ]
        );
    }

    #[test]
    fn run_until_respects_deadline_and_advances_clock() {
        let mut ex = Executor::new(Recorder {
            seen: vec![],
            chain: false,
        });
        ex.schedule_at(SimTime::from_secs(1), 1);
        ex.schedule_at(SimTime::from_secs(10), 2);
        ex.run_until(SimTime::from_secs(5));
        assert_eq!(ex.machine().seen.len(), 1);
        assert_eq!(ex.now(), SimTime::from_secs(5));
        assert_eq!(ex.queued(), 1);
        ex.run_until(SimTime::from_secs(20));
        assert_eq!(ex.machine().seen.len(), 2);
        // Clock lands on the deadline even after the queue drains.
        assert_eq!(ex.now(), SimTime::from_secs(20));
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct PastEmitter {
            fired: Vec<SimTime>,
        }
        impl Machine for PastEmitter {
            type Event = bool;
            fn handle(&mut self, now: SimTime, first: bool, out: &mut Outbox<bool>) {
                self.fired.push(now);
                if first {
                    // Try to schedule into the past; must clamp to now.
                    out.at(SimTime::ZERO, false);
                }
            }
        }
        let mut ex = Executor::new(PastEmitter { fired: vec![] });
        ex.schedule_at(SimTime::from_secs(7), true);
        ex.run();
        assert_eq!(
            ex.machine().fired,
            vec![SimTime::from_secs(7), SimTime::from_secs(7)]
        );
    }

    #[test]
    fn event_limit_stops_runaway() {
        struct Forever;
        impl Machine for Forever {
            type Event = ();
            fn handle(&mut self, _now: SimTime, _e: (), out: &mut Outbox<()>) {
                out.after(SimDuration::from_secs(1), ());
            }
        }
        let mut ex = Executor::new(Forever).with_event_limit(100);
        ex.schedule_at(SimTime::ZERO, ());
        ex.run();
        assert_eq!(ex.processed(), 100);
    }

    #[test]
    fn immediately_preserves_fifo_among_same_instant() {
        struct Fanout {
            seen: Vec<u32>,
        }
        impl Machine for Fanout {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, e: u32, out: &mut Outbox<u32>) {
                self.seen.push(e);
                if e == 0 {
                    out.immediately(1);
                    out.immediately(2);
                    assert_eq!(out.pending(), 2);
                }
            }
        }
        let mut ex = Executor::new(Fanout { seen: vec![] });
        ex.schedule_at(SimTime::ZERO, 0);
        ex.run();
        assert_eq!(ex.machine().seen, vec![0, 1, 2]);
    }
}
