//! Seedable, splittable pseudo-random number generation.
//!
//! The experiments in this workspace must be bit-reproducible across runs and
//! platforms (the Mini-App framework's "Reproducibility" design goal), so the
//! simulator carries its own RNG rather than depending on `rand`'s unspecified
//! default engine: xoshiro256++ seeded through SplitMix64, the combination
//! recommended by the xoshiro authors. [`SimRng::stream`] derives statistically
//! independent child generators so each simulated component (cluster, arrival
//! process, failure injector) owns a private stream — adding a component never
//! perturbs the draws seen by another.

// lint: deterministic — this module must stay replayable: no wall-clock reads

/// Deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the last Box-Muller transform.
    gauss_spare: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator for a named stream.
    ///
    /// Streams with distinct ids are decorrelated; the parent's state is not
    /// consumed, so stream derivation is order-independent.
    pub fn stream(&self, id: u64) -> SimRng {
        // Mix the parent state with the stream id through SplitMix64 so that
        // nearby ids land far apart in seed space.
        let mut mix =
            self.s[0] ^ self.s[1].rotate_left(17) ^ id.wrapping_mul(0xA24B_AED4_963E_E407);
        SimRng::new(splitmix64(&mut mix))
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. `n == 0` yields 0.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Lemire's multiply-shift with rejection for unbiased sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with success probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box-Muller, with spare caching).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Rejection-free polar-less form: u1 in (0,1] avoids ln(0).
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential deviate with the given mean (`mean = 1/rate`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Log-normal deviate parameterized by the underlying normal's mu/sigma.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gaussian()).exp()
    }

    /// Weibull deviate with shape `k` and scale `lambda`.
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        let u = 1.0 - self.f64();
        scale * (-u.ln()).powf(1.0 / shape)
    }

    /// Pareto deviate with minimum `scale` and tail index `alpha`.
    pub fn pareto(&mut self, scale: f64, alpha: f64) -> f64 {
        let u = 1.0 - self.f64();
        scale / u.powf(1.0 / alpha)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly pick a reference from a non-empty slice.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "pick from empty slice");
        &slice[self.below_usize(slice.len())]
    }

    /// Sample an index from unnormalized non-negative weights.
    ///
    /// Returns `None` if the weights are empty or all zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: return the last positive-weight index.
        weights.iter().rposition(|&w| w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent_of_derivation_order() {
        let root = SimRng::new(7);
        let mut s1a = root.stream(1);
        let _ = root.stream(99);
        let mut s1b = root.stream(1);
        for _ in 0..100 {
            assert_eq!(s1a.next_u64(), s1b.next_u64());
        }
        let mut s2 = root.stream(2);
        let mut s1 = root.stream(1);
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = SimRng::new(11);
        let n = 10u64;
        let mut counts = [0u32; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[rng.below(n) as usize] += 1;
        }
        let expected = draws as f64 / n as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.06,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn below_edge_cases() {
        let mut rng = SimRng::new(5);
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
        assert_eq!(rng.range_u64(4, 4), 4);
        assert_eq!(rng.range_u64(9, 3), 9); // inverted range returns lo
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::new(21);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(31);
        let n = 100_000;
        let mean_target = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean_target)).sum();
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weibull_and_pareto_positive() {
        let mut rng = SimRng::new(41);
        for _ in 0..1000 {
            assert!(rng.weibull(1.5, 2.0) >= 0.0);
            assert!(rng.pareto(1.0, 2.0) >= 1.0);
            assert!(rng.lognormal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(51);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(61);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
    }
}
